//! The `gridmtd` CLI: run, validate, and list declarative scenario
//! specs (see `docs/REPRODUCING.md` for the spec format and the
//! checked-in `scenarios/` library), host the pipeline as a network
//! daemon, and replay load against one.
//!
//! ```text
//! gridmtd run <spec.toml> [--out <dir>] [--threads <n>] [--quiet]
//! gridmtd validate <spec.toml>...
//! gridmtd list [<scenarios-dir>]
//! gridmtd serve [--addr <host:port>] [--capacity <n>] [--workers <n>] [--batch-max <n>]
//! gridmtd loadtest [--case <name>] [--requests <n>] [--clients <n>] [--addr <host:port>]
//! gridmtd chaos [--case <name>] [--requests <n>] [--seed <n>] [--fire-prob <p>]
//! gridmtd lint [--root <dir>] [--format human|json]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gridmtd::scenario;
use gridmtd::serve;

const USAGE: &str = "gridmtd — cost-benefit analysis of moving-target defense in power grids

USAGE:
    gridmtd run <spec.toml> [--out <dir>] [--threads <n>] [--quiet]
    gridmtd validate <spec.toml>...
    gridmtd list [<scenarios-dir>]
    gridmtd serve [--addr <host:port>] [--capacity <n>] [--workers <n>]
                  [--batch-max <n>] [--max-frame-bytes <n>]
                  [--idle-timeout-ms <n>] [--request-deadline-ms <n>]
                  [--queue-max <n>]
    gridmtd loadtest [--case <name>] [--requests <n>] [--clients <n>]
                     [--addr <host:port>] [--config <json>]
    gridmtd chaos [--case <name>] [--requests <n>] [--seed <n>] [--fire-prob <p>]
    gridmtd lint [--root <dir>] [--format human|json]

COMMANDS:
    run        Execute a scenario spec; write result.json / result.csv /
               spec.toml under <dir>/<scenario name>/ (default dir: runs)
    validate   Parse and validate specs without running them
    list       Summarize every *.toml spec in a directory (default: scenarios)
    serve      Host the MTD pipeline as a line-delimited JSON-RPC daemon
               with a warm-session LRU and request coalescing
    loadtest   Replay a deterministic evaluate workload against a server
               (self-hosted unless --addr is given) and report p50/p99/
               throughput; appends a bench row when GRIDMTD_BENCH_JSON is set
    chaos      Replay a select workload while each registered fault-injection
               point fires on a seeded schedule; reports per-fault-class
               outcome counts (requires a --features fault-injection build)
    lint       Run the first-party static-analysis pass (determinism,
               panic-safety, and seed-hygiene rules) over every workspace
               .rs file; exits non-zero on any finding

OPTIONS:
    --out <dir>            Run-directory root (default: runs)
    --threads <n>          Worker threads (default: GRIDMTD_THREADS or all cores)
    --quiet                Suppress the per-sweep summary lines
    --addr <host:port>     serve: bind address (default 127.0.0.1:7433);
                           loadtest: target an already-running server
    --capacity <n>         serve: warm-session LRU capacity (default 8)
    --workers <n>          serve: worker-pool size (default 2)
    --batch-max <n>        serve: max requests coalesced per batch (default 16)
    --max-frame-bytes <n>  serve: request-frame size cap (default 4194304)
    --idle-timeout-ms <n>  serve: reap connections idle this long (default
                           60000; 0 disables reaping)
    --request-deadline-ms <n>
                           serve: default deadline for queued requests
                           (default 0 = none; frames tighten it per-request
                           via their own deadline_ms field)
    --queue-max <n>        serve: worker-queue bound; beyond it requests are
                           shed with OVERLOADED (default 1024)
    --case <name>          loadtest/chaos: session case (default case4)
    --requests <n>         loadtest: total requests (default 64);
                           chaos: requests per fault class (default 16)
    --clients <n>          loadtest: concurrent connections (default 4)
    --config <json>        loadtest: session config overrides, e.g. '{\"seed\":3}'
    --seed <n>             chaos: fault-schedule and retry-jitter seed (default 0)
    --fire-prob <p>        chaos: per-consultation fire probability (default 0.25)
    --root <dir>           lint: workspace root to scan (default: .)
    --format <fmt>         lint: report format, human (default) or json
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadtest") => cmd_loadtest(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut spec_path: Option<PathBuf> = None;
    let mut out_root = PathBuf::from("runs");
    let mut quiet = false;
    let mut threads: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_root = PathBuf::from(dir),
                None => return usage_error("--out takes a directory"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                // Plumbed through the scenario engine to
                // `MtdSession::builder().threads(n)` — the one knob every
                // fan-out layer honors; results are bit-identical for
                // any worker count.
                Some(n) => threads = Some(n.max(1)),
                None => return usage_error("--threads takes a positive integer"),
            },
            "--quiet" => quiet = true,
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}`"))
            }
            other => {
                if spec_path.replace(PathBuf::from(other)).is_some() {
                    return usage_error("run takes exactly one spec file");
                }
            }
        }
    }
    let Some(spec_path) = spec_path else {
        return usage_error("run needs a spec file");
    };

    match scenario::run_file_with(&spec_path, &out_root, threads) {
        Ok((spec, artifacts, dir)) => {
            println!(
                "ran scenario `{}` ({}, {})",
                spec.name,
                spec.sweep.kind(),
                spec.grid.case.name()
            );
            if !quiet {
                for line in &artifacts.summary {
                    println!("  {line}");
                }
            }
            println!("wrote {}", dir.join("result.json").display());
            println!("wrote {}", dir.join("result.csv").display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}: {e}", spec_path.display());
            ExitCode::FAILURE
        }
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage_error("validate needs at least one spec file");
    }
    let mut failed = false;
    for arg in args {
        let path = Path::new(arg);
        match scenario::load_spec(path) {
            Ok(spec) => println!(
                "ok: {} — `{}` ({}, {})",
                path.display(),
                spec.name,
                spec.sweep.kind(),
                spec.grid.case.name()
            ),
            Err(e) => {
                eprintln!("FAIL: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_list(args: &[String]) -> ExitCode {
    let dir = match args {
        [] => PathBuf::from("scenarios"),
        [d] => PathBuf::from(d),
        _ => return usage_error("list takes at most one directory"),
    };
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    entries.sort();
    if entries.is_empty() {
        println!("no *.toml specs in {}", dir.display());
        return ExitCode::SUCCESS;
    }
    let mut failed = false;
    for path in &entries {
        match scenario::load_spec(path) {
            Ok(spec) => {
                let file = path.file_name().unwrap_or_default().to_string_lossy();
                println!(
                    "{file:<28} {:<9} {:<8} {}",
                    spec.sweep.kind(),
                    spec.grid.case.name(),
                    spec.description.lines().next().unwrap_or("")
                );
            }
            Err(e) => {
                eprintln!("FAIL: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut opts = serve::ServeOptions {
        addr: "127.0.0.1:7433".to_string(),
        ..serve::ServeOptions::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => match iter.next() {
                Some(addr) => opts.addr = addr.clone(),
                None => return usage_error("--addr takes host:port"),
            },
            "--capacity" => match parse_count(iter.next()) {
                Some(n) => opts.capacity = n,
                None => return usage_error("--capacity takes a positive integer"),
            },
            "--workers" => match parse_count(iter.next()) {
                Some(n) => opts.workers = n,
                None => return usage_error("--workers takes a positive integer"),
            },
            "--batch-max" => match parse_count(iter.next()) {
                Some(n) => opts.batch_max = n,
                None => return usage_error("--batch-max takes a positive integer"),
            },
            "--max-frame-bytes" => match parse_count(iter.next()) {
                Some(n) => opts.max_frame_bytes = n,
                None => return usage_error("--max-frame-bytes takes a positive integer"),
            },
            // 0 disables: `Server::start` filters zero durations out.
            "--idle-timeout-ms" => match parse_millis(iter.next()) {
                Some(t) => opts.idle_timeout = t,
                None => return usage_error("--idle-timeout-ms takes a non-negative integer"),
            },
            "--request-deadline-ms" => match parse_millis(iter.next()) {
                Some(t) => opts.request_deadline = t,
                None => return usage_error("--request-deadline-ms takes a non-negative integer"),
            },
            "--queue-max" => match parse_count(iter.next()) {
                Some(n) => opts.queue_max = n,
                None => return usage_error("--queue-max takes a positive integer"),
            },
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }
    match serve::Server::start(&opts) {
        Ok(server) => {
            println!(
                "gridmtd serve: listening on {} ({} workers, LRU capacity {}, batch max {})",
                server.local_addr(),
                opts.workers,
                opts.capacity,
                opts.batch_max
            );
            // Serve until killed; the daemon has no interactive exit.
            loop {
                std::thread::park();
            }
        }
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opts.addr);
            ExitCode::FAILURE
        }
    }
}

fn cmd_loadtest(args: &[String]) -> ExitCode {
    let mut opts = serve::LoadtestOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--case" => match iter.next() {
                Some(case) => opts.case = case.clone(),
                None => return usage_error("--case takes a case name"),
            },
            "--requests" => match parse_count(iter.next()) {
                Some(n) => opts.requests = n,
                None => return usage_error("--requests takes a positive integer"),
            },
            "--clients" => match parse_count(iter.next()) {
                Some(n) => opts.clients = n,
                None => return usage_error("--clients takes a positive integer"),
            },
            "--addr" => match iter.next() {
                Some(addr) => {
                    opts.addr = addr.clone();
                    opts.spawn = None;
                }
                None => return usage_error("--addr takes host:port"),
            },
            "--config" => match iter.next().map(|v| scenario::json::Json::parse(v)) {
                Some(Ok(config)) => opts.config = config,
                _ => return usage_error("--config takes a JSON object"),
            },
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }
    match serve::run_loadtest(&opts) {
        Ok(report) => {
            print!("{}", report.render(&opts.case));
            report.append_bench_row(&opts.case);
            if report.errors > 0 {
                eprintln!("loadtest: {} requests returned errors", report.errors);
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("loadtest failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_chaos(args: &[String]) -> ExitCode {
    if !gridmtd::faults::ENABLED {
        eprintln!(
            "chaos needs a fault-injection build: rerun as\n  \
             cargo run --release --features fault-injection --bin gridmtd -- chaos ...\n\
             (in this build every injection point is compiled to a dead branch,\n\
             so a sweep would be vacuously green)"
        );
        return ExitCode::FAILURE;
    }
    let mut opts = serve::ChaosOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--case" => match iter.next() {
                Some(case) => opts.case = case.clone(),
                None => return usage_error("--case takes a case name"),
            },
            "--requests" => match parse_count(iter.next()) {
                Some(n) => opts.requests = n,
                None => return usage_error("--requests takes a positive integer"),
            },
            "--seed" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seed) => opts.seed = seed,
                None => return usage_error("--seed takes a non-negative integer"),
            },
            "--fire-prob" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if (0.0..=1.0).contains(&p) => opts.fire_prob = p,
                _ => return usage_error("--fire-prob takes a probability in [0, 1]"),
            },
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }
    match serve::run_chaos(&opts) {
        Ok(report) => {
            print!("{}", report.render());
            report.append_bench_rows();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chaos failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root takes a directory"),
            },
            "--format" => match iter.next().map(String::as_str) {
                Some("human") => json = false,
                Some("json") => json = true,
                _ => return usage_error("--format takes `human` or `json`"),
            },
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }
    match gridmtd::lint::lint_workspace(&root) {
        Ok(findings) => {
            if json {
                print!("{}", gridmtd::lint::render_json(&findings));
            } else {
                print!("{}", gridmtd::lint::render_human(&findings));
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint failed under {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

fn parse_count(arg: Option<&String>) -> Option<usize> {
    arg.and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
}

/// Parses a millisecond knob where `0` means "disabled" (`None`).
/// Returns `None` (outer) on unparseable input.
#[allow(clippy::option_option)]
fn parse_millis(arg: Option<&String>) -> Option<Option<std::time::Duration>> {
    let ms = arg.and_then(|v| v.parse::<u64>().ok())?;
    Some((ms > 0).then(|| std::time::Duration::from_millis(ms)))
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n\n{USAGE}");
    ExitCode::from(2)
}
