//! The `gridmtd` CLI: run, validate, and list declarative scenario
//! specs (see `docs/REPRODUCING.md` for the spec format and the
//! checked-in `scenarios/` library).
//!
//! ```text
//! gridmtd run <spec.toml> [--out <dir>] [--threads <n>] [--quiet]
//! gridmtd validate <spec.toml>...
//! gridmtd list [<scenarios-dir>]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gridmtd::scenario;

const USAGE: &str = "gridmtd — cost-benefit analysis of moving-target defense in power grids

USAGE:
    gridmtd run <spec.toml> [--out <dir>] [--threads <n>] [--quiet]
    gridmtd validate <spec.toml>...
    gridmtd list [<scenarios-dir>]

COMMANDS:
    run        Execute a scenario spec; write result.json / result.csv /
               spec.toml under <dir>/<scenario name>/ (default dir: runs)
    validate   Parse and validate specs without running them
    list       Summarize every *.toml spec in a directory (default: scenarios)

OPTIONS:
    --out <dir>      Run-directory root (default: runs)
    --threads <n>    Worker threads (default: GRIDMTD_THREADS or all cores)
    --quiet          Suppress the per-sweep summary lines
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut spec_path: Option<PathBuf> = None;
    let mut out_root = PathBuf::from("runs");
    let mut quiet = false;
    let mut threads: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => match iter.next() {
                Some(dir) => out_root = PathBuf::from(dir),
                None => return usage_error("--out takes a directory"),
            },
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                // Plumbed through the scenario engine to
                // `MtdSession::builder().threads(n)` — the one knob every
                // fan-out layer honors; results are bit-identical for
                // any worker count.
                Some(n) => threads = Some(n.max(1)),
                None => return usage_error("--threads takes a positive integer"),
            },
            "--quiet" => quiet = true,
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}`"))
            }
            other => {
                if spec_path.replace(PathBuf::from(other)).is_some() {
                    return usage_error("run takes exactly one spec file");
                }
            }
        }
    }
    let Some(spec_path) = spec_path else {
        return usage_error("run needs a spec file");
    };

    match scenario::run_file_with(&spec_path, &out_root, threads) {
        Ok((spec, artifacts, dir)) => {
            println!(
                "ran scenario `{}` ({}, {})",
                spec.name,
                spec.sweep.kind(),
                spec.grid.case.name()
            );
            if !quiet {
                for line in &artifacts.summary {
                    println!("  {line}");
                }
            }
            println!("wrote {}", dir.join("result.json").display());
            println!("wrote {}", dir.join("result.csv").display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}: {e}", spec_path.display());
            ExitCode::FAILURE
        }
    }
}

fn cmd_validate(args: &[String]) -> ExitCode {
    if args.is_empty() {
        return usage_error("validate needs at least one spec file");
    }
    let mut failed = false;
    for arg in args {
        let path = Path::new(arg);
        match scenario::load_spec(path) {
            Ok(spec) => println!(
                "ok: {} — `{}` ({}, {})",
                path.display(),
                spec.name,
                spec.sweep.kind(),
                spec.grid.case.name()
            ),
            Err(e) => {
                eprintln!("FAIL: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_list(args: &[String]) -> ExitCode {
    let dir = match args {
        [] => PathBuf::from("scenarios"),
        [d] => PathBuf::from(d),
        _ => return usage_error("list takes at most one directory"),
    };
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    entries.sort();
    if entries.is_empty() {
        println!("no *.toml specs in {}", dir.display());
        return ExitCode::SUCCESS;
    }
    let mut failed = false;
    for path in &entries {
        match scenario::load_spec(path) {
            Ok(spec) => {
                let file = path.file_name().unwrap_or_default().to_string_lossy();
                println!(
                    "{file:<28} {:<9} {:<8} {}",
                    spec.sweep.kind(),
                    spec.grid.case.name(),
                    spec.description.lines().next().unwrap_or("")
                );
            }
            Err(e) => {
                eprintln!("FAIL: {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n\n{USAGE}");
    ExitCode::from(2)
}
