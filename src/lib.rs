//! # gridmtd — moving-target defense for power-grid state estimation
//!
//! A full Rust reproduction of *Cost-Benefit Analysis of Moving-Target
//! Defense in Power Grids* (Lakshminarayana & Yau, DSN 2018), packaged as
//! a facade over the workspace crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`linalg`] | `gridmtd-linalg` | dense LA: QR, SVD, principal angles |
//! | [`stats`] | `gridmtd-stats` | χ²/noncentral-χ², Gaussian sampling |
//! | [`powergrid`] | `gridmtd-powergrid` | DC grid model, IEEE cases |
//! | [`opf`] | `gridmtd-opf` | LP simplex, DC-OPF, Nelder–Mead |
//! | [`estimation`] | `gridmtd-estimation` | WLS SE + χ² BDD |
//! | [`attack`] | `gridmtd-attack` | stealthy FDI attacks |
//! | [`mtd`] | `gridmtd-core` | SPA metric, η'(δ), problem (4), tradeoff |
//! | [`traces`] | `gridmtd-traces` | daily load traces |
//! | [`scenario`] | `gridmtd-scenario` | declarative TOML sweep specs + engine |
//! | [`serve`] | `gridmtd-serve` | line-delimited JSON-RPC daemon + warm-session LRU |
//! | [`faults`] | `gridmtd-faults` | deterministic fault injection (named points, seeded triggers) |
//! | [`lint`] | `gridmtd-lint` | workspace static analysis: determinism / panic-safety / seed-hygiene rules |
//!
//! The `gridmtd` **binary** (this package's `src/bin/gridmtd.rs`) runs
//! declarative scenario specs (`gridmtd run scenarios/<name>.toml`),
//! hosts the pipeline as a network daemon (`gridmtd serve`), and replays
//! load against one (`gridmtd loadtest`).
//!
//! # Example: is a random MTD perturbation any good?
//!
//! ```
//! use gridmtd::mtd::{effectiveness, selection, MtdConfig};
//! use gridmtd::powergrid::cases;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), gridmtd::mtd::MtdError> {
//! let net = cases::case14();
//! let cfg = MtdConfig { n_attacks: 100, ..MtdConfig::default() };
//! let x_pre = net.nominal_reactances();
//!
//! // Prior work's strategy: a random ±2% perturbation...
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x_rand = selection::random_perturbation(&net, &x_pre, 0.02, &mut rng)?;
//! let weak = effectiveness::evaluate_mtd(&net, &x_pre, &x_rand, &cfg)?;
//!
//! // ...versus this paper's SPA-targeted selection.
//! let sel = selection::select_mtd(&net, &x_pre, 0.2, &cfg)?;
//! let strong = effectiveness::evaluate_mtd(&net, &x_pre, &sel.x_post, &cfg)?;
//! assert!(strong.effectiveness(0.9) > weak.effectiveness(0.9));
//! # Ok(())
//! # }
//! ```

pub use gridmtd_attack as attack;
pub use gridmtd_core as mtd;
pub use gridmtd_estimation as estimation;
pub use gridmtd_faults as faults;
pub use gridmtd_linalg as linalg;
pub use gridmtd_lint as lint;
pub use gridmtd_opf as opf;
pub use gridmtd_powergrid as powergrid;
pub use gridmtd_scenario as scenario;
pub use gridmtd_serve as serve;
pub use gridmtd_stats as stats;
pub use gridmtd_traces as traces;
