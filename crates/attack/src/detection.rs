//! Attack-detection evaluation: analytic and Monte-Carlo.
//!
//! The paper evaluates each attack's detection probability by generating
//! 1000 noise instantiations and counting BDD alarms. Thanks to the
//! noncentral-χ² characterization (Appendix B) the same quantity is
//! available in closed form; this module provides both, and the test
//! suite verifies they agree — the closed form is what the fast
//! effectiveness sweeps in `gridmtd-core` use.

use gridmtd_estimation::{BadDataDetector, EstimationError, NoiseModel};
use rand::Rng;

use crate::FdiAttack;

/// Analytic detection probability of each attack in `attacks` under the
/// given detector (post-MTD `H'`), per Appendix B of the paper.
///
/// The whole ensemble is scored through one multi-RHS triangular-solve
/// pass ([`BadDataDetector::detection_probabilities`]); per-attack
/// results are bit-identical to scoring each attack alone.
///
/// # Errors
///
/// Propagates estimator failures (wrong dimensions).
pub fn detection_probabilities(
    bdd: &BadDataDetector,
    attacks: &[FdiAttack],
) -> Result<Vec<f64>, EstimationError> {
    let vectors: Vec<&[f64]> = attacks.iter().map(|a| a.vector.as_slice()).collect();
    bdd.detection_probabilities(&vectors)
}

/// One Monte-Carlo detection trial: corrupts `z_true` with a noise draw
/// from `rng`, injects the attack and runs the BDD. The single source of
/// the trial kernel — both the serial estimator below and the
/// per-trial-seeded parallel estimator in `gridmtd-core` call this.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn monte_carlo_trial<R: Rng + ?Sized>(
    bdd: &BadDataDetector,
    z_true: &[f64],
    attack: &FdiAttack,
    noise: &NoiseModel,
    rng: &mut R,
) -> Result<bool, EstimationError> {
    let mut z = noise.corrupt(z_true, rng);
    for (zi, ai) in z.iter_mut().zip(attack.vector.iter()) {
        *zi += ai;
    }
    Ok(bdd.test(&z)?.alarm)
}

/// Monte-Carlo estimate of the detection probability of a single attack:
/// draws `trials` noise vectors, applies `z_true + noise + a` and counts
/// alarms.
///
/// # Errors
///
/// Propagates estimator failures.
pub fn monte_carlo_detection_probability<R: Rng + ?Sized>(
    bdd: &BadDataDetector,
    z_true: &[f64],
    attack: &FdiAttack,
    noise: &NoiseModel,
    trials: usize,
    rng: &mut R,
) -> Result<f64, EstimationError> {
    let mut alarms = 0usize;
    for _ in 0..trials {
        if monte_carlo_trial(bdd, z_true, attack, noise, rng)? {
            alarms += 1;
        }
    }
    Ok(alarms as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_estimation::StateEstimator;
    use gridmtd_powergrid::{cases, dcpf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build pre-perturbation H, post-perturbation BDD and the
    /// post-perturbation operating point's measurements.
    ///
    /// The MTD alternates ±45% across the six D-FACTS lines: sign-mixed
    /// perturbations rotate the column space far more than uniform
    /// scaling, which leaves Col(H) almost unchanged. Noise is σ = 0.1 MW
    /// so this fixed (non-optimized) perturbation detects strongly;
    /// the paper-scale experiments in `gridmtd-core` calibrate σ against
    /// the optimized perturbations of problem (4).
    fn mtd_scenario() -> (
        gridmtd_linalg::Matrix,
        BadDataDetector,
        Vec<f64>,
        NoiseModel,
    ) {
        let net = cases::case14();
        let x = net.nominal_reactances();
        let h_pre = net.measurement_matrix(&x).unwrap();
        let mut x_post = x.clone();
        for (k, l) in net.dfacts_branches().into_iter().enumerate() {
            x_post[l] *= if k % 2 == 0 { 1.45 } else { 0.55 };
        }
        let h_post = net.measurement_matrix(&x_post).unwrap();
        let noise = NoiseModel::uniform(h_post.rows(), 0.1);
        let est = StateEstimator::new(h_post, &noise).unwrap();
        let bdd = BadDataDetector::new(est, 5e-4);
        // The attacker injects into the *perturbed* grid: the true
        // measurements come from the post-MTD power flow.
        let pf = dcpf::solve_dispatch(&net, &x_post, &[150.0, 40.0, 20.0, 30.0, 19.0]).unwrap();
        (h_pre, bdd, pf.measurement_vector(), noise)
    }

    #[test]
    fn stale_attacks_become_detectable_under_mtd() {
        let (h_pre, bdd, z, _) = mtd_scenario();
        let mut rng = StdRng::seed_from_u64(17);
        let attacks = crate::random_attack_set(&h_pre, &z, 0.08, 64, &mut rng).unwrap();
        let pds = detection_probabilities(&bdd, &attacks).unwrap();
        // A +30% perturbation of six lines is a strong MTD; a majority of
        // stale attacks should be detectable with high probability.
        let effective = pds.iter().filter(|&&p| p > 0.5).count();
        assert!(
            effective > attacks.len() / 2,
            "only {effective}/{} attacks detectable",
            attacks.len()
        );
    }

    #[test]
    fn fresh_attacks_stay_stealthy() {
        // Attacks crafted against the detector's own H have PD = alpha.
        let (_, bdd, z, _) = mtd_scenario();
        let h_post = bdd.estimator().h().clone();
        let mut rng = StdRng::seed_from_u64(19);
        let attacks = crate::random_attack_set(&h_post, &z, 0.08, 16, &mut rng).unwrap();
        for pd in detection_probabilities(&bdd, &attacks).unwrap() {
            assert!((pd - bdd.alpha()).abs() < 1e-6, "pd = {pd}");
        }
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let (h_pre, bdd, z, noise) = mtd_scenario();
        let mut rng = StdRng::seed_from_u64(23);
        let attack = crate::FdiAttack::random_scaled(&h_pre, &z, 0.08, &mut rng).unwrap();
        let analytic = bdd.detection_probability(&attack.vector).unwrap();
        let mc =
            monte_carlo_detection_probability(&bdd, &z, &attack, &noise, 2000, &mut rng).unwrap();
        assert!(
            (analytic - mc).abs() < 0.04,
            "analytic {analytic} vs MC {mc}"
        );
    }
}
