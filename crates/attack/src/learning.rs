//! Attacker-side subspace learning — the knowledge-decay model behind
//! the paper's choice of MTD period (Section IV-A).
//!
//! The paper argues (via its reference \[17\], Kim–Tong–Thomas) that an
//! eavesdropper needs 500–1000 informative measurement snapshots to
//! re-identify the measurement subspace after an MTD perturbation, which
//! is what makes hourly perturbations safe. This module implements that
//! attacker: principal-component analysis of eavesdropped measurement
//! vectors recovers `Col(H)` (blind subspace estimation — no topology
//! knowledge needed), and stealthy attacks are then crafted inside the
//! *estimated* subspace. The experiments quantify how detection
//! probability decays as the attacker accumulates samples — the MTD
//! re-perturbation deadline.

use gridmtd_linalg::{Matrix, Svd};
use gridmtd_stats::normal;
use rand::Rng;

use crate::FdiAttack;

/// Blind subspace-learning attacker: accumulates measurement snapshots
/// and estimates the measurement subspace by PCA.
#[derive(Debug, Clone)]
pub struct SubspaceLearner {
    m: usize,
    samples: Vec<Vec<f64>>,
}

impl SubspaceLearner {
    /// New learner for measurement dimension `m`.
    pub fn new(m: usize) -> SubspaceLearner {
        SubspaceLearner {
            m,
            samples: Vec::new(),
        }
    }

    /// Number of snapshots observed so far.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// Records one eavesdropped measurement vector.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the learner's dimension.
    pub fn observe(&mut self, z: &[f64]) {
        assert_eq!(z.len(), self.m, "measurement dimension mismatch");
        self.samples.push(z.to_vec());
    }

    /// Estimates an orthonormal basis of the measurement subspace from
    /// the observed snapshots: the top `dim` principal components of the
    /// (uncentered) sample matrix.
    ///
    /// Returns `None` until at least `dim` snapshots are available.
    pub fn estimate_basis(&self, dim: usize) -> Option<Matrix> {
        if self.samples.len() < dim {
            return None;
        }
        // Sample matrix: m × n_samples (columns are snapshots).
        let n = self.samples.len();
        let data = Matrix::from_fn(self.m, n, |i, j| self.samples[j][i]);
        // SVD wants rows >= cols; transpose when we have many samples.
        let svd = if self.m >= n {
            Svd::compute(&data).ok()?
        } else {
            // data = U S Vᵀ; dataᵀ = V S Uᵀ, so the right factor of the
            // transposed SVD is our U.
            let svd_t = Svd::compute(&data.transpose()).ok()?;
            return Some(svd_t.v().submatrix(0, self.m, 0, dim.min(self.m)));
        };
        Some(svd.u().submatrix(0, self.m, 0, dim.min(n)))
    }

    /// Crafts an attack inside the estimated subspace: a random direction
    /// in the span of the top `dim` principal components, scaled to
    /// `‖a‖₁/‖z_ref‖₁ = ratio`.
    ///
    /// Returns `None` if the basis is not yet estimable.
    pub fn craft_attack<R: Rng + ?Sized>(
        &self,
        dim: usize,
        z_ref: &[f64],
        ratio: f64,
        rng: &mut R,
    ) -> Option<FdiAttack> {
        let basis = self.estimate_basis(dim)?;
        let c: Vec<f64> = (0..basis.cols())
            .map(|_| normal::sample_standard(rng))
            .collect();
        let raw = basis.matvec(&c).ok()?;
        let z_norm = gridmtd_linalg::vector::norm1(z_ref);
        let a_norm = gridmtd_linalg::vector::norm1(&raw);
        if a_norm == 0.0 || z_norm == 0.0 {
            return None;
        }
        let s = ratio * z_norm / a_norm;
        Some(FdiAttack {
            vector: gridmtd_linalg::vector::scale(s, &raw),
            c: gridmtd_linalg::vector::scale(s, &c),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_estimation::{BadDataDetector, NoiseModel, StateEstimator};
    use gridmtd_powergrid::{cases, dcpf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Simulate an eavesdropper on the 14-bus system. Each bus load (and
    /// the dispatch split) jitters independently per snapshot — the
    /// "maximum information diversity" premise of the paper's reference
    /// [17]; proportional all-bus scaling would leave the state on a
    /// one-dimensional trajectory and reveal almost nothing.
    fn snapshots(n: usize, sigma: f64, seed: u64) -> (Vec<Vec<f64>>, Matrix, Vec<f64>) {
        use rand::Rng;
        let net = cases::case14();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let noise = NoiseModel::uniform(h.rows(), sigma);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        let mut z_ref = Vec::new();
        for k in 0..n {
            let loads: Vec<f64> = net
                .loads()
                .iter()
                .map(|l| l * rng.gen_range(0.6..1.4))
                .collect();
            let net_k = net.with_loads(&loads).unwrap();
            let weights: Vec<f64> = net_k
                .gens()
                .iter()
                .map(|_| rng.gen_range(0.2..1.0))
                .collect();
            let wsum: f64 = weights.iter().sum();
            let d: Vec<f64> = weights
                .iter()
                .map(|w| w / wsum * net_k.total_load())
                .collect();
            let pf = dcpf::solve_dispatch(&net_k, &x, &d).unwrap();
            let z = noise.corrupt(&pf.measurement_vector(), &mut rng);
            if k == 0 {
                z_ref = z.clone();
            }
            out.push(z);
        }
        (out, h, z_ref)
    }

    #[test]
    fn basis_unavailable_before_enough_samples() {
        let learner = SubspaceLearner::new(54);
        assert!(learner.estimate_basis(13).is_none());
        assert_eq!(learner.n_samples(), 0);
    }

    #[test]
    fn learned_attacks_become_stealthy_with_enough_samples() {
        // Constants recalibrated when the workspace moved to its vendored
        // deterministic RNG (the seed values 400 snapshots / 20 attacks /
        // margin 0.1 sat on the Monte-Carlo noise floor of the upstream
        // StdRng stream: late = 0.902 against a < 0.900 requirement). A
        // 3-seed sweep of the learning curve gives mean detection ≈
        // 0.93–0.99 at 16 snapshots and ≈ 0.80–0.90 at 800, so the
        // checkpoints below (16 vs 800 snapshots, 50 crafted attacks per
        // mean, margin 0.05) test the same Section IV-A claim with ≥ 2x
        // margin over the observed seed-to-seed spread.
        let (zs, h, z_ref) = snapshots(800, 0.1, 1);
        let noise = NoiseModel::uniform(h.rows(), 0.1);
        let bdd = BadDataDetector::new(StateEstimator::new(h, &noise).unwrap(), 5e-4);

        let mut learner = SubspaceLearner::new(54);
        let mut rng = StdRng::seed_from_u64(2);
        let mut pd_early = None;
        let mut pd_late = None;
        for (k, z) in zs.iter().enumerate() {
            learner.observe(z);
            if k + 1 == 16 || k + 1 == 800 {
                let mut pds = Vec::new();
                for _ in 0..50 {
                    let a = learner.craft_attack(13, &z_ref, 0.08, &mut rng).unwrap();
                    pds.push(bdd.detection_probability(&a.vector).unwrap());
                }
                let mean = gridmtd_stats::empirical::mean(&pds);
                if k + 1 == 16 {
                    pd_early = Some(mean);
                } else {
                    pd_late = Some(mean);
                }
            }
        }
        let (early, late) = (pd_early.unwrap(), pd_late.unwrap());
        // More snapshots => better subspace estimate => stealthier attacks.
        assert!(
            late < early - 0.05,
            "learning should reduce detection: early {early:.3} -> late {late:.3}"
        );
        // ...but convergence is slow: even 800 diverse snapshots — the top
        // of the 500-1000 range the paper's reference [17] reports — leave
        // the attacker substantially exposed, which is what makes hourly
        // MTD re-perturbation stay ahead of the attacker.
        assert!(
            late > 0.3,
            "800 samples should not suffice for full stealth: late = {late:.3}"
        );
    }

    #[test]
    fn dimension_mismatch_panics() {
        let mut learner = SubspaceLearner::new(10);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            learner.observe(&[0.0; 5]);
        }));
        assert!(result.is_err());
    }
}
