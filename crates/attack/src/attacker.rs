//! The attacker model of Section IV-A.
//!
//! The attacker eavesdrops on SCADA traffic, learns the measurement
//! matrix `H_t` in force at some time, and crafts stealthy attacks
//! `a = H_t c`. Learning takes hours (500–1000 informative measurement
//! snapshots per [17] of the paper), so between sufficiently frequent MTD
//! perturbations the attacker's knowledge is **stale**: attacks are built
//! against the *pre-perturbation* `H_t`, not the current `H'_t'`. This
//! staleness is exactly the lever MTD exploits.

use gridmtd_linalg::{LinalgError, Matrix};
use rand::Rng;

use crate::{random_attack_set, FdiAttack};

/// An attacker holding a (possibly stale) snapshot of the measurement
/// matrix.
#[derive(Debug, Clone)]
pub struct AttackerKnowledge {
    h: Matrix,
    acquired_at_hour: u32,
}

impl AttackerKnowledge {
    /// Attacker who learned `h` at the given timeline hour.
    pub fn learned(h: Matrix, acquired_at_hour: u32) -> AttackerKnowledge {
        AttackerKnowledge {
            h,
            acquired_at_hour,
        }
    }

    /// The measurement matrix the attacker believes is current.
    pub fn h(&self) -> &Matrix {
        &self.h
    }

    /// Hour at which the snapshot was taken.
    pub fn acquired_at_hour(&self) -> u32 {
        self.acquired_at_hour
    }

    /// How stale the knowledge is at `now_hour` (saturating at 0).
    pub fn staleness_hours(&self, now_hour: u32) -> u32 {
        now_hour.saturating_sub(self.acquired_at_hour)
    }

    /// Crafts the deterministic stealthy attack `a = Hc` for state offset
    /// `c`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `c` has the wrong length.
    pub fn craft(&self, c: &[f64]) -> Result<FdiAttack, LinalgError> {
        FdiAttack::from_state_offset(&self.h, c)
    }

    /// Crafts `count` random stealthy attacks scaled to
    /// `‖a‖₁/‖z_ref‖₁ = magnitude_ratio` — the paper's attack ensemble
    /// (1000 Gaussian `c` vectors at ratio 0.08).
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn craft_random_set<R: Rng + ?Sized>(
        &self,
        z_ref: &[f64],
        magnitude_ratio: f64,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<FdiAttack>, LinalgError> {
        random_attack_set(&self.h, z_ref, magnitude_ratio, count, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn staleness_accounting() {
        let net = cases::case4();
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        let atk = AttackerKnowledge::learned(h, 8);
        assert_eq!(atk.acquired_at_hour(), 8);
        assert_eq!(atk.staleness_hours(9), 1);
        assert_eq!(atk.staleness_hours(8), 0);
        assert_eq!(atk.staleness_hours(5), 0); // time travel saturates
    }

    #[test]
    fn crafted_attacks_use_the_stale_matrix() {
        let net = cases::case4();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let atk = AttackerKnowledge::learned(h.clone(), 0);
        let c = vec![0.0, 0.0, 1.0];
        let a = atk.craft(&c).unwrap();
        assert_eq!(a.vector, h.matvec(&c).unwrap());
    }

    #[test]
    fn random_set_delegates_to_fdi() {
        let net = cases::case14();
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        let z = vec![1.0; h.rows()];
        let atk = AttackerKnowledge::learned(h, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let set = atk.craft_random_set(&z, 0.08, 10, &mut rng).unwrap();
        assert_eq!(set.len(), 10);
    }
}
