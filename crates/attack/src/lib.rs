//! False-data-injection (FDI) attacks against power-grid state
//! estimation.
//!
//! Implements the attacker side of Lakshminarayana & Yau (DSN 2018):
//!
//! * [`FdiAttack`] — stealthy attacks `a = Hc` that bypass the BDD of the
//!   measurement matrix they were crafted against, scaled to a target
//!   `‖a‖₁/‖z‖₁` ratio like the paper's simulations,
//! * [`AttackerKnowledge`] — the eavesdropping attacker of Section IV-A,
//!   whose snapshot of `H` goes stale between MTD perturbations,
//! * [`detection`] — analytic (noncentral-χ²) and Monte-Carlo evaluation
//!   of detection probabilities under a (possibly different) post-MTD
//!   detector.
//!
//! # Example
//!
//! ```
//! use gridmtd_attack::FdiAttack;
//! use gridmtd_powergrid::cases;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = cases::case4();
//! let h = net.measurement_matrix(&net.nominal_reactances())?;
//! // "Attack 2" of the paper's Table I: c = e4 (bus-4 state offset).
//! let attack = FdiAttack::from_state_offset(&h, &[0.0, 0.0, 1.0])?;
//! assert_eq!(attack.vector.len(), h.rows());
//! # Ok(())
//! # }
//! ```

mod attacker;
pub mod detection;
mod fdi;
pub mod learning;

pub use attacker::AttackerKnowledge;
pub use detection::{detection_probabilities, monte_carlo_detection_probability};
pub use fdi::{random_attack_set, FdiAttack};
pub use learning::SubspaceLearner;
