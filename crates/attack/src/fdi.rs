//! Construction of stealthy false-data-injection attack vectors.
//!
//! Per Liu–Ning–Reiter (and Section III of the MTD paper), any attack of
//! the form `a = Hc` is *undetectable* by the BDD associated with
//! measurement matrix `H`: it shifts the state estimate by `c` while
//! leaving the residual untouched. This module builds such attacks and
//! scales them the way the paper's simulations do
//! (`‖a‖₁/‖z‖₁ ≈ 0.08`).

use gridmtd_linalg::{vector, LinalgError, Matrix};
use gridmtd_stats::normal;
use rand::Rng;

/// A stealthy FDI attack: the injected vector together with the state
/// offset `c` that generated it.
#[derive(Debug, Clone, PartialEq)]
pub struct FdiAttack {
    /// Injected measurement perturbation `a = Hc`.
    pub vector: Vec<f64>,
    /// State-space attack direction `c` (dimension `N − 1`).
    pub c: Vec<f64>,
}

impl FdiAttack {
    /// Crafts `a = Hc` for a chosen state offset `c`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `c.len() != h.cols()`.
    pub fn from_state_offset(h: &Matrix, c: &[f64]) -> Result<FdiAttack, LinalgError> {
        let vector = h.matvec(c)?;
        Ok(FdiAttack {
            vector,
            c: c.to_vec(),
        })
    }

    /// Crafts a random stealthy attack: `c ~ N(0, I)`, then `a = Hc`
    /// scaled so that `‖a‖₁/‖z_ref‖₁ = magnitude_ratio` (the paper uses
    /// 0.08 so injections stay small relative to real measurements).
    ///
    /// # Errors
    ///
    /// Returns a [`LinalgError`] if shapes mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `magnitude_ratio` is not positive and finite, or if
    /// `z_ref` is all zeros.
    pub fn random_scaled<R: Rng + ?Sized>(
        h: &Matrix,
        z_ref: &[f64],
        magnitude_ratio: f64,
        rng: &mut R,
    ) -> Result<FdiAttack, LinalgError> {
        assert!(
            magnitude_ratio > 0.0 && magnitude_ratio.is_finite(),
            "magnitude_ratio must be positive, got {magnitude_ratio}"
        );
        let z_norm = vector::norm1(z_ref);
        assert!(z_norm > 0.0, "reference measurement vector is zero");
        let c: Vec<f64> = (0..h.cols())
            .map(|_| normal::sample_standard(rng))
            .collect();
        let mut attack = FdiAttack::from_state_offset(h, &c)?;
        let a_norm = vector::norm1(&attack.vector);
        if a_norm > 0.0 {
            let s = magnitude_ratio * z_norm / a_norm;
            attack.vector = vector::scale(s, &attack.vector);
            attack.c = vector::scale(s, &attack.c);
        }
        Ok(attack)
    }

    /// ℓ₁ magnitude of the injected vector.
    pub fn magnitude(&self) -> f64 {
        vector::norm1(&self.vector)
    }

    /// Applies the attack to a measurement vector, returning `z + a`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn apply(&self, z: &[f64]) -> Vec<f64> {
        vector::add(z, &self.vector)
    }
}

/// Generates `count` random scaled stealthy attacks (the paper's
/// Monte-Carlo attack set of 1000 vectors).
///
/// # Errors
///
/// Propagates construction failures from [`FdiAttack::random_scaled`].
pub fn random_attack_set<R: Rng + ?Sized>(
    h: &Matrix,
    z_ref: &[f64],
    magnitude_ratio: f64,
    count: usize,
    rng: &mut R,
) -> Result<Vec<FdiAttack>, LinalgError> {
    (0..count)
        .map(|_| FdiAttack::random_scaled(h, z_ref, magnitude_ratio, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::{cases, dcpf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h14() -> (Matrix, Vec<f64>) {
        let net = cases::case14();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let pf = dcpf::solve_dispatch(&net, &x, &[150.0, 40.0, 20.0, 30.0, 19.0]).unwrap();
        (h, pf.measurement_vector())
    }

    #[test]
    fn attack_lies_in_column_space() {
        let (h, _) = h14();
        let c = vec![0.01; h.cols()];
        let a = FdiAttack::from_state_offset(&h, &c).unwrap();
        // Residual after projecting onto Col(H) is zero.
        let p = gridmtd_linalg::subspace::complement_projector(&h).unwrap();
        let r = p.matvec(&a.vector).unwrap();
        assert!(vector::norm2(&r) < 1e-6 * vector::norm2(&a.vector).max(1.0));
    }

    #[test]
    fn scaling_hits_the_requested_ratio() {
        let (h, z) = h14();
        let mut rng = StdRng::seed_from_u64(4);
        let a = FdiAttack::random_scaled(&h, &z, 0.08, &mut rng).unwrap();
        let ratio = a.magnitude() / vector::norm1(&z);
        assert!((ratio - 0.08).abs() < 1e-10, "ratio {ratio}");
    }

    #[test]
    fn scaled_c_remains_consistent_with_vector() {
        let (h, z) = h14();
        let mut rng = StdRng::seed_from_u64(11);
        let a = FdiAttack::random_scaled(&h, &z, 0.05, &mut rng).unwrap();
        let recomputed = h.matvec(&a.c).unwrap();
        assert!(vector::approx_eq(&recomputed, &a.vector, 1e-9));
    }

    #[test]
    fn apply_adds_attack() {
        let (h, z) = h14();
        let c = vec![0.001; h.cols()];
        let a = FdiAttack::from_state_offset(&h, &c).unwrap();
        let za = a.apply(&z);
        for ((zi, ai), zai) in z.iter().zip(a.vector.iter()).zip(za.iter()) {
            assert!((zi + ai - zai).abs() < 1e-12);
        }
    }

    #[test]
    fn attack_set_has_requested_size_and_variety() {
        let (h, z) = h14();
        let mut rng = StdRng::seed_from_u64(21);
        let set = random_attack_set(&h, &z, 0.08, 50, &mut rng).unwrap();
        assert_eq!(set.len(), 50);
        // All distinct (as random draws).
        for w in set.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn wrong_c_dimension_is_error() {
        let (h, _) = h14();
        assert!(FdiAttack::from_state_offset(&h, &[1.0, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "magnitude_ratio must be positive")]
    fn non_positive_ratio_panics() {
        let (h, z) = h14();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = FdiAttack::random_scaled(&h, &z, 0.0, &mut rng);
    }
}
