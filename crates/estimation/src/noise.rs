//! Sensor noise model.

use rand::Rng;

use gridmtd_stats::normal;

/// Per-measurement Gaussian noise standard deviations.
///
/// The paper assumes i.i.d. Gaussian measurement noise; the homoscedastic
/// [`NoiseModel::uniform`] constructor is what the experiments use, but the
/// estimator supports general diagonal covariances.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    sigmas: Vec<f64>,
}

impl NoiseModel {
    /// Same standard deviation `sigma` (MW) for all `m` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0`.
    pub fn uniform(m: usize, sigma: f64) -> NoiseModel {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        NoiseModel {
            sigmas: vec![sigma; m],
        }
    }

    /// Per-measurement standard deviations.
    ///
    /// # Panics
    ///
    /// Panics if any sigma is non-positive.
    pub fn from_sigmas(sigmas: Vec<f64>) -> NoiseModel {
        assert!(
            sigmas.iter().all(|&s| s > 0.0),
            "all sigmas must be positive"
        );
        NoiseModel { sigmas }
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.sigmas.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.sigmas.is_empty()
    }

    /// Standard deviations.
    pub fn sigmas(&self) -> &[f64] {
        &self.sigmas
    }

    /// WLS weights `wᵢ = 1/σᵢ²`.
    pub fn weights(&self) -> Vec<f64> {
        self.sigmas.iter().map(|s| 1.0 / (s * s)).collect()
    }

    /// Draws one noise vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.sigmas
            .iter()
            .map(|&s| s * normal::sample_standard(rng))
            .collect()
    }

    /// Returns `z_true + noise`.
    ///
    /// # Panics
    ///
    /// Panics if `z_true.len() != self.len()`.
    pub fn corrupt<R: Rng + ?Sized>(&self, z_true: &[f64], rng: &mut R) -> Vec<f64> {
        assert_eq!(z_true.len(), self.len(), "measurement length mismatch");
        z_true
            .iter()
            .zip(self.sigmas.iter())
            .map(|(&z, &s)| z + s * normal::sample_standard(rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_are_inverse_variance() {
        let n = NoiseModel::uniform(3, 2.0);
        assert_eq!(n.weights(), vec![0.25, 0.25, 0.25]);
        assert_eq!(n.len(), 3);
        assert!(!n.is_empty());
    }

    #[test]
    fn corrupt_preserves_mean() {
        let n = NoiseModel::uniform(1000, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        let z = vec![10.0; 1000];
        let zc = n.corrupt(&z, &mut rng);
        let mean: f64 = zc.iter().sum::<f64>() / 1000.0;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn heteroscedastic_sigmas_apply_per_entry() {
        let n = NoiseModel::from_sigmas(vec![0.1, 10.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut spread0 = 0.0;
        let mut spread1 = 0.0;
        for _ in 0..2000 {
            let e = n.sample(&mut rng);
            spread0 += e[0] * e[0];
            spread1 += e[1] * e[1];
        }
        assert!(spread1 / spread0 > 1000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sigma_rejected() {
        NoiseModel::uniform(2, 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn corrupt_checks_length() {
        let n = NoiseModel::uniform(2, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        n.corrupt(&[1.0], &mut rng);
    }
}
