//! Weighted-least-squares state estimation (Section III of the paper).
//!
//! Given measurements `z = Hθ + n` with diagonal noise covariance
//! `R = diag(σᵢ²)`, the ML estimate is `θ̂ = (HᵀWH)⁻¹HᵀWz` with
//! `W = R⁻¹`. The estimator caches the Cholesky factor of the gain matrix
//! `HᵀWH` so repeated estimates (Monte-Carlo detection studies) cost one
//! matrix–vector product and one triangular solve each.

use std::error::Error;
use std::fmt;

use gridmtd_linalg::{Cholesky, LinalgError, Matrix};

use crate::NoiseModel;

/// Errors from estimator construction or use.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimationError {
    /// `H` does not have full column rank — the state is unobservable.
    Unobservable,
    /// Vector length does not match the measurement count.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// Underlying numerical failure.
    Numerical(LinalgError),
}

impl fmt::Display for EstimationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimationError::Unobservable => {
                write!(
                    f,
                    "measurement matrix is column-rank deficient (unobservable)"
                )
            }
            EstimationError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "measurement vector has length {actual}, expected {expected}"
                )
            }
            EstimationError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl Error for EstimationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EstimationError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for EstimationError {
    fn from(e: LinalgError) -> EstimationError {
        match e {
            LinalgError::NotPositiveDefinite => EstimationError::Unobservable,
            other => EstimationError::Numerical(other),
        }
    }
}

/// WLS state estimator bound to a measurement matrix and noise model.
///
/// # Example
///
/// ```
/// use gridmtd_estimation::{NoiseModel, StateEstimator};
/// use gridmtd_powergrid::cases;
///
/// # fn main() -> Result<(), gridmtd_estimation::EstimationError> {
/// let net = cases::case14();
/// let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
/// let noise = NoiseModel::uniform(h.rows(), 1.0);
/// let est = StateEstimator::new(h, &noise)?;
/// assert_eq!(est.degrees_of_freedom(), 54 - 13);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateEstimator {
    h: Matrix,
    /// `diag(w) · H`, cached for `HᵀWz` products.
    wh: Matrix,
    weights: Vec<f64>,
    gain: Cholesky,
}

impl StateEstimator {
    /// Builds the estimator for measurement matrix `h` and the given noise
    /// model.
    ///
    /// # Errors
    ///
    /// * [`EstimationError::DimensionMismatch`] if `noise.len() != h.rows()`.
    /// * [`EstimationError::Unobservable`] if `h` is column-rank deficient.
    pub fn new(h: Matrix, noise: &NoiseModel) -> Result<StateEstimator, EstimationError> {
        if noise.len() != h.rows() {
            return Err(EstimationError::DimensionMismatch {
                expected: h.rows(),
                actual: noise.len(),
            });
        }
        let weights = noise.weights();
        let mut wh = h.clone();
        for (i, &w) in weights.iter().enumerate() {
            for v in wh.row_mut(i) {
                *v *= w;
            }
        }
        let gain_matrix = h.transpose().matmul(&wh)?;
        let gain = Cholesky::factor(&gain_matrix)?;
        Ok(StateEstimator {
            h,
            wh,
            weights,
            gain,
        })
    }

    /// The measurement matrix.
    pub fn h(&self) -> &Matrix {
        &self.h
    }

    /// WLS weights `1/σᵢ²`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Measurement count `M`.
    pub fn n_measurements(&self) -> usize {
        self.h.rows()
    }

    /// State dimension `n`.
    pub fn n_states(&self) -> usize {
        self.h.cols()
    }

    /// Residual degrees of freedom `M − n` of the χ² test statistic.
    pub fn degrees_of_freedom(&self) -> usize {
        self.n_measurements() - self.n_states()
    }

    /// ML state estimate `θ̂ = (HᵀWH)⁻¹HᵀWz`.
    ///
    /// # Errors
    ///
    /// Returns [`EstimationError::DimensionMismatch`] on a wrong-length
    /// input.
    pub fn estimate(&self, z: &[f64]) -> Result<Vec<f64>, EstimationError> {
        if z.len() != self.n_measurements() {
            return Err(EstimationError::DimensionMismatch {
                expected: self.n_measurements(),
                actual: z.len(),
            });
        }
        let rhs = self.wh.matvec_transposed(z)?;
        Ok(self.gain.solve(&rhs)?)
    }

    /// Residual vector `r = z − Hθ̂`.
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::estimate`].
    pub fn residual(&self, z: &[f64]) -> Result<Vec<f64>, EstimationError> {
        let theta = self.estimate(z)?;
        let zh = self.h.matvec(&theta)?;
        Ok(z.iter().zip(zh.iter()).map(|(a, b)| a - b).collect())
    }

    /// Weighted residual statistic `J(z) = Σ wᵢ rᵢ² = ‖z − Hθ̂‖²_W`.
    ///
    /// Under Gaussian noise and no attack, `J ~ χ²(M − n)`; under attack
    /// `a`, `J ~ χ²_nc(M − n, λ)` with `λ = J(a)` (Appendix B).
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::estimate`].
    pub fn residual_statistic(&self, z: &[f64]) -> Result<f64, EstimationError> {
        let r = self.residual(z)?;
        Ok(r.iter()
            .zip(self.weights.iter())
            .map(|(ri, wi)| wi * ri * ri)
            .sum())
    }

    /// Unweighted residual norm `‖z − Hθ̂‖₂` (the form displayed in the
    /// paper's Table I).
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::estimate`].
    pub fn residual_norm(&self, z: &[f64]) -> Result<f64, EstimationError> {
        let r = self.residual(z)?;
        Ok(gridmtd_linalg::vector::norm2(&r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_linalg::vector;
    use gridmtd_powergrid::{cases, dcpf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn case14_setup() -> (gridmtd_powergrid::Network, StateEstimator, Vec<f64>) {
        let net = cases::case14();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let noise = NoiseModel::uniform(h.rows(), 1.0);
        let est = StateEstimator::new(h, &noise).unwrap();
        let pf = dcpf::solve_dispatch(&net, &x, &[150.0, 40.0, 20.0, 30.0, 19.0]).unwrap();
        (net, est, pf.measurement_vector())
    }

    #[test]
    fn noiseless_measurements_are_fit_exactly() {
        let (net, est, z) = case14_setup();
        let theta = est.estimate(&z).unwrap();
        assert_eq!(theta.len(), net.n_states());
        assert!(est.residual_statistic(&z).unwrap() < 1e-12);
        assert!(est.residual_norm(&z).unwrap() < 1e-6);
    }

    #[test]
    fn estimate_recovers_true_state_noiseless() {
        let (net, est, z) = case14_setup();
        let x = net.nominal_reactances();
        let pf = dcpf::solve_dispatch(&net, &x, &[150.0, 40.0, 20.0, 30.0, 19.0]).unwrap();
        let true_state: Vec<f64> = pf
            .theta
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (i != net.slack()).then_some(t))
            .collect();
        let theta = est.estimate(&z).unwrap();
        assert!(vector::approx_eq(&theta, &true_state, 1e-9));
    }

    #[test]
    fn residual_statistic_has_chi2_mean() {
        // E[J] = M − n under pure noise.
        let (_, est, z) = case14_setup();
        let noise = NoiseModel::uniform(est.n_measurements(), 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 3000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let zn = noise.corrupt(&z, &mut rng);
            acc += est.residual_statistic(&zn).unwrap();
        }
        let mean = acc / trials as f64;
        let dof = est.degrees_of_freedom() as f64;
        assert!(
            (mean - dof).abs() < 0.1 * dof,
            "mean J = {mean}, dof = {dof}"
        );
    }

    #[test]
    fn weighted_estimator_downweights_noisy_sensors() {
        // Two sensors measure the same scalar state; the low-noise one
        // should dominate.
        let h = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let noise = NoiseModel::from_sigmas(vec![0.1, 10.0]);
        let est = StateEstimator::new(h, &noise).unwrap();
        let theta = est.estimate(&[1.0, 100.0]).unwrap();
        // Weighted answer is pulled to sensor 1 (value 1.0).
        assert!((theta[0] - 1.0).abs() < 0.02, "theta = {}", theta[0]);
    }

    #[test]
    fn rank_deficient_h_is_unobservable() {
        let h = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let noise = NoiseModel::uniform(3, 1.0);
        assert_eq!(
            StateEstimator::new(h, &noise).unwrap_err(),
            EstimationError::Unobservable
        );
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let h = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let noise = NoiseModel::uniform(3, 1.0);
        assert!(matches!(
            StateEstimator::new(h.clone(), &noise),
            Err(EstimationError::DimensionMismatch { .. })
        ));
        let est = StateEstimator::new(h, &NoiseModel::uniform(2, 1.0)).unwrap();
        assert!(est.estimate(&[1.0, 2.0, 3.0]).is_err());
    }
}
