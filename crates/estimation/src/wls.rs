//! Weighted-least-squares state estimation (Section III of the paper).
//!
//! Given measurements `z = Hθ + n` with diagonal noise covariance
//! `R = diag(σᵢ²)`, the ML estimate is `θ̂ = (HᵀWH)⁻¹HᵀWz` with
//! `W = R⁻¹`. The estimator caches the Cholesky factor of the gain matrix
//! `HᵀWH` so repeated estimates (Monte-Carlo detection studies) cost one
//! matrix–vector product and one triangular solve each.
//!
//! # Backends
//!
//! Below [`SPARSE_MIN_STATES`] states the gain matrix is built and
//! factored densely (byte stable with the historical implementation).
//! At or above the crossover, `H` has a handful of nonzeros per row and
//! the estimator assembles `HᵀWH` directly from those row stamps,
//! factors it with the sparse Cholesky of `gridmtd-linalg`, and runs
//! estimates through sparse matrix–vector products — turning the
//! `O(M n²)` dense gain construction that dominates large-case detector
//! builds into `O(Σ nnz(row)²)`. Attack batches should prefer
//! [`StateEstimator::residual_statistics`] /
//! [`crate::BadDataDetector::detection_probabilities`], which solve all
//! right-hand sides through one multi-RHS triangular-solve pass.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gridmtd_linalg::sparse::{SparseCholesky, SparseMatrix, SymbolicCholesky};
use gridmtd_linalg::{Cholesky, LinalgError, Matrix};

use crate::NoiseModel;

/// Process-wide count of sparse gain-matrix symbolic analyses, for the
/// same regression-guard purpose as `gridmtd_powergrid::stats`: warm
/// paths that hold an [`EstimatorContext`] must not re-analyze the gain
/// pattern for an unchanged topology.
static GAIN_SYMBOLIC_ANALYSES: AtomicU64 = AtomicU64::new(0);

/// Number of sparse gain-matrix (`HᵀWH`) symbolic factorizations run so
/// far, process-wide and monotone (relaxed atomics; diagnostics only).
pub fn gain_symbolic_analyses() -> u64 {
    GAIN_SYMBOLIC_ANALYSES.load(Ordering::Relaxed)
}

/// Reusable estimator-construction state: the cached symbolic
/// factorization of the sparse gain matrix `HᵀWH`.
///
/// The gain's sparsity *pattern* is fixed by the grid topology — MTD
/// reactance perturbations change `H`'s values, never its structure — so
/// detectors built for many `x_post` candidates on one topology can
/// share a single symbolic analysis and run only the numeric phase each.
/// The cached analysis is validated against each new gain's pattern
/// (shape, column pointers, row indices) and transparently re-analyzed
/// on mismatch, so reuse is always correct and always bit-identical to a
/// cold construction. Dense-backend estimators ignore the context.
#[derive(Debug, Clone, Default)]
pub struct EstimatorContext {
    gain_symbolic: Option<Arc<SymbolicCholesky>>,
    reuses: u64,
}

impl EstimatorContext {
    /// Creates an empty context (first sparse construction analyzes).
    pub fn new() -> EstimatorContext {
        EstimatorContext::default()
    }

    /// Number of estimator constructions that reused the cached symbolic
    /// analysis.
    pub fn symbolic_reuses(&self) -> u64 {
        self.reuses
    }

    /// Whether a symbolic analysis is cached (used by sharing layers to
    /// publish a freshly analyzed context without clobbering an
    /// established one).
    pub fn has_symbolic(&self) -> bool {
        self.gain_symbolic.is_some()
    }
}

/// State-count crossover between the dense and sparse gain backends.
///
/// The paper-scale cases (4–30 buses, ≤ 29 states) stay dense; the
/// synthetic scaling cases (57+ buses) go sparse.
pub const SPARSE_MIN_STATES: usize = 40;

/// Backend selection for [`StateEstimator`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorBackend {
    /// Dense below [`SPARSE_MIN_STATES`] states, sparse at or above.
    #[default]
    Auto,
    /// Always dense (the historical implementation).
    Dense,
    /// Always sparse (agreement property tests on small cases).
    Sparse,
}

/// Errors from estimator construction or use.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimationError {
    /// `H` does not have full column rank — the state is unobservable.
    Unobservable,
    /// Vector length does not match the measurement count.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// Underlying numerical failure.
    Numerical(LinalgError),
}

impl fmt::Display for EstimationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimationError::Unobservable => {
                write!(
                    f,
                    "measurement matrix is column-rank deficient (unobservable)"
                )
            }
            EstimationError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "measurement vector has length {actual}, expected {expected}"
                )
            }
            EstimationError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl Error for EstimationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EstimationError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for EstimationError {
    fn from(e: LinalgError) -> EstimationError {
        match e {
            LinalgError::NotPositiveDefinite => EstimationError::Unobservable,
            other => EstimationError::Numerical(other),
        }
    }
}

/// WLS state estimator bound to a measurement matrix and noise model.
///
/// # Example
///
/// ```
/// use gridmtd_estimation::{NoiseModel, StateEstimator};
/// use gridmtd_powergrid::cases;
///
/// # fn main() -> Result<(), gridmtd_estimation::EstimationError> {
/// let net = cases::case14();
/// let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
/// let noise = NoiseModel::uniform(h.rows(), 1.0);
/// let est = StateEstimator::new(h, &noise)?;
/// assert_eq!(est.degrees_of_freedom(), 54 - 13);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateEstimator {
    h: Matrix,
    weights: Vec<f64>,
    solver: GainSolver,
}

/// Backend-specific factored gain matrix and product caches.
#[derive(Debug, Clone)]
enum GainSolver {
    Dense {
        /// `diag(w) · H`, cached for `HᵀWz` products.
        wh: Matrix,
        gain: Cholesky,
    },
    Sparse {
        /// CSC copy of `H` for the `Hθ` / `HᵀWz` products.
        h_sparse: SparseMatrix,
        gain: SparseCholesky,
    },
}

impl StateEstimator {
    /// Builds the estimator for measurement matrix `h` and the given noise
    /// model, selecting the backend automatically.
    ///
    /// # Errors
    ///
    /// * [`EstimationError::DimensionMismatch`] if `noise.len() != h.rows()`.
    /// * [`EstimationError::Unobservable`] if `h` is column-rank deficient.
    pub fn new(h: Matrix, noise: &NoiseModel) -> Result<StateEstimator, EstimationError> {
        StateEstimator::with_backend(h, noise, EstimatorBackend::Auto)
    }

    /// [`StateEstimator::new`] with an explicit backend (property tests;
    /// production code should prefer the automatic crossover).
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::new`].
    pub fn with_backend(
        h: Matrix,
        noise: &NoiseModel,
        backend: EstimatorBackend,
    ) -> Result<StateEstimator, EstimationError> {
        StateEstimator::with_context_backend(h, noise, backend, &mut EstimatorContext::new())
    }

    /// [`StateEstimator::new`] with a reusable [`EstimatorContext`]: on
    /// the sparse backend the gain's symbolic factorization is taken
    /// from the context when its pattern matches (and stored there after
    /// a fresh analysis), so repeated detector builds on one topology
    /// run the numeric phase only. Bit-identical to
    /// [`StateEstimator::new`] in every case.
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::new`].
    pub fn with_context(
        h: Matrix,
        noise: &NoiseModel,
        ctx: &mut EstimatorContext,
    ) -> Result<StateEstimator, EstimationError> {
        StateEstimator::with_context_backend(h, noise, EstimatorBackend::Auto, ctx)
    }

    fn with_context_backend(
        h: Matrix,
        noise: &NoiseModel,
        backend: EstimatorBackend,
        ctx: &mut EstimatorContext,
    ) -> Result<StateEstimator, EstimationError> {
        if noise.len() != h.rows() {
            return Err(EstimationError::DimensionMismatch {
                expected: h.rows(),
                actual: noise.len(),
            });
        }
        let weights = noise.weights();
        let sparse = match backend {
            EstimatorBackend::Auto => h.cols() >= SPARSE_MIN_STATES,
            EstimatorBackend::Dense => false,
            EstimatorBackend::Sparse => true,
        };
        let solver = if sparse {
            // Assemble HᵀWH directly from the sparse row stamps of H:
            // each measurement row contributes w·vᵢ·vⱼ over its nonzero
            // column pairs, so the gain never materializes densely.
            let mut row_entries: Vec<(usize, f64)> = Vec::new();
            let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
            for (r, &w) in weights.iter().enumerate() {
                row_entries.clear();
                row_entries.extend(
                    h.row(r)
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| **v != 0.0)
                        .map(|(c, &v)| (c, v)),
                );
                for &(ci, vi) in &row_entries {
                    for &(cj, vj) in &row_entries {
                        triplets.push((ci, cj, w * vi * vj));
                    }
                }
            }
            let gain_matrix = SparseMatrix::from_triplets(h.cols(), h.cols(), &triplets)?;
            // The cached symbolic serves any gain with the same pattern;
            // `factor` itself verifies the pattern, so a mismatch (new
            // topology through an old context) falls back to a fresh
            // analysis instead of producing wrong numbers.
            let cached = match ctx.gain_symbolic.as_ref() {
                Some(sym) => match SparseCholesky::factor(Arc::clone(sym), &gain_matrix) {
                    Ok(gain) => {
                        ctx.reuses += 1;
                        Some(gain)
                    }
                    Err(LinalgError::ShapeMismatch { .. }) => None,
                    Err(e) => return Err(e.into()),
                },
                None => None,
            };
            let gain = match cached {
                Some(gain) => gain,
                None => {
                    GAIN_SYMBOLIC_ANALYSES.fetch_add(1, Ordering::Relaxed);
                    let symbolic = Arc::new(SymbolicCholesky::analyze(&gain_matrix)?);
                    ctx.gain_symbolic = Some(Arc::clone(&symbolic));
                    SparseCholesky::factor(symbolic, &gain_matrix)?
                }
            };
            GainSolver::Sparse {
                h_sparse: SparseMatrix::from_dense(&h),
                gain,
            }
        } else {
            let mut wh = h.clone();
            for (i, &w) in weights.iter().enumerate() {
                for v in wh.row_mut(i) {
                    *v *= w;
                }
            }
            let gain_matrix = h.transpose().matmul(&wh)?;
            let gain = Cholesky::factor(&gain_matrix)?;
            GainSolver::Dense { wh, gain }
        };
        Ok(StateEstimator { h, weights, solver })
    }

    /// The measurement matrix.
    pub fn h(&self) -> &Matrix {
        &self.h
    }

    /// WLS weights `1/σᵢ²`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Measurement count `M`.
    pub fn n_measurements(&self) -> usize {
        self.h.rows()
    }

    /// State dimension `n`.
    pub fn n_states(&self) -> usize {
        self.h.cols()
    }

    /// Residual degrees of freedom `M − n` of the χ² test statistic.
    pub fn degrees_of_freedom(&self) -> usize {
        self.n_measurements() - self.n_states()
    }

    /// ML state estimate `θ̂ = (HᵀWH)⁻¹HᵀWz`.
    ///
    /// # Errors
    ///
    /// Returns [`EstimationError::DimensionMismatch`] on a wrong-length
    /// input.
    pub fn estimate(&self, z: &[f64]) -> Result<Vec<f64>, EstimationError> {
        if z.len() != self.n_measurements() {
            return Err(EstimationError::DimensionMismatch {
                expected: self.n_measurements(),
                actual: z.len(),
            });
        }
        match &self.solver {
            GainSolver::Dense { wh, gain } => {
                let rhs = wh.matvec_transposed(z)?;
                Ok(gain.solve(&rhs)?)
            }
            GainSolver::Sparse { h_sparse, gain } => {
                let rhs = h_sparse.matvec_transposed(&self.weighted(z))?;
                Ok(gain.solve(&rhs)?)
            }
        }
    }

    /// ML estimates for a batch of measurement vectors through a single
    /// multi-RHS triangular-solve pass (the attack-ensemble hot path).
    ///
    /// Each vector undergoes exactly the arithmetic of a standalone
    /// [`StateEstimator::estimate`], so batched and per-vector results
    /// are bit-identical — scoring loops can chunk attacks freely
    /// without perturbing downstream determinism contracts.
    ///
    /// # Errors
    ///
    /// Returns [`EstimationError::DimensionMismatch`] if any vector has
    /// the wrong length.
    pub fn estimate_batch(&self, zs: &[&[f64]]) -> Result<Vec<Vec<f64>>, EstimationError> {
        let n = self.n_states();
        let mut rhs = Matrix::zeros(n, zs.len());
        for (c, z) in zs.iter().enumerate() {
            if z.len() != self.n_measurements() {
                return Err(EstimationError::DimensionMismatch {
                    expected: self.n_measurements(),
                    actual: z.len(),
                });
            }
            let col = match &self.solver {
                GainSolver::Dense { wh, .. } => wh.matvec_transposed(z)?,
                GainSolver::Sparse { h_sparse, .. } => {
                    h_sparse.matvec_transposed(&self.weighted(z))?
                }
            };
            for (i, v) in col.into_iter().enumerate() {
                rhs[(i, c)] = v;
            }
        }
        let thetas = match &self.solver {
            GainSolver::Dense { gain, .. } => gain.solve_matrix(&rhs)?,
            GainSolver::Sparse { gain, .. } => gain.solve_matrix(&rhs)?,
        };
        Ok((0..zs.len()).map(|c| thetas.col(c)).collect())
    }

    /// `W z` (the diagonal weighting applied to a measurement vector).
    fn weighted(&self, z: &[f64]) -> Vec<f64> {
        z.iter()
            .zip(self.weights.iter())
            .map(|(zi, wi)| zi * wi)
            .collect()
    }

    /// `H θ` through whichever representation of `H` the backend keeps.
    fn h_matvec(&self, theta: &[f64]) -> Result<Vec<f64>, LinalgError> {
        match &self.solver {
            GainSolver::Dense { .. } => self.h.matvec(theta),
            GainSolver::Sparse { h_sparse, .. } => h_sparse.matvec(theta),
        }
    }

    /// Residual vector `r = z − Hθ̂`.
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::estimate`].
    pub fn residual(&self, z: &[f64]) -> Result<Vec<f64>, EstimationError> {
        let theta = self.estimate(z)?;
        let zh = self.h_matvec(&theta)?;
        Ok(z.iter().zip(zh.iter()).map(|(a, b)| a - b).collect())
    }

    /// Weighted residual statistics `J(z)` for a batch of measurement
    /// vectors (see [`StateEstimator::estimate_batch`] for the batching
    /// and bit-identity contract).
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::estimate_batch`].
    pub fn residual_statistics(&self, zs: &[&[f64]]) -> Result<Vec<f64>, EstimationError> {
        let thetas = self.estimate_batch(zs)?;
        zs.iter()
            .zip(thetas.iter())
            .map(|(z, theta)| {
                let zh = self.h_matvec(theta)?;
                Ok(z.iter()
                    .zip(zh.iter())
                    .zip(self.weights.iter())
                    .map(|((zi, zhi), wi)| {
                        let r = zi - zhi;
                        wi * r * r
                    })
                    .sum())
            })
            .collect()
    }

    /// Weighted residual statistic `J(z) = Σ wᵢ rᵢ² = ‖z − Hθ̂‖²_W`.
    ///
    /// Under Gaussian noise and no attack, `J ~ χ²(M − n)`; under attack
    /// `a`, `J ~ χ²_nc(M − n, λ)` with `λ = J(a)` (Appendix B).
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::estimate`].
    pub fn residual_statistic(&self, z: &[f64]) -> Result<f64, EstimationError> {
        let r = self.residual(z)?;
        Ok(r.iter()
            .zip(self.weights.iter())
            .map(|(ri, wi)| wi * ri * ri)
            .sum())
    }

    /// Unweighted residual norm `‖z − Hθ̂‖₂` (the form displayed in the
    /// paper's Table I).
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::estimate`].
    pub fn residual_norm(&self, z: &[f64]) -> Result<f64, EstimationError> {
        let r = self.residual(z)?;
        Ok(gridmtd_linalg::vector::norm2(&r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_linalg::vector;
    use gridmtd_powergrid::{cases, dcpf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn case14_setup() -> (gridmtd_powergrid::Network, StateEstimator, Vec<f64>) {
        let net = cases::case14();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let noise = NoiseModel::uniform(h.rows(), 1.0);
        let est = StateEstimator::new(h, &noise).unwrap();
        let pf = dcpf::solve_dispatch(&net, &x, &[150.0, 40.0, 20.0, 30.0, 19.0]).unwrap();
        (net, est, pf.measurement_vector())
    }

    #[test]
    fn noiseless_measurements_are_fit_exactly() {
        let (net, est, z) = case14_setup();
        let theta = est.estimate(&z).unwrap();
        assert_eq!(theta.len(), net.n_states());
        assert!(est.residual_statistic(&z).unwrap() < 1e-12);
        assert!(est.residual_norm(&z).unwrap() < 1e-6);
    }

    #[test]
    fn estimate_recovers_true_state_noiseless() {
        let (net, est, z) = case14_setup();
        let x = net.nominal_reactances();
        let pf = dcpf::solve_dispatch(&net, &x, &[150.0, 40.0, 20.0, 30.0, 19.0]).unwrap();
        let true_state: Vec<f64> = pf
            .theta
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (i != net.slack()).then_some(t))
            .collect();
        let theta = est.estimate(&z).unwrap();
        assert!(vector::approx_eq(&theta, &true_state, 1e-9));
    }

    #[test]
    fn residual_statistic_has_chi2_mean() {
        // E[J] = M − n under pure noise.
        let (_, est, z) = case14_setup();
        let noise = NoiseModel::uniform(est.n_measurements(), 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 3000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let zn = noise.corrupt(&z, &mut rng);
            acc += est.residual_statistic(&zn).unwrap();
        }
        let mean = acc / trials as f64;
        let dof = est.degrees_of_freedom() as f64;
        assert!(
            (mean - dof).abs() < 0.1 * dof,
            "mean J = {mean}, dof = {dof}"
        );
    }

    #[test]
    fn weighted_estimator_downweights_noisy_sensors() {
        // Two sensors measure the same scalar state; the low-noise one
        // should dominate.
        let h = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let noise = NoiseModel::from_sigmas(vec![0.1, 10.0]);
        let est = StateEstimator::new(h, &noise).unwrap();
        let theta = est.estimate(&[1.0, 100.0]).unwrap();
        // Weighted answer is pulled to sensor 1 (value 1.0).
        assert!((theta[0] - 1.0).abs() < 0.02, "theta = {}", theta[0]);
    }

    #[test]
    fn rank_deficient_h_is_unobservable() {
        let h = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let noise = NoiseModel::uniform(3, 1.0);
        assert_eq!(
            StateEstimator::new(h, &noise).unwrap_err(),
            EstimationError::Unobservable
        );
    }

    #[test]
    fn sparse_backend_agrees_with_dense() {
        let (net, dense_est, z) = case14_setup();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let noise = NoiseModel::uniform(h.rows(), 1.0);
        let sparse_est =
            StateEstimator::with_backend(h, &noise, super::EstimatorBackend::Sparse).unwrap();
        let td = dense_est.estimate(&z).unwrap();
        let ts = sparse_est.estimate(&z).unwrap();
        assert!(vector::approx_eq(&td, &ts, 1e-9));
        let jd = dense_est.residual_statistic(&z).unwrap();
        let js = sparse_est.residual_statistic(&z).unwrap();
        assert!((jd - js).abs() < 1e-8, "{jd} vs {js}");
    }

    #[test]
    fn batch_estimates_are_bit_identical_to_singles() {
        let (net, dense_est, z) = case14_setup();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let noise = NoiseModel::uniform(h.rows(), 1.0);
        let sparse_est =
            StateEstimator::with_backend(h, &noise, super::EstimatorBackend::Sparse).unwrap();
        // A few shifted copies of z as a batch.
        let zs_owned: Vec<Vec<f64>> = (0..4)
            .map(|k| z.iter().map(|v| v + k as f64 * 0.5).collect())
            .collect();
        let zs: Vec<&[f64]> = zs_owned.iter().map(Vec::as_slice).collect();
        for est in [&dense_est, &sparse_est] {
            let batch = est.estimate_batch(&zs).unwrap();
            let stats = est.residual_statistics(&zs).unwrap();
            for (k, z) in zs.iter().enumerate() {
                let single = est.estimate(z).unwrap();
                assert_eq!(batch[k], single, "estimate batch vs single");
                let j = est.residual_statistic(z).unwrap();
                assert_eq!(stats[k].to_bits(), j.to_bits(), "J batch vs single");
            }
        }
        // Wrong-length vector in a batch is reported.
        assert!(dense_est.estimate_batch(&[&[1.0]]).is_err());
    }

    #[test]
    fn sparse_backend_recovers_true_state_noiseless() {
        let (net, _, z) = case14_setup();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let noise = NoiseModel::uniform(h.rows(), 1.0);
        let est = StateEstimator::with_backend(h, &noise, super::EstimatorBackend::Sparse).unwrap();
        assert!(est.residual_statistic(&z).unwrap() < 1e-12);
    }

    #[test]
    fn sparse_backend_reports_unobservability() {
        let h = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let noise = NoiseModel::uniform(3, 1.0);
        assert_eq!(
            StateEstimator::with_backend(h, &noise, super::EstimatorBackend::Sparse).unwrap_err(),
            EstimationError::Unobservable
        );
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let h = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let noise = NoiseModel::uniform(3, 1.0);
        assert!(matches!(
            StateEstimator::new(h.clone(), &noise),
            Err(EstimationError::DimensionMismatch { .. })
        ));
        let est = StateEstimator::new(h, &NoiseModel::uniform(2, 1.0)).unwrap();
        assert!(est.estimate(&[1.0, 2.0, 3.0]).is_err());
    }
}
