//! State estimation and bad-data detection for the `gridmtd` workspace.
//!
//! Implements the SE + BDD pipeline of Section III of Lakshminarayana &
//! Yau (DSN 2018):
//!
//! * [`NoiseModel`] — diagonal Gaussian sensor noise,
//! * [`StateEstimator`] — weighted least squares
//!   `θ̂ = (HᵀWH)⁻¹HᵀWz`,
//! * [`BadDataDetector`] — χ² residual test calibrated to a target
//!   false-positive rate, with **closed-form detection probabilities** for
//!   FDI attacks via the noncentral-χ² characterization of Appendix B.
//!
//! # Example
//!
//! ```
//! use gridmtd_estimation::{BadDataDetector, NoiseModel, StateEstimator};
//! use gridmtd_powergrid::{cases, dcpf};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = cases::case14();
//! let x = net.nominal_reactances();
//! let h = net.measurement_matrix(&x)?;
//! let est = StateEstimator::new(h, &NoiseModel::uniform(54, 1.0))?;
//! let bdd = BadDataDetector::new(est, 5e-4);
//!
//! // Noiseless measurements from a power flow pass the BDD.
//! let pf = dcpf::solve_dispatch(&net, &x, &[150.0, 40.0, 20.0, 30.0, 19.0])?;
//! assert!(!bdd.test(&pf.measurement_vector())?.alarm);
//! # Ok(())
//! # }
//! ```

mod bdd;
mod noise;
mod wls;

pub use bdd::{BadDataDetector, BddOutcome};
pub use noise::NoiseModel;
pub use wls::{
    gain_symbolic_analyses, EstimationError, EstimatorBackend, EstimatorContext, StateEstimator,
    SPARSE_MIN_STATES,
};
