//! Bad-data detector (BDD) with χ²-calibrated threshold.
//!
//! The BDD compares the weighted residual statistic
//! `J(z) = ‖z − Hθ̂‖²_W` against a threshold `τ²` chosen so that the
//! false-positive rate under pure Gaussian noise equals a target `α`
//! (the paper uses `α = 5 × 10⁻⁴`). Because `J ~ χ²(M − n)` under H₀,
//! the threshold is the `(1 − α)` χ² quantile — no Monte-Carlo
//! calibration needed.
//!
//! For an FDI attack `a`, `J ~ χ²_nc(M − n, λ)` with noncentrality
//! `λ = J(a)` (Appendix B of the paper), so the detection probability is
//! available in closed form via [`BadDataDetector::detection_probability`].

use gridmtd_stats::chi2::{ChiSquared, NoncentralChiSquared};

use crate::{EstimationError, StateEstimator};

/// Outcome of a single BDD test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BddOutcome {
    /// The residual statistic `J(z)`.
    pub statistic: f64,
    /// The detection threshold `τ²`.
    pub threshold: f64,
    /// Whether the alarm fired (`statistic ≥ threshold`).
    pub alarm: bool,
}

/// χ² bad-data detector bound to a [`StateEstimator`].
///
/// # Example
///
/// ```
/// use gridmtd_estimation::{BadDataDetector, NoiseModel, StateEstimator};
/// use gridmtd_powergrid::cases;
///
/// # fn main() -> Result<(), gridmtd_estimation::EstimationError> {
/// let net = cases::case14();
/// let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
/// let est = StateEstimator::new(h, &NoiseModel::uniform(54, 1.0))?;
/// let bdd = BadDataDetector::new(est, 5e-4);
/// assert!(bdd.threshold() > bdd.estimator().degrees_of_freedom() as f64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BadDataDetector {
    estimator: StateEstimator,
    alpha: f64,
    threshold: f64,
}

impl BadDataDetector {
    /// Builds the detector with false-positive rate `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1)`.
    pub fn new(estimator: StateEstimator, alpha: f64) -> BadDataDetector {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        let dof = estimator.degrees_of_freedom() as f64;
        let threshold = ChiSquared::new(dof).inv_cdf(1.0 - alpha);
        BadDataDetector {
            estimator,
            alpha,
            threshold,
        }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &StateEstimator {
        &self.estimator
    }

    /// Configured false-positive rate `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Detection threshold `τ²` on the weighted residual statistic.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Runs the detector on a measurement vector.
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::residual_statistic`].
    pub fn test(&self, z: &[f64]) -> Result<BddOutcome, EstimationError> {
        let statistic = self.estimator.residual_statistic(z)?;
        Ok(BddOutcome {
            statistic,
            threshold: self.threshold,
            alarm: statistic >= self.threshold,
        })
    }

    /// Residual noncentrality `λ(a) = ‖a − Hθ̂(a)‖²_W` contributed by an
    /// attack vector `a` — the key quantity of Appendix B: `λ = 0` iff the
    /// attack is stealthy against this detector's `H`.
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::residual_statistic`].
    pub fn attack_noncentrality(&self, a: &[f64]) -> Result<f64, EstimationError> {
        self.estimator.residual_statistic(a)
    }

    /// Closed-form detection probability `P(J ≥ τ²)` for additive attack
    /// `a` on top of nominal Gaussian noise.
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::residual_statistic`].
    pub fn detection_probability(&self, a: &[f64]) -> Result<f64, EstimationError> {
        let lambda = self.attack_noncentrality(a)?;
        let dof = self.estimator.degrees_of_freedom() as f64;
        Ok(NoncentralChiSquared::new(dof, lambda).sf(self.threshold))
    }

    /// Closed-form detection probabilities for a batch of attack
    /// vectors, solved through one multi-RHS triangular-solve pass
    /// ([`StateEstimator::residual_statistics`]).
    ///
    /// Per-attack arithmetic is identical to
    /// [`BadDataDetector::detection_probability`], so results are
    /// bit-identical for any batching of the same attacks.
    ///
    /// # Errors
    ///
    /// See [`StateEstimator::residual_statistic`].
    pub fn detection_probabilities(&self, attacks: &[&[f64]]) -> Result<Vec<f64>, EstimationError> {
        let dof = self.estimator.degrees_of_freedom() as f64;
        Ok(self
            .estimator
            .residual_statistics(attacks)?
            .into_iter()
            .map(|lambda| NoncentralChiSquared::new(dof, lambda).sf(self.threshold))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseModel;
    use gridmtd_powergrid::{cases, dcpf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn detector(alpha: f64) -> (BadDataDetector, Vec<f64>) {
        let net = cases::case14();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let noise = NoiseModel::uniform(h.rows(), 1.0);
        let est = StateEstimator::new(h, &noise).unwrap();
        let pf = dcpf::solve_dispatch(&net, &x, &[150.0, 40.0, 20.0, 30.0, 19.0]).unwrap();
        (BadDataDetector::new(est, alpha), pf.measurement_vector())
    }

    #[test]
    fn false_positive_rate_is_calibrated() {
        // Use a loose alpha so the MC confidence interval is tight.
        let (bdd, z) = detector(0.05);
        let noise = NoiseModel::uniform(z.len(), 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 20_000;
        let mut alarms = 0;
        for _ in 0..trials {
            let zn = noise.corrupt(&z, &mut rng);
            if bdd.test(&zn).unwrap().alarm {
                alarms += 1;
            }
        }
        let fp = alarms as f64 / trials as f64;
        assert!((fp - 0.05).abs() < 0.01, "fp = {fp}");
    }

    #[test]
    fn stealthy_attack_has_zero_noncentrality() {
        // a = Hc lies in Col(H): undetectable by construction (paper
        // Section III, "undetectable attacks").
        let (bdd, _) = detector(5e-4);
        let h = bdd.estimator().h().clone();
        let c: Vec<f64> = (0..h.cols()).map(|i| 0.01 * (i as f64 + 1.0)).collect();
        let a = h.matvec(&c).unwrap();
        let lambda = bdd.attack_noncentrality(&a).unwrap();
        assert!(lambda < 1e-9, "λ = {lambda}");
        // Detection probability equals the FP rate.
        let pd = bdd.detection_probability(&a).unwrap();
        assert!((pd - bdd.alpha()).abs() < 1e-6);
    }

    #[test]
    fn random_attack_is_detected() {
        let (bdd, _) = detector(5e-4);
        let m = bdd.estimator().n_measurements();
        // An arbitrary (non-subspace) attack with decent magnitude.
        let a: Vec<f64> = (0..m).map(|i| if i % 7 == 0 { 8.0 } else { 0.0 }).collect();
        let pd = bdd.detection_probability(&a).unwrap();
        assert!(pd > 0.99, "pd = {pd}");
    }

    #[test]
    fn analytic_pd_matches_monte_carlo() {
        let (bdd, z) = detector(0.01);
        let m = bdd.estimator().n_measurements();
        let a: Vec<f64> = (0..m)
            .map(|i| if i % 5 == 0 { 2.5 } else { -0.5 })
            .collect();
        let analytic = bdd.detection_probability(&a).unwrap();
        let noise = NoiseModel::uniform(m, 1.0);
        let mut rng = StdRng::seed_from_u64(33);
        let trials = 4000;
        let mut alarms = 0;
        for _ in 0..trials {
            let mut zn = noise.corrupt(&z, &mut rng);
            for (zi, ai) in zn.iter_mut().zip(a.iter()) {
                *zi += ai;
            }
            if bdd.test(&zn).unwrap().alarm {
                alarms += 1;
            }
        }
        let mc = alarms as f64 / trials as f64;
        assert!(
            (mc - analytic).abs() < 0.03,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn tighter_alpha_means_higher_threshold() {
        let (loose, _) = detector(0.05);
        let (tight, _) = detector(5e-4);
        assert!(tight.threshold() > loose.threshold());
    }

    #[test]
    fn outcome_reports_statistic_and_threshold() {
        let (bdd, z) = detector(0.05);
        let out = bdd.test(&z).unwrap();
        assert!(out.statistic < 1e-9); // noiseless
        assert!(!out.alarm);
        assert_eq!(out.threshold, bdd.threshold());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn invalid_alpha_panics() {
        let (bdd, _) = detector(0.05);
        let est = bdd.estimator().clone();
        BadDataDetector::new(est, 1.5);
    }
}
