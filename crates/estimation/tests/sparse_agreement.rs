//! Sparse-vs-dense agreement contract for WLS estimation and BDD
//! detection probabilities, across every benchmark case from the
//! paper's 4-bus example to the 300-bus scaling rung.

use gridmtd_estimation::{BadDataDetector, EstimatorBackend, NoiseModel, StateEstimator};
use gridmtd_powergrid::{cases, dcpf, Network};

fn all_cases() -> Vec<Network> {
    vec![
        cases::case4(),
        cases::case14(),
        cases::case30(),
        cases::case57(),
        cases::case118(),
        cases::case300(),
    ]
}

fn measurements(net: &Network, x: &[f64]) -> Vec<f64> {
    let share = net.total_load() / net.n_gens() as f64;
    let dispatch = vec![share; net.n_gens()];
    dcpf::solve_dispatch(net, x, &dispatch)
        .unwrap()
        .measurement_vector()
}

#[test]
fn wls_and_bdd_sparse_match_dense_on_every_case() {
    for net in all_cases() {
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        let noise = NoiseModel::uniform(h.rows(), 1.0);
        let dense =
            StateEstimator::with_backend(h.clone(), &noise, EstimatorBackend::Dense).unwrap();
        let sparse =
            StateEstimator::with_backend(h.clone(), &noise, EstimatorBackend::Sparse).unwrap();

        // A noisy-ish measurement vector: the exact power flow plus a
        // deterministic perturbation pattern.
        let mut z = measurements(&net, &x);
        for (i, v) in z.iter_mut().enumerate() {
            *v += 0.1 * ((i % 7) as f64 - 3.0);
        }

        // WLS estimates agree.
        let td = dense.estimate(&z).unwrap();
        let ts = sparse.estimate(&z).unwrap();
        let scale = td.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in td.iter().zip(ts.iter()) {
            assert!(
                (a - b).abs() <= 1e-8 * scale,
                "{}: estimate {a} vs {b}",
                net.name()
            );
        }

        // Residual statistics agree (relative: J grows with M).
        let jd = dense.residual_statistic(&z).unwrap();
        let js = sparse.residual_statistic(&z).unwrap();
        assert!(
            (jd - js).abs() <= 1e-8 * jd.max(1.0),
            "{}: J {jd} vs {js}",
            net.name()
        );

        // BDD detection probabilities agree: a stealthy attack (image of
        // H) and a non-stealthy one.
        let bdd_dense = BadDataDetector::new(dense, 5e-4);
        let bdd_sparse = BadDataDetector::new(sparse, 5e-4);
        let c: Vec<f64> = (0..h.cols())
            .map(|i| 1e-3 * ((i % 5) as f64 + 1.0))
            .collect();
        let stealthy = h.matvec(&c).unwrap();
        let visible: Vec<f64> = (0..h.rows())
            .map(|i| if i % 9 == 0 { 2.5 } else { 0.0 })
            .collect();
        for attack in [&stealthy, &visible] {
            let pd = bdd_dense.detection_probability(attack).unwrap();
            let ps = bdd_sparse.detection_probability(attack).unwrap();
            assert!(
                (pd - ps).abs() <= 1e-6,
                "{}: detection probability {pd} vs {ps}",
                net.name()
            );
        }
        // The stealthy attack sits at the false-positive floor on both
        // backends.
        let pd = bdd_sparse.detection_probability(&stealthy).unwrap();
        assert!((pd - 5e-4).abs() < 1e-6, "{}: stealthy pd {pd}", net.name());
    }
}
