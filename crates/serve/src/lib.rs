//! # gridmtd-serve — the MTD pipeline as a network daemon
//!
//! A threaded TCP server speaking line-delimited JSON-RPC over
//! `std::net` — no external dependencies — that exposes the full
//! [`MtdSession`](gridmtd_core::MtdSession) pipeline to non-Rust
//! clients and long-lived deployments:
//!
//! - **[`wire`]** — the protocol: one JSON frame per line, methods
//!   mapping 1:1 onto the typed
//!   [`batch::Request`](gridmtd_core::session::batch::Request) layer,
//!   JSON-RPC error codes for every failure class.
//! - **[`session_key`]** — session specs (`case` + config overrides +
//!   `x_pre` + per-session thread budget) and their canonical cache
//!   keys.
//! - **[`lru`]** — the warm-session LRU: requests naming the same
//!   resolved spec share one live session, and therefore one set of
//!   symbolic factorizations, QR bases, and attack ensembles.
//! - **[`server`]** — accept/reader/writer/worker thread anatomy with
//!   same-session request coalescing into single `run_batch` calls.
//! - **[`client`]** / **[`loadtest`]** — a minimal blocking client
//!   (with [`RetryOptions`] seeded-backoff retry) and the replay
//!   driver behind `gridmtd loadtest`.
//! - **[`chaos`]** — the fault-injection sweep behind `gridmtd chaos`:
//!   replays a workload while each registered
//!   [`gridmtd_core::faults`] point fires on a seeded schedule
//!   (requires the `fault-injection` feature).
//!
//! Responses are **bit-identical** to direct in-process session calls:
//! both render through the deterministic
//! [`Json`](gridmtd_scenario::json::Json) writer, and the batch layer
//! is pinned to match per-request execution for any worker count. The
//! daemon-proofing the server leans on lives in the core crates:
//! poisoned estimator-context locks recover instead of cascading,
//! `step_hour` misuse is a typed error, and thread budgets are scoped
//! per session rather than process-global.
//!
//! ## Quickstart
//!
//! ```no_run
//! use gridmtd_serve::{Client, ServeOptions, Server};
//! use gridmtd_scenario::json::Json;
//!
//! # fn main() -> std::io::Result<()> {
//! let mut server = Server::start(&ServeOptions::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let session = Json::parse(r#"{"case":"case14"}"#).unwrap();
//! let params = Json::parse(r#"{"gamma_threshold":0.05}"#).unwrap();
//! let response = client.call("select", &session, &params)?;
//! println!("{response}");
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod chaos;
pub mod client;
pub mod loadtest;
pub mod lru;
pub mod server;
pub mod session_key;
pub mod wire;

pub use chaos::{run as run_chaos, ChaosOptions, ChaosReport};
pub use client::{Client, RetryOptions};
pub use loadtest::{run as run_loadtest, LoadtestOptions, LoadtestReport};
pub use lru::{LruStats, SessionLru};
pub use server::{ServeOptions, Server, ServerStats};
pub use session_key::SessionSpec;
pub use wire::WireError;
