//! A minimal blocking client for the line protocol — enough for the
//! CLI's `loadtest`, the test suite, and scripted callers.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use gridmtd_scenario::json::Json;

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: i64,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        })
    }

    /// Sends one raw frame line (no newline) and returns the raw
    /// response line. The server answers frames on one connection in
    /// the order their responses complete, so interleaved pipelining
    /// must correlate by `id`; this helper is strictly call/response.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on socket failure or a server-side
    /// disconnect.
    pub fn call_raw(&mut self, frame: &str) -> std::io::Result<String> {
        self.send_raw(frame)?;
        self.read_line()
    }

    /// Sends a frame without waiting (for pipelined workloads).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on socket failure.
    pub fn send_raw(&mut self, frame: &str) -> std::io::Result<()> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`]; a clean peer close surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Builds and sends a method call, returning the raw response
    /// line. `session` and `params` may be [`Json::Null`] to omit.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on socket failure.
    pub fn call(&mut self, method: &str, session: &Json, params: &Json) -> std::io::Result<String> {
        let frame = self.request_frame(method, session, params);
        self.call_raw(&frame)
    }

    /// Renders a request frame with a fresh auto-incremented id.
    pub fn request_frame(&mut self, method: &str, session: &Json, params: &Json) -> String {
        self.next_id += 1;
        let mut fields = vec![
            ("id".to_string(), Json::Int(self.next_id)),
            ("method".to_string(), Json::Str(method.to_string())),
        ];
        if !matches!(session, Json::Null) {
            fields.push(("session".to_string(), session.clone()));
        }
        if !matches!(params, Json::Null) {
            fields.push(("params".to_string(), params.clone()));
        }
        Json::Obj(fields).compact()
    }
}
