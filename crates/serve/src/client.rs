//! A minimal blocking client for the line protocol — enough for the
//! CLI's `loadtest`, the test suite, and scripted callers.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use gridmtd_scenario::json::Json;

/// Retry policy for [`Client::call_raw_with_retry`]: capped exponential
/// backoff with deterministic jitter.
///
/// The jitter is drawn from `core::seedstream::mix(seed, attempt)` —
/// no wall clock, no global RNG — so a retrying workload replays
/// bit-identically from its seed while still decorrelating the retry
/// storms of distinct clients (give each a different `seed`).
#[derive(Debug, Clone, Copy)]
pub struct RetryOptions {
    /// Total attempts (first try included). Minimum 1.
    pub attempts: u32,
    /// Backoff before retry `k` (1-based) starts from
    /// `base_delay << (k-1)`, halved and re-filled with jitter.
    pub base_delay: Duration,
    /// Cap applied to the exponential schedule.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryOptions {
    fn default() -> RetryOptions {
        RetryOptions {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed: 0,
        }
    }
}

impl RetryOptions {
    /// The jittered pause before 1-based retry `attempt`: half the
    /// capped exponential delay deterministic, half jittered.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = u64::try_from(self.base_delay.as_millis()).unwrap_or(u64::MAX);
        let cap = u64::try_from(self.max_delay.as_millis()).unwrap_or(u64::MAX);
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(32)); // capped below
        let delay = exp.min(cap).max(1);
        let span = delay / 2 + 1;
        let jitter = gridmtd_core::seedstream::mix(self.seed, u64::from(attempt)) % span;
        Duration::from_millis(delay / 2 + jitter)
    }
}

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: i64,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        })
    }

    /// Bounds every subsequent read; `None` blocks forever (the
    /// default). A timed-out read surfaces as
    /// [`std::io::ErrorKind::WouldBlock`] or
    /// [`std::io::ErrorKind::TimedOut`] depending on platform. Chaos
    /// and test drivers set this so a server that drops a response
    /// (an injected writer fault) costs one bounded wait, not a hang.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the socket rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw frame line (no newline) and returns the raw
    /// response line. The server answers frames on one connection in
    /// the order their responses complete, so interleaved pipelining
    /// must correlate by `id`; this helper is strictly call/response.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on socket failure or a server-side
    /// disconnect.
    pub fn call_raw(&mut self, frame: &str) -> std::io::Result<String> {
        self.send_raw(frame)?;
        self.read_line()
    }

    /// Sends a frame without waiting (for pipelined workloads).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on socket failure.
    pub fn send_raw(&mut self, frame: &str) -> std::io::Result<()> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next response line.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`]; a clean peer close surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Builds and sends a method call, returning the raw response
    /// line. `session` and `params` may be [`Json::Null`] to omit.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on socket failure.
    pub fn call(&mut self, method: &str, session: &Json, params: &Json) -> std::io::Result<String> {
        let frame = self.request_frame(method, session, params);
        self.call_raw(&frame)
    }

    /// Sends `frame` on a fresh connection, retrying on socket errors
    /// and on typed [`OVERLOADED`](crate::wire::OVERLOADED) responses
    /// with capped, seeded-jitter backoff. Returns the final response
    /// line and the number of attempts spent (1 = first try
    /// succeeded). The last `OVERLOADED` response is returned as-is
    /// when the budget runs out — a typed answer, not an error.
    ///
    /// Each attempt reconnects: the common retryable failures (server
    /// restarting, connection reaped as idle, reader thread gone) all
    /// kill the old socket.
    ///
    /// # Errors
    ///
    /// The last attempt's [`std::io::Error`] when every attempt failed
    /// at the socket level.
    pub fn call_raw_with_retry(
        addr: impl ToSocketAddrs + Copy,
        frame: &str,
        opts: &RetryOptions,
    ) -> std::io::Result<(String, u32)> {
        let attempts = opts.attempts.max(1);
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                std::thread::sleep(opts.backoff(attempt - 1));
            }
            match Client::connect(addr).and_then(|mut c| c.call_raw(frame)) {
                Ok(line) => {
                    let overloaded = Json::parse(&line)
                        .ok()
                        .and_then(|doc| match doc.get("error")?.get("code")? {
                            Json::Int(code) => Some(*code),
                            _ => None,
                        })
                        .is_some_and(|code| code == crate::wire::OVERLOADED);
                    if !overloaded || attempt == attempts {
                        return Ok((line, attempt));
                    }
                }
                Err(e) => {
                    if attempt == attempts {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        // Unreachable: the loop returns on its final attempt. Keep a
        // typed error rather than a panic if that invariant ever bends.
        Err(last_err.unwrap_or_else(|| std::io::Error::other("retry budget exhausted")))
    }

    /// Renders a request frame with a fresh auto-incremented id.
    pub fn request_frame(&mut self, method: &str, session: &Json, params: &Json) -> String {
        self.next_id += 1;
        let mut fields = vec![
            ("id".to_string(), Json::Int(self.next_id)),
            ("method".to_string(), Json::Str(method.to_string())),
        ];
        if !matches!(session, Json::Null) {
            fields.push(("session".to_string(), session.clone()));
        }
        if !matches!(params, Json::Null) {
            fields.push(("params".to_string(), params.clone()));
        }
        Json::Obj(fields).compact()
    }
}
