//! The threaded TCP server: accept loop, per-connection I/O threads,
//! and a worker pool with same-session request coalescing.
//!
//! Thread anatomy, for a server with `W` workers and `C` connections:
//!
//! - **1 accept thread** — blocks on [`TcpListener::accept`], spawns
//!   the per-connection pair, exits on shutdown (unblocked by a
//!   self-connect).
//! - **C reader threads** — length-capped line reads; each frame is
//!   parsed and either answered inline (`ping`, `stats`, protocol
//!   errors — malformed or oversized frames get a JSON error response
//!   on the same connection, never a dropped socket) or enqueued as a
//!   job for the pool.
//! - **C writer threads** — drain an `mpsc` channel of response lines;
//!   all writes to a socket funnel through its writer, so worker
//!   responses never interleave mid-frame.
//! - **W worker threads** — pop a job, then *coalesce*: drain every
//!   queued job bound for the same warm session (up to
//!   [`ServeOptions::batch_max`]) and execute them as one
//!   `MtdSession::run_batch` call, so the per-batch session lookup
//!   and scoped thread budget are paid once and the batch layer
//!   parallelizes across the coalesced requests.
//!
//! Responses are bit-identical to direct `MtdSession` calls: both
//! sides of the comparison render through the deterministic
//! [`Json`] writer, and `run_batch` is pinned (by the core crate's
//! own tests) to match per-request calls for any worker count.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use gridmtd_core::session::batch::Request;
use gridmtd_scenario::json::Json;

use crate::lru::{LruStats, SessionLru};
use crate::session_key::SessionSpec;
use crate::wire::{self, Call, WireError, FRAME_TOO_LARGE};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Warm-session LRU capacity.
    pub capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Most requests coalesced into one `run_batch` call.
    pub batch_max: usize,
    /// Request frames longer than this (bytes, excluding the newline)
    /// are rejected with [`FRAME_TOO_LARGE`].
    pub max_frame_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            capacity: 8,
            workers: 2,
            batch_max: 16,
            max_frame_bytes: 4 << 20,
        }
    }
}

/// A point-in-time statistics snapshot (the `stats` wire method
/// returns the same numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Warm-session cache counters.
    pub lru: LruStats,
    /// Warm sessions currently resident (≤ the LRU capacity).
    pub resident: usize,
    /// Pipeline requests executed (excludes `ping` / `stats`).
    pub requests: u64,
    /// `run_batch` calls issued.
    pub batches: u64,
    /// Requests that rode along in another request's batch
    /// (`requests - batches` for a single-session workload).
    pub coalesced: u64,
    /// Connections accepted since start.
    pub connections: u64,
}

/// One queued pipeline request.
struct Job {
    id: Json,
    key: String,
    spec: SessionSpec,
    request: Request,
    out: mpsc::Sender<String>,
}

struct Shared {
    lru: SessionLru,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    batch_max: usize,
    max_frame_bytes: usize,
    requests: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    connections: AtomicU64,
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            lru: self.lru.stats(),
            resident: self.lru.len(),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping the handle shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the bind fails or a server thread cannot
    /// be spawned; a partial start is unwound before returning.
    pub fn start(opts: &ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            lru: SessionLru::new(opts.capacity),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_max: opts.batch_max.max(1),
            max_frame_bytes: opts.max_frame_bytes.max(1),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::with_capacity(opts.workers.max(1));
        for i in 0..opts.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("gridmtd-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match handle {
                Ok(handle) => workers.push(handle),
                Err(err) => {
                    abort_start(&shared, workers);
                    return Err(err);
                }
            }
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gridmtd-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
        };
        let accept = match accept {
            Ok(accept) => accept,
            Err(err) => {
                abort_start(&shared, workers);
                return Err(err);
            }
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Stops accepting, finishes queued work, and joins the pool.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop; a failed connect means the listener
        // is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Readers blocked on idle sockets exit once their peer is gone.
        let conns = std::mem::take(&mut *lock(&self.shared.conns));
        for conn in conns {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Unwinds a partially started pool when a later thread spawn fails:
/// already-running workers are told to shut down and joined, so the
/// failed start leaves no orphan threads behind.
fn abort_start(shared: &Shared, workers: Vec<JoinHandle<()>>) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.available.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).push(clone);
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("gridmtd-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

/// Outcome of one capped line read.
enum FrameRead {
    Line(String),
    TooLarge,
    Eof,
}

fn read_frame(
    reader: &mut BufReader<TcpStream>,
    max_frame_bytes: usize,
) -> std::io::Result<FrameRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                FrameRead::Eof
            } else {
                FrameRead::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let over = line.len() + pos > max_frame_bytes;
            if !over {
                line.extend_from_slice(&buf[..pos]);
            }
            reader.consume(pos + 1);
            return Ok(if over {
                FrameRead::TooLarge
            } else {
                FrameRead::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        let chunk = buf.len();
        if line.len() + chunk > max_frame_bytes {
            // Discard until the newline, then report the overrun.
            reader.consume(chunk);
            loop {
                let buf = reader.fill_buf()?;
                if buf.is_empty() {
                    return Ok(FrameRead::Eof);
                }
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    reader.consume(pos + 1);
                    return Ok(FrameRead::TooLarge);
                }
                let n = buf.len();
                reader.consume(n);
            }
        }
        line.extend_from_slice(buf);
        reader.consume(chunk);
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::Builder::new()
        .name("gridmtd-conn-writer".to_string())
        .spawn(move || writer_loop(write_half, &rx));
    let mut reader = BufReader::new(stream);

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut reader, shared.max_frame_bytes) {
            Ok(FrameRead::Line(line)) => line,
            Ok(FrameRead::TooLarge) => {
                let err = WireError::new(
                    FRAME_TOO_LARGE,
                    format!("frame exceeds {} bytes", shared.max_frame_bytes),
                );
                if tx.send(wire::error_frame(&Json::Null, &err)).is_err() {
                    break;
                }
                continue;
            }
            Ok(FrameRead::Eof) | Err(_) => break,
        };
        if frame.trim().is_empty() {
            continue;
        }
        let parsed = match wire::parse_frame(&frame) {
            Ok(parsed) => parsed,
            Err(err) => {
                // Salvage the id for correlation when the frame was
                // valid JSON but an invalid request.
                let id = Json::parse(&frame)
                    .ok()
                    .and_then(|doc| doc.get("id").cloned())
                    .unwrap_or(Json::Null);
                if tx.send(wire::error_frame(&id, &err)).is_err() {
                    break;
                }
                continue;
            }
        };
        let response = match parsed.call {
            Call::Ping => Some(wire::ok_frame(
                &parsed.id,
                Json::obj(vec![("ok", Json::Bool(true))]),
            )),
            Call::Stats => Some(wire::ok_frame(&parsed.id, stats_json(&shared.stats()))),
            Call::Run(request) => match parsed.session {
                Some(spec) => {
                    let job = Job {
                        id: parsed.id,
                        key: spec.key(),
                        spec,
                        request,
                        out: tx.clone(),
                    };
                    lock(&shared.queue).push_back(job);
                    shared.available.notify_one();
                    None
                }
                // parse_frame attaches a session to every pipeline
                // call; answer a typed error rather than trusting that
                // invariant with a reader-thread panic.
                None => Some(wire::error_frame(
                    &parsed.id,
                    &WireError::new(wire::INVALID_REQUEST, "missing session"),
                )),
            },
        };
        if let Some(response) = response {
            if tx.send(response).is_err() {
                break;
            }
        }
    }
    // Dropping our sender lets the writer exit once in-flight jobs
    // (which hold clones) have answered.
    drop(tx);
    if let Ok(writer) = writer {
        let _ = writer.join();
    }
}

fn writer_loop(stream: TcpStream, rx: &mpsc::Receiver<String>) {
    let mut out = std::io::BufWriter::new(stream);
    while let Ok(line) = rx.recv() {
        if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
            return;
        }
        if out.flush().is_err() {
            return;
        }
    }
}

/// Pops one job and drains every queued job bound for the same warm
/// session, preserving arrival order, up to `batch_max` total.
fn take_batch(queue: &mut VecDeque<Job>, batch_max: usize) -> Option<Vec<Job>> {
    let first = queue.pop_front()?;
    let key = first.key.clone();
    let mut batch = vec![first];
    let mut i = 0;
    while i < queue.len() && batch.len() < batch_max {
        if queue[i].key == key {
            match queue.remove(i) {
                Some(job) => batch.push(job),
                // Unreachable while the loop bound holds; stop
                // coalescing rather than panic a worker thread.
                None => break,
            }
        } else {
            i += 1;
        }
    }
    Some(batch)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let batch = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(batch) = take_batch(&mut queue, shared.batch_max) {
                    break batch;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        run_jobs(shared, batch);
    }
}

fn run_jobs(shared: &Arc<Shared>, batch: Vec<Job>) {
    shared
        .requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .coalesced
        .fetch_add(batch.len() as u64 - 1, Ordering::Relaxed);

    let session = match shared.lru.get_or_build(&batch[0].spec) {
        Ok(session) => session,
        Err(err) => {
            for job in &batch {
                let _ = job.out.send(wire::error_frame(&job.id, &err));
            }
            return;
        }
    };
    let requests: Vec<Request> = batch.iter().map(|job| job.request.clone()).collect();
    let results = session.run_batch(&requests);
    for (job, result) in batch.iter().zip(results) {
        let line = match result {
            Ok(response) => wire::ok_frame(&job.id, wire::encode_response(&response)),
            Err(err) => wire::error_frame(&job.id, &wire::pipeline_error(&err)),
        };
        let _ = job.out.send(line);
    }
}

/// Encodes a stats snapshot as the `stats` method's result document.
pub fn stats_json(stats: &ServerStats) -> Json {
    #[allow(clippy::cast_possible_wrap)]
    fn int(v: u64) -> Json {
        Json::Int(v as i64)
    }
    #[allow(clippy::cast_possible_wrap)]
    fn resident_int(v: usize) -> i64 {
        v as i64
    }
    Json::obj(vec![
        (
            "lru",
            Json::obj(vec![
                ("hits", int(stats.lru.hits)),
                ("misses", int(stats.lru.misses)),
                ("evictions", int(stats.lru.evictions)),
                ("resident", Json::Int(resident_int(stats.resident))),
            ]),
        ),
        ("requests", int(stats.requests)),
        ("batches", int(stats.batches)),
        ("coalesced", int(stats.coalesced)),
        ("connections", int(stats.connections)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(key: &str) -> Job {
        let (tx, _rx) = mpsc::channel();
        Job {
            id: Json::Null,
            key: key.to_string(),
            spec: SessionSpec::from_json(&Json::parse(r#"{"case":"case4"}"#).unwrap()).unwrap(),
            request: Request::Baseline,
            out: tx,
        }
    }

    #[test]
    fn take_batch_coalesces_same_key_in_order() {
        let mut queue: VecDeque<Job> = ["a", "b", "a", "c", "a"].iter().map(|k| job(k)).collect();
        let batch = take_batch(&mut queue, 16).unwrap();
        assert_eq!(
            batch.iter().map(|j| j.key.as_str()).collect::<Vec<_>>(),
            ["a", "a", "a"]
        );
        assert_eq!(
            queue.iter().map(|j| j.key.as_str()).collect::<Vec<_>>(),
            ["b", "c"]
        );
    }

    #[test]
    fn take_batch_respects_batch_max() {
        let mut queue: VecDeque<Job> = (0..5).map(|_| job("a")).collect();
        let batch = take_batch(&mut queue, 2).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(queue.len(), 3);
        assert!(take_batch(&mut VecDeque::new(), 4).is_none());
    }
}
