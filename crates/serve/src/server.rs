//! The threaded TCP server: accept loop, per-connection I/O threads,
//! and a worker pool with same-session request coalescing.
//!
//! Thread anatomy, for a server with `W` workers and `C` connections:
//!
//! - **1 accept thread** — blocks on [`TcpListener::accept`], spawns
//!   the per-connection pair, exits on shutdown (unblocked by a
//!   self-connect).
//! - **C reader threads** — length-capped line reads; each frame is
//!   parsed and either answered inline (`ping`, `stats`, protocol
//!   errors — malformed or oversized frames get a JSON error response
//!   on the same connection, never a dropped socket) or enqueued as a
//!   job for the pool.
//! - **C writer threads** — drain an `mpsc` channel of response lines;
//!   all writes to a socket funnel through its writer, so worker
//!   responses never interleave mid-frame.
//! - **W worker threads** — pop a job, then *coalesce*: drain every
//!   queued job bound for the same warm session (up to
//!   [`ServeOptions::batch_max`]) and execute them as one
//!   `MtdSession::run_batch` call, so the per-batch session lookup
//!   and scoped thread budget are paid once and the batch layer
//!   parallelizes across the coalesced requests.
//!
//! Responses are bit-identical to direct `MtdSession` calls: both
//! sides of the comparison render through the deterministic
//! [`Json`] writer, and `run_batch` is pinned (by the core crate's
//! own tests) to match per-request calls for any worker count.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
// Operational timing only (idle reaping, request deadlines) — never on
// a result path: responses stay a pure function of request content.
// This file is on the lint's wallclock allow-list for that reason.
use std::time::{Duration, Instant};

use gridmtd_core::session::batch::Request;
use gridmtd_scenario::json::Json;

use crate::lru::{LruStats, SessionLru};
use crate::session_key::SessionSpec;
use crate::wire::{self, Call, WireError, FRAME_TOO_LARGE};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Warm-session LRU capacity.
    pub capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Most requests coalesced into one `run_batch` call.
    pub batch_max: usize,
    /// Request frames longer than this (bytes, excluding the newline)
    /// are rejected with [`FRAME_TOO_LARGE`].
    pub max_frame_bytes: usize,
    /// A connection that sends no bytes for this long is reaped: its
    /// socket is closed and its reader/writer threads are reclaimed
    /// (`None` disables reaping). Without it, every dead-but-unclosed
    /// client leaks two parked threads forever.
    pub idle_timeout: Option<Duration>,
    /// Server-side default deadline for queued pipeline requests,
    /// measured from enqueue. A request whose deadline passes before a
    /// worker picks it up is answered with
    /// [`wire::DEADLINE_EXCEEDED`]
    /// instead of running late work nobody is waiting for. A frame's
    /// own `deadline_ms` tightens (never loosens) this.
    pub request_deadline: Option<Duration>,
    /// Most pipeline jobs allowed to wait in the worker queue. Beyond
    /// it, new requests are shed immediately with
    /// [`wire::OVERLOADED`] — bounded latency
    /// under overload instead of an unbounded queue.
    pub queue_max: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            capacity: 8,
            workers: 2,
            batch_max: 16,
            max_frame_bytes: 4 << 20,
            idle_timeout: Some(Duration::from_secs(60)),
            request_deadline: None,
            queue_max: 1024,
        }
    }
}

/// A point-in-time statistics snapshot (the `stats` wire method
/// returns the same numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Warm-session cache counters.
    pub lru: LruStats,
    /// Warm sessions currently resident (≤ the LRU capacity).
    pub resident: usize,
    /// Pipeline requests executed (excludes `ping` / `stats`).
    pub requests: u64,
    /// `run_batch` calls issued.
    pub batches: u64,
    /// Requests that rode along in another request's batch
    /// (`requests - batches` for a single-session workload).
    pub coalesced: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Idle connections reaped by [`ServeOptions::idle_timeout`].
    pub reaped: u64,
    /// Requests shed with `OVERLOADED` by [`ServeOptions::queue_max`].
    pub shed: u64,
    /// Requests answered `DEADLINE_EXCEEDED` without being run.
    pub expired: u64,
}

/// One queued pipeline request.
struct Job {
    id: Json,
    key: String,
    spec: SessionSpec,
    request: Request,
    out: mpsc::Sender<String>,
    /// When this job stops being worth starting (see
    /// [`ServeOptions::request_deadline`]); `None` = no deadline.
    deadline: Option<Instant>,
}

struct Shared {
    lru: SessionLru,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    batch_max: usize,
    max_frame_bytes: usize,
    idle_timeout: Option<Duration>,
    request_deadline: Option<Duration>,
    queue_max: usize,
    requests: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    connections: AtomicU64,
    reaped: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            lru: self.lru.stats(),
            resident: self.lru.len(),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping the handle shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the bind fails or a server thread cannot
    /// be spawned; a partial start is unwound before returning.
    pub fn start(opts: &ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            lru: SessionLru::new(opts.capacity),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            batch_max: opts.batch_max.max(1),
            max_frame_bytes: opts.max_frame_bytes.max(1),
            idle_timeout: opts.idle_timeout.filter(|t| !t.is_zero()),
            request_deadline: opts.request_deadline,
            queue_max: opts.queue_max.max(1),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::with_capacity(opts.workers.max(1));
        for i in 0..opts.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("gridmtd-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match handle {
                Ok(handle) => workers.push(handle),
                Err(err) => {
                    abort_start(&shared, workers);
                    return Err(err);
                }
            }
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gridmtd-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
        };
        let accept = match accept {
            Ok(accept) => accept,
            Err(err) => {
                abort_start(&shared, workers);
                return Err(err);
            }
        };
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current statistics.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Stops accepting, finishes queued work, and joins the pool.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop; a failed connect means the listener
        // is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Readers blocked on idle sockets exit once their read half is
        // gone. Shutting down only the *read* side keeps the drain
        // guarantee: the workers joined above have already queued every
        // in-flight response onto the writer channels, and the intact
        // write halves let the writer threads flush those lines to the
        // clients before exiting (the reader's EOF drops the channel
        // sender, so each writer drains and terminates).
        let conns = std::mem::take(&mut *lock(&self.shared.conns));
        for conn in conns {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Unwinds a partially started pool when a later thread spawn fails:
/// already-running workers are told to shut down and joined, so the
/// failed start leaves no orphan threads behind.
fn abort_start(shared: &Shared, workers: Vec<JoinHandle<()>>) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.available.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.connections.fetch_add(1, Ordering::Relaxed);
        // A blocking read wakes at least every idle_timeout, so a dead
        // client's threads are reclaimed instead of parked forever.
        if shared.idle_timeout.is_some() {
            let _ = stream.set_read_timeout(shared.idle_timeout);
        }
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).push(clone);
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("gridmtd-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

/// Outcome of one capped line read.
enum FrameRead {
    Line(String),
    TooLarge,
    Eof,
}

fn read_frame(
    reader: &mut BufReader<TcpStream>,
    max_frame_bytes: usize,
) -> std::io::Result<FrameRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                FrameRead::Eof
            } else {
                FrameRead::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let over = line.len() + pos > max_frame_bytes;
            if !over {
                line.extend_from_slice(&buf[..pos]);
            }
            reader.consume(pos + 1);
            return Ok(if over {
                FrameRead::TooLarge
            } else {
                FrameRead::Line(String::from_utf8_lossy(&line).into_owned())
            });
        }
        let chunk = buf.len();
        if line.len() + chunk > max_frame_bytes {
            // Discard until the newline, then report the overrun.
            reader.consume(chunk);
            loop {
                let buf = reader.fill_buf()?;
                if buf.is_empty() {
                    return Ok(FrameRead::Eof);
                }
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    reader.consume(pos + 1);
                    return Ok(FrameRead::TooLarge);
                }
                let n = buf.len();
                reader.consume(n);
            }
        }
        line.extend_from_slice(buf);
        reader.consume(chunk);
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::Builder::new()
        .name("gridmtd-conn-writer".to_string())
        .spawn(move || writer_loop(write_half, &rx));
    let mut reader = BufReader::new(stream);

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Injection point: a failed socket read closes this connection
        // (like any I/O error) and must leave the server serving.
        if gridmtd_faults::point!("serve.conn.read") {
            break;
        }
        let frame = match read_frame(&mut reader, shared.max_frame_bytes) {
            Ok(FrameRead::Line(line)) => line,
            Ok(FrameRead::TooLarge) => {
                let err = WireError::new(
                    FRAME_TOO_LARGE,
                    format!("frame exceeds {} bytes", shared.max_frame_bytes),
                );
                if tx.send(wire::error_frame(&Json::Null, &err)).is_err() {
                    break;
                }
                continue;
            }
            Ok(FrameRead::Eof) => break,
            // The read timeout elapsed with no bytes: the peer is idle
            // (or gone without a FIN). Reap the connection — both its
            // threads exit and the socket closes.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                shared.reaped.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(_) => break,
        };
        if frame.trim().is_empty() {
            continue;
        }
        // Injection point: parser blow-ups must degrade to a typed
        // parse-error response, never a dropped connection or panic.
        let parsed = if gridmtd_faults::point!("serve.frame.parse") {
            Err(WireError::new(
                wire::PARSE_ERROR,
                "fault-injection: forced frame parse failure",
            ))
        } else {
            wire::parse_frame(&frame)
        };
        let parsed = match parsed {
            Ok(parsed) => parsed,
            Err(err) => {
                // Salvage the id for correlation when the frame was
                // valid JSON but an invalid request.
                let id = Json::parse(&frame)
                    .ok()
                    .and_then(|doc| doc.get("id").cloned())
                    .unwrap_or(Json::Null);
                if tx.send(wire::error_frame(&id, &err)).is_err() {
                    break;
                }
                continue;
            }
        };
        let response = match parsed.call {
            Call::Ping => Some(wire::ok_frame(
                &parsed.id,
                Json::obj(vec![("ok", Json::Bool(true))]),
            )),
            Call::Stats => Some(wire::ok_frame(&parsed.id, stats_json(&shared.stats()))),
            Call::Run(request) => match parsed.session {
                Some(spec) => {
                    // The effective deadline is the tighter of the
                    // frame's own budget and the server default.
                    let budget_ms = match (parsed.deadline_ms, shared.request_deadline) {
                        (Some(ms), Some(default)) => {
                            Some(ms.min(u64::try_from(default.as_millis()).unwrap_or(u64::MAX)))
                        }
                        (Some(ms), None) => Some(ms),
                        (None, Some(default)) => {
                            Some(u64::try_from(default.as_millis()).unwrap_or(u64::MAX))
                        }
                        (None, None) => None,
                    };
                    let job = Job {
                        id: parsed.id,
                        key: spec.key(),
                        spec,
                        request,
                        out: tx.clone(),
                        deadline: budget_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
                    };
                    let mut queue = lock(&shared.queue);
                    if queue.len() >= shared.queue_max {
                        // Shed at the door: answering OVERLOADED now
                        // bounds queue growth and tells the client to
                        // back off, instead of absorbing unbounded
                        // latency the caller will time out on anyway.
                        drop(queue);
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                        Some(wire::error_frame(
                            &job.id,
                            &WireError::new(
                                wire::OVERLOADED,
                                format!("worker queue full ({} queued)", shared.queue_max),
                            ),
                        ))
                    } else {
                        queue.push_back(job);
                        drop(queue);
                        shared.available.notify_one();
                        None
                    }
                }
                // parse_frame attaches a session to every pipeline
                // call; answer a typed error rather than trusting that
                // invariant with a reader-thread panic.
                None => Some(wire::error_frame(
                    &parsed.id,
                    &WireError::new(wire::INVALID_REQUEST, "missing session"),
                )),
            },
        };
        if let Some(response) = response {
            if tx.send(response).is_err() {
                break;
            }
        }
    }
    // Dropping our sender lets the writer exit once in-flight jobs
    // (which hold clones) have answered.
    drop(tx);
    if let Ok(writer) = writer {
        let _ = writer.join();
    }
}

fn writer_loop(stream: TcpStream, rx: &mpsc::Receiver<String>) {
    let mut out = std::io::BufWriter::new(stream);
    while let Ok(line) = rx.recv() {
        // Injection point: a failed response write ends this
        // connection like any socket error; the server must keep
        // serving other connections.
        if gridmtd_faults::point!("serve.conn.write") {
            return;
        }
        if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
            return;
        }
        if out.flush().is_err() {
            return;
        }
    }
}

/// Pops one job and drains every queued job bound for the same warm
/// session, preserving arrival order, up to `batch_max` total.
fn take_batch(queue: &mut VecDeque<Job>, batch_max: usize) -> Option<Vec<Job>> {
    let first = queue.pop_front()?;
    let key = first.key.clone();
    let mut batch = vec![first];
    let mut i = 0;
    while i < queue.len() && batch.len() < batch_max {
        if queue[i].key == key {
            match queue.remove(i) {
                Some(job) => batch.push(job),
                // Unreachable while the loop bound holds; stop
                // coalescing rather than panic a worker thread.
                None => break,
            }
        } else {
            i += 1;
        }
    }
    Some(batch)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let batch = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(batch) = take_batch(&mut queue, shared.batch_max) {
                    break batch;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        run_jobs(shared, batch);
    }
}

fn run_jobs(shared: &Arc<Shared>, batch: Vec<Job>) {
    // Enforce deadlines at dispatch: a blocking batch cannot be
    // preempted once started, so "picked up in time" is the promise —
    // work whose waiter has already given up is dropped here with a
    // typed error rather than burning a worker on it.
    let now = Instant::now();
    let (expired, batch): (Vec<Job>, Vec<Job>) = batch
        .into_iter()
        .partition(|job| job.deadline.is_some_and(|d| d <= now));
    for job in &expired {
        shared.expired.fetch_add(1, Ordering::Relaxed);
        let err = WireError::new(
            wire::DEADLINE_EXCEEDED,
            "deadline elapsed before a worker could start the request",
        );
        let _ = job.out.send(wire::error_frame(&job.id, &err));
    }
    if batch.is_empty() {
        return;
    }
    shared
        .requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .coalesced
        .fetch_add(batch.len() as u64 - 1, Ordering::Relaxed);

    // Injection point: a worker that cannot dispatch its batch must
    // answer every job with a typed error, not drop or panic.
    if gridmtd_faults::point!("serve.worker.dispatch") {
        let err = WireError::new(
            wire::PIPELINE_ERROR,
            "fault-injection: worker dispatch failed",
        );
        for job in &batch {
            let _ = job.out.send(wire::error_frame(&job.id, &err));
        }
        return;
    }

    let session = match shared.lru.get_or_build(&batch[0].spec) {
        Ok(session) => session,
        Err(err) => {
            for job in &batch {
                let _ = job.out.send(wire::error_frame(&job.id, &err));
            }
            return;
        }
    };
    let requests: Vec<Request> = batch.iter().map(|job| job.request.clone()).collect();
    let results = session.run_batch(&requests);
    for (job, result) in batch.iter().zip(results) {
        let line = match result {
            Ok(response) => wire::ok_frame(&job.id, wire::encode_response(&response)),
            Err(err) => wire::error_frame(&job.id, &wire::pipeline_error(&err)),
        };
        let _ = job.out.send(line);
    }
}

/// Encodes a stats snapshot as the `stats` method's result document.
pub fn stats_json(stats: &ServerStats) -> Json {
    #[allow(clippy::cast_possible_wrap)]
    fn int(v: u64) -> Json {
        Json::Int(v as i64)
    }
    #[allow(clippy::cast_possible_wrap)]
    fn resident_int(v: usize) -> i64 {
        v as i64
    }
    Json::obj(vec![
        (
            "lru",
            Json::obj(vec![
                ("hits", int(stats.lru.hits)),
                ("misses", int(stats.lru.misses)),
                ("evictions", int(stats.lru.evictions)),
                ("resident", Json::Int(resident_int(stats.resident))),
            ]),
        ),
        ("requests", int(stats.requests)),
        ("batches", int(stats.batches)),
        ("coalesced", int(stats.coalesced)),
        ("connections", int(stats.connections)),
        ("reaped", int(stats.reaped)),
        ("shed", int(stats.shed)),
        ("expired", int(stats.expired)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(key: &str) -> Job {
        let (tx, _rx) = mpsc::channel();
        Job {
            id: Json::Null,
            key: key.to_string(),
            spec: SessionSpec::from_json(&Json::parse(r#"{"case":"case4"}"#).unwrap()).unwrap(),
            request: Request::Baseline,
            out: tx,
            deadline: None,
        }
    }

    #[test]
    fn take_batch_coalesces_same_key_in_order() {
        let mut queue: VecDeque<Job> = ["a", "b", "a", "c", "a"].iter().map(|k| job(k)).collect();
        let batch = take_batch(&mut queue, 16).unwrap();
        assert_eq!(
            batch.iter().map(|j| j.key.as_str()).collect::<Vec<_>>(),
            ["a", "a", "a"]
        );
        assert_eq!(
            queue.iter().map(|j| j.key.as_str()).collect::<Vec<_>>(),
            ["b", "c"]
        );
    }

    #[test]
    fn take_batch_respects_batch_max() {
        let mut queue: VecDeque<Job> = (0..5).map(|_| job("a")).collect();
        let batch = take_batch(&mut queue, 2).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(queue.len(), 3);
        assert!(take_batch(&mut VecDeque::new(), 4).is_none());
    }
}
