//! The `loadtest` replay driver: hammer a server with concurrent
//! clients and report latency percentiles and throughput.
//!
//! The workload is deterministic and exercises the real pipeline: each
//! client fetches the session baseline once (warming the shared
//! session on first contact), then issues `evaluate` calls whose
//! perturbations cycle through a fixed set of scalings of the
//! baseline reactances — every request does fresh measurement-matrix
//! and detection-probability work against the warm caches.
//!
//! With `GRIDMTD_BENCH_JSON` set, the report appends a snapshot row
//! per the bench contract (`{"bench":"serve_loadtest/<case>",
//! "mean_ns":…,"iters":…}`), so `bench_gate` can compare runs against
//! a committed baseline.

use std::io::Write as _;
use std::time::{Duration, Instant};

use gridmtd_scenario::json::Json;

use crate::client::Client;
use crate::server::{ServeOptions, Server, ServerStats};

/// Loadtest configuration.
#[derive(Debug, Clone)]
pub struct LoadtestOptions {
    /// Case the session spec names.
    pub case: String,
    /// Config overrides forwarded in the session spec (compact JSON
    /// object; empty = defaults).
    pub config: Json,
    /// Total `evaluate` requests across all clients.
    pub requests: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Address of a running server, or `None` to self-host one for
    /// the duration of the run.
    pub spawn: Option<ServeOptions>,
    /// Address used when `spawn` is `None`.
    pub addr: String,
}

impl Default for LoadtestOptions {
    fn default() -> LoadtestOptions {
        LoadtestOptions {
            case: "case4".to_string(),
            config: Json::Obj(vec![]),
            requests: 64,
            clients: 4,
            spawn: Some(ServeOptions::default()),
            addr: String::new(),
        }
    }
}

/// Results of a loadtest run.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Requests that returned a `result`.
    pub ok: usize,
    /// Requests that returned an `error`.
    pub errors: usize,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Median request latency.
    pub p50: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Mean request latency.
    pub mean: Duration,
    /// Requests per second over the run.
    pub throughput_rps: f64,
    /// Server statistics after the run (self-hosted runs only).
    pub server_stats: Option<ServerStats>,
}

impl LoadtestReport {
    /// Human-readable multi-line summary.
    pub fn render(&self, case: &str) -> String {
        let mut out = format!(
            "loadtest {case}: {} ok, {} errors in {:.2}s\n  p50 {:.2} ms, p99 {:.2} ms, mean {:.2} ms, {:.1} req/s\n",
            self.ok,
            self.errors,
            self.elapsed.as_secs_f64(),
            ms(self.p50),
            ms(self.p99),
            ms(self.mean),
            self.throughput_rps,
        );
        if let Some(stats) = &self.server_stats {
            out.push_str(&format!(
                "  lru: {} hits / {} misses / {} evictions; {} batches for {} requests ({} coalesced)\n",
                stats.lru.hits,
                stats.lru.misses,
                stats.lru.evictions,
                stats.batches,
                stats.requests,
                stats.coalesced,
            ));
        }
        out
    }

    /// Appends the snapshot row to `GRIDMTD_BENCH_JSON` when set.
    pub fn append_bench_row(&self, case: &str) {
        let Ok(path) = std::env::var("GRIDMTD_BENCH_JSON") else {
            return;
        };
        #[allow(clippy::cast_precision_loss)]
        let mean_ns = self.mean.as_nanos() as f64;
        let iters = self.ok + self.errors;
        let line = format!(
            "{{\"bench\":\"serve_loadtest/{case}\",\"mean_ns\":{mean_ns:.1},\"iters\":{iters}}}\n"
        );
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = write {
            eprintln!("warning: could not append to {path}: {e}");
        }
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Runs the loadtest.
///
/// # Errors
///
/// [`std::io::Error`] when the server cannot be spawned or reached, a
/// client connection fails, or the baseline warm-up call errors.
pub fn run(opts: &LoadtestOptions) -> std::io::Result<LoadtestReport> {
    let server = match &opts.spawn {
        Some(serve_opts) => Some(Server::start(serve_opts)?),
        None => None,
    };
    let addr = server
        .as_ref()
        .map_or_else(|| opts.addr.clone(), |s| s.local_addr().to_string());

    let session = Json::obj(vec![
        ("case", Json::Str(opts.case.clone())),
        ("config", opts.config.clone()),
    ]);

    // Warm the shared session and learn the reactance vector the
    // evaluate workload perturbs.
    let baseline = {
        let mut client = Client::connect(&addr)?;
        let line = client.call("baseline", &session, &Json::Null)?;
        let doc = Json::parse(&line).map_err(invalid)?;
        if let Some(err) = doc.get("error") {
            return Err(invalid(format!("baseline failed: {}", err.compact())));
        }
        doc.get("result")
            .and_then(|r| r.get("x"))
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("baseline response missing result.x"))?
            .iter()
            .map(|v| v.as_f64().unwrap_or(0.0))
            .collect::<Vec<f64>>()
    };

    let clients = opts.clients.max(1);
    let total = opts.requests;
    let started = Instant::now();
    let outcomes: Vec<std::io::Result<(Vec<Duration>, usize, usize)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    let session = session.clone();
                    let baseline = baseline.clone();
                    // Client c handles requests c, c+clients, c+2*clients, …
                    let count = total / clients + usize::from(c < total % clients);
                    scope.spawn(move || client_loop(&addr, &session, &baseline, c, count))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    // A panicked client thread becomes a reported error,
                    // not a loadtest-wide panic cascade.
                    h.join()
                        .unwrap_or_else(|_| Err(invalid("loadtest client thread panicked")))
                })
                .collect()
        });
    let elapsed = started.elapsed();

    let mut latencies = Vec::with_capacity(total);
    let (mut ok, mut errors) = (0, 0);
    for outcome in outcomes {
        let (lat, o, e) = outcome?;
        latencies.extend(lat);
        ok += o;
        errors += e;
    }
    latencies.sort_unstable();
    let percentile = |p: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_precision_loss,
            clippy::cast_sign_loss
        )]
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    let mean = if latencies.is_empty() {
        Duration::ZERO
    } else {
        #[allow(clippy::cast_possible_truncation)]
        let nanos = (latencies.iter().map(Duration::as_nanos).sum::<u128>()
            / latencies.len() as u128) as u64;
        Duration::from_nanos(nanos)
    };
    #[allow(clippy::cast_precision_loss)]
    let throughput_rps = (ok + errors) as f64 / elapsed.as_secs_f64().max(1e-9);

    Ok(LoadtestReport {
        ok,
        errors,
        elapsed,
        p50: percentile(0.50),
        p99: percentile(0.99),
        mean,
        throughput_rps,
        server_stats: server.as_ref().map(Server::stats),
    })
}

fn client_loop(
    addr: &str,
    session: &Json,
    baseline: &[f64],
    client_index: usize,
    count: usize,
) -> std::io::Result<(Vec<Duration>, usize, usize)> {
    // Deterministic per-request scalings: small sign-mixed
    // perturbations that keep the OPF feasible on every case.
    const SCALES: [f64; 4] = [1.10, 0.92, 1.18, 0.88];
    let mut client = Client::connect(addr)?;
    let mut latencies = Vec::with_capacity(count);
    let (mut ok, mut errors) = (0, 0);
    for i in 0..count {
        let scale = SCALES[(client_index + i) % SCALES.len()];
        let x_post: Vec<f64> = baseline.iter().map(|&x| x * scale).collect();
        let params = Json::obj(vec![("x_post", Json::floats(&x_post))]);
        let frame = client.request_frame("evaluate", session, &params);
        let sent = Instant::now();
        let line = client.call_raw(&frame)?;
        latencies.push(sent.elapsed());
        if line.contains("\"error\"") {
            errors += 1;
        } else {
            ok += 1;
        }
    }
    Ok((latencies, ok, errors))
}

fn invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}
