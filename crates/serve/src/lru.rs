//! The warm-session LRU: bounded cache of live [`MtdSession`]s.
//!
//! Sessions are expensive to warm up (symbolic factorizations, QR
//! bases, attack ensembles) and cheap to keep around, so the server
//! caches them keyed by [`SessionSpec::key`] and evicts least-recently
//! used when the bound is hit. Eviction drops the server's `Arc` —
//! requests already running on an evicted session finish normally and
//! the memory is reclaimed when the last clone drops.
//!
//! Building a missing session happens **outside** the table lock: a
//! large case can take seconds to warm, and holding the lock would
//! stall every hit on other keys behind it. The cost is that two
//! concurrent first requests for the same new key may both build; the
//! insert-if-absent check makes one of the builds redundant rather
//! than both resident.

use std::sync::{Arc, Mutex};

use gridmtd_core::MtdSession;

use crate::session_key::SessionSpec;
use crate::wire::WireError;

/// Cache statistics, cumulative since server start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LruStats {
    /// Requests served from a warm session.
    pub hits: u64,
    /// Requests that had to build a session.
    pub misses: u64,
    /// Warm sessions dropped to respect the capacity bound.
    pub evictions: u64,
}

struct Entry {
    key: String,
    session: Arc<MtdSession>,
    last_used: u64,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
    stats: LruStats,
}

/// A bounded, thread-safe LRU of warm sessions.
pub struct SessionLru {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SessionLru {
    /// Creates an LRU holding at most `capacity` sessions (minimum 1).
    pub fn new(capacity: usize) -> SessionLru {
        SessionLru {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
                stats: LruStats::default(),
            }),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sessions currently resident.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current statistics.
    pub fn stats(&self) -> LruStats {
        self.lock().stats
    }

    /// Returns the warm session for `spec`, building it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates the build failure as a wire-ready [`WireError`];
    /// nothing is cached on error.
    pub fn get_or_build(&self, spec: &SessionSpec) -> Result<Arc<MtdSession>, WireError> {
        let key = spec.key();
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) {
                entry.last_used = tick;
                let session = Arc::clone(&entry.session);
                inner.stats.hits += 1;
                return Ok(session);
            }
            inner.stats.misses += 1;
        }
        // Build outside the lock — see module docs.
        let built = Arc::new(spec.build()?);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Another thread may have built and inserted the same key while
        // we were building; keep the resident one so both callers share
        // warm state from here on.
        if let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) {
            entry.last_used = tick;
            return Ok(Arc::clone(&entry.session));
        }
        inner.entries.push(Entry {
            key,
            session: Arc::clone(&built),
            last_used: tick,
        });
        while inner.entries.len() > self.capacity {
            let Some(oldest) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                // Unreachable while the loop bound holds (capacity is
                // at least 1); stop evicting rather than panic.
                break;
            };
            inner.entries.swap_remove(oldest);
            inner.stats.evictions += 1;
        }
        Ok(built)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this lock leaves only a momentarily
        // stale LRU ordering — always recoverable.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_scenario::json::Json;

    fn spec(seed: u64) -> SessionSpec {
        SessionSpec::from_json(
            &Json::parse(&format!(
                r#"{{"case":"case4","config":{{"seed":{seed},"n_attacks":5}}}}"#
            ))
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn hit_returns_the_same_session() {
        let lru = SessionLru::new(4);
        let a = lru.get_or_build(&spec(1)).unwrap();
        let b = lru.get_or_build(&spec(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = lru.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let lru = SessionLru::new(2);
        let s1 = lru.get_or_build(&spec(1)).unwrap();
        let _s2 = lru.get_or_build(&spec(2)).unwrap();
        // Touch seed 1 so seed 2 is the LRU victim.
        let _ = lru.get_or_build(&spec(1)).unwrap();
        let _s3 = lru.get_or_build(&spec(3)).unwrap();
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.stats().evictions, 1);
        // Seed 1 survived (same Arc); seed 2 must rebuild.
        let s1_again = lru.get_or_build(&spec(1)).unwrap();
        assert!(Arc::ptr_eq(&s1, &s1_again));
        let misses_before = lru.stats().misses;
        let _ = lru.get_or_build(&spec(2)).unwrap();
        assert_eq!(lru.stats().misses, misses_before + 1);
    }

    #[test]
    fn concurrent_same_key_requests_converge_on_one_session() {
        let lru = Arc::new(SessionLru::new(4));
        let sessions: Vec<Arc<MtdSession>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let lru = Arc::clone(&lru);
                    scope.spawn(move || lru.get_or_build(&spec(1)).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(lru.len(), 1);
        // After the race settles, a fresh lookup returns the resident
        // session, which is one of the four (whichever inserted first).
        let resident = lru.get_or_build(&spec(1)).unwrap();
        assert!(sessions.iter().any(|s| Arc::ptr_eq(s, &resident)));
    }

    #[test]
    fn build_failures_are_not_cached() {
        let lru = SessionLru::new(2);
        let bad = SessionSpec::from_json(
            &Json::parse(r#"{"case":"case4","config":{"alpha":-1}}"#).unwrap(),
        )
        .unwrap();
        assert!(lru.get_or_build(&bad).is_err());
        assert_eq!(lru.len(), 0);
    }
}
