//! The line-delimited JSON-RPC wire protocol.
//!
//! One frame per line, request and response alike. A request names a
//! method, optionally a session spec (which network / config / x_pre
//! the pipeline runs against), and method parameters:
//!
//! ```json
//! {"id":1,"method":"select","session":{"case":"case14"},"params":{"gamma_threshold":0.05}}
//! ```
//!
//! The response echoes the request `id` and carries either `result` or
//! a JSON-RPC-style `error` object:
//!
//! ```json
//! {"id":1,"result":{"gamma":0.052,...}}
//! {"id":1,"error":{"code":-32602,"message":"select: missing gamma_threshold"}}
//! ```
//!
//! Every session-bearing method maps 1:1 onto a
//! [`batch::Request`](gridmtd_core::session::batch::Request) variant,
//! so the server can coalesce compatible queued frames into a single
//! [`run_batch`](gridmtd_core::MtdSession::run_batch) call and the
//! responses are — by construction — bit-identical to direct
//! [`MtdSession`](gridmtd_core::MtdSession) calls (both sides render
//! through the same deterministic [`Json`] writer).

use gridmtd_core::session::batch::{Request, Response};
use gridmtd_core::{
    BaselineOutcome, HourOutcome, LearningOptions, LearningOutcome, MtdConfig, MtdError,
    MtdEvaluation, MtdSelection, SelectionMethod, TimelineOptions,
};
use gridmtd_scenario::json::Json;

use crate::session_key::SessionSpec;

/// JSON parse failure (`-32700`).
pub const PARSE_ERROR: i64 = -32700;
/// Structurally invalid request frame (`-32600`).
pub const INVALID_REQUEST: i64 = -32600;
/// Unknown method (`-32601`).
pub const METHOD_NOT_FOUND: i64 = -32601;
/// Bad or missing method / session parameters (`-32602`).
pub const INVALID_PARAMS: i64 = -32602;
/// The MTD pipeline itself failed (`-32000`).
pub const PIPELINE_ERROR: i64 = -32000;
/// Frame exceeded the server's size cap (`-32001`).
pub const FRAME_TOO_LARGE: i64 = -32001;
/// The worker queue is at capacity and the request was shed instead of
/// queued (`-32002`). Clients should retry with backoff
/// ([`crate::Client::call_raw_with_retry`] does).
pub const OVERLOADED: i64 = -32002;
/// The request's deadline elapsed before a worker picked it up
/// (`-32003`). The work was never started.
pub const DEADLINE_EXCEEDED: i64 = -32003;

/// A protocol-level failure: the JSON-RPC error code plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// One of the `-327xx` / `-320xx` codes above.
    pub code: i64,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: i64, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

/// What a request frame asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Call {
    /// Liveness check; no session required.
    Ping,
    /// Server statistics (LRU hits/misses, coalescing); no session.
    Stats,
    /// A typed pipeline request against the frame's session.
    Run(Request),
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The request `id`, echoed verbatim in the response (`Null` when
    /// absent).
    pub id: Json,
    /// Session spec for [`Call::Run`] requests.
    pub session: Option<SessionSpec>,
    /// Per-request deadline in milliseconds from arrival (top-level
    /// `deadline_ms` field). The server answers
    /// [`DEADLINE_EXCEEDED`] instead of running work it cannot start
    /// in time; `0` means "already expired" and is the deterministic
    /// way to probe the deadline path. Tightened by the server-side
    /// default deadline when both are set.
    pub deadline_ms: Option<u64>,
    /// The decoded method + parameters.
    pub call: Call,
}

/// Parses one request line into a [`Frame`].
///
/// # Errors
///
/// [`WireError`] with the appropriate JSON-RPC code; the caller turns
/// it into an error response on the same connection (malformed input
/// never drops the connection).
pub fn parse_frame(line: &str) -> Result<Frame, WireError> {
    let doc =
        Json::parse(line).map_err(|e| WireError::new(PARSE_ERROR, format!("parse error: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(WireError::new(INVALID_REQUEST, "frame must be an object"));
    }
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let method = doc
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new(INVALID_REQUEST, "missing method"))?;
    let params = doc.get("params").cloned().unwrap_or(Json::Obj(vec![]));

    let call = match method {
        "ping" => Call::Ping,
        "stats" => Call::Stats,
        "baseline" => Call::Run(Request::Baseline),
        "select" => Call::Run(Request::Select {
            gamma_threshold: require_f64(&params, "gamma_threshold", "select")?,
        }),
        "evaluate" => Call::Run(Request::Evaluate {
            x_post: require_floats(&params, "x_post", "evaluate")?,
        }),
        "detection_probabilities" => Call::Run(Request::DetectionProbabilities {
            x_post: require_floats(&params, "x_post", "detection_probabilities")?,
        }),
        "tradeoff" => Call::Run(Request::Tradeoff {
            gamma_thresholds: require_floats(&params, "gamma_thresholds", "tradeoff")?,
            deltas: require_floats(&params, "deltas", "tradeoff")?,
            seed: optional_u64(&params, "seed", "tradeoff")?,
            attack_ratio: optional_f64(&params, "attack_ratio", "tradeoff")?,
        }),
        "keyspace" => Call::Run(Request::Keyspace {
            fraction: require_f64(&params, "fraction", "keyspace")?,
            n_trials: require_usize(&params, "n_trials", "keyspace")?,
            deltas: require_floats(&params, "deltas", "keyspace")?,
            seed: optional_u64(&params, "seed", "keyspace")?,
        }),
        "timeline" => {
            let defaults = TimelineOptions::default();
            Call::Run(Request::Timeline {
                hours: require_floats(&params, "hours", "timeline")?,
                options: TimelineOptions {
                    target_delta: optional_f64(&params, "target_delta", "timeline")?
                        .unwrap_or(defaults.target_delta),
                    target_eta: optional_f64(&params, "target_eta", "timeline")?
                        .unwrap_or(defaults.target_eta),
                    gamma_grid: optional_floats(&params, "gamma_grid", "timeline")?
                        .unwrap_or(defaults.gamma_grid),
                },
            })
        }
        "learning" => {
            let defaults = LearningOptions::default();
            Call::Run(Request::Learning {
                gamma_threshold: optional_f64(&params, "gamma_threshold", "learning")?,
                options: LearningOptions {
                    sample_counts: optional_usizes(&params, "sample_counts", "learning")?
                        .unwrap_or(defaults.sample_counts),
                    n_probe_attacks: optional_usize(&params, "n_probe_attacks", "learning")?
                        .unwrap_or(defaults.n_probe_attacks),
                    subspace_dim: optional_usize(&params, "subspace_dim", "learning")?,
                    load_jitter: optional_f64(&params, "load_jitter", "learning")?
                        .unwrap_or(defaults.load_jitter),
                    target_delta: optional_f64(&params, "target_delta", "learning")?
                        .unwrap_or(defaults.target_delta),
                },
            })
        }
        other => {
            return Err(WireError::new(
                METHOD_NOT_FOUND,
                format!("unknown method '{other}'"),
            ))
        }
    };

    let session = match doc.get("session") {
        Some(spec) => Some(SessionSpec::from_json(spec)?),
        None => None,
    };
    if session.is_none() && matches!(call, Call::Run(_)) {
        return Err(WireError::new(
            INVALID_PARAMS,
            format!("method '{method}' requires a session"),
        ));
    }
    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            WireError::new(
                INVALID_REQUEST,
                "deadline_ms must be a non-negative integer",
            )
        })?),
    };
    Ok(Frame {
        id,
        session,
        deadline_ms,
        call,
    })
}

/// Renders a success response frame (one line, no trailing newline).
pub fn ok_frame(id: &Json, result: Json) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        ("result".to_string(), result),
    ])
    .compact()
}

/// Renders an error response frame (one line, no trailing newline).
pub fn error_frame(id: &Json, error: &WireError) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        (
            "error".to_string(),
            Json::obj(vec![
                ("code", Json::Int(error.code)),
                ("message", Json::Str(error.message.clone())),
            ]),
        ),
    ])
    .compact()
}

/// Maps a pipeline failure onto the wire.
pub fn pipeline_error(err: &MtdError) -> WireError {
    WireError::new(PIPELINE_ERROR, err.to_string())
}

/// Encodes one typed [`Response`] as its `result` document.
pub fn encode_response(response: &Response) -> Json {
    match response {
        Response::Baseline(b) => encode_baseline(b),
        Response::Select(s) => encode_selection(s),
        Response::Evaluate(e) => encode_evaluation(e),
        Response::DetectionProbabilities(p) => Json::floats(p),
        Response::Tradeoff(curve) => Json::obj(vec![
            ("gamma_ceiling", Json::Num(curve.gamma_ceiling)),
            ("baseline_cost", Json::Num(curve.baseline_cost)),
            (
                "points",
                Json::Arr(
                    curve
                        .points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("gamma_threshold", Json::Num(p.gamma_threshold)),
                                ("gamma_achieved", Json::Num(p.gamma_achieved)),
                                ("cost_increase_percent", Json::Num(p.cost_increase_percent)),
                                ("effectiveness", encode_pairs(&p.effectiveness)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Response::Keyspace(trials) => Json::Arr(
            trials
                .iter()
                .map(|t| {
                    Json::obj(vec![
                        ("trial", Json::Int(int(t.trial))),
                        ("gamma", Json::Num(t.gamma)),
                        ("effectiveness", encode_pairs(&t.effectiveness)),
                    ])
                })
                .collect(),
        ),
        Response::Timeline(outcomes) => {
            Json::Arr(outcomes.iter().map(encode_hour_outcome).collect())
        }
        Response::Learning(outcome) => encode_learning(outcome),
    }
}

fn encode_baseline(b: &BaselineOutcome) -> Json {
    Json::obj(vec![("x", Json::floats(&b.x)), ("opf", encode_opf(&b.opf))])
}

fn encode_selection(s: &MtdSelection) -> Json {
    Json::obj(vec![
        ("x_post", Json::floats(&s.x_post)),
        ("gamma", Json::Num(s.gamma)),
        ("gamma_threshold", Json::Num(s.gamma_threshold)),
        ("opf", encode_opf(&s.opf)),
    ])
}

fn encode_evaluation(e: &MtdEvaluation) -> Json {
    Json::obj(vec![
        ("gamma", Json::Num(e.gamma)),
        ("smallest_angle", Json::Num(e.smallest_angle)),
        ("detection_probs", Json::floats(&e.detection_probs)),
    ])
}

fn encode_opf(opf: &gridmtd_opf::OpfSolution) -> Json {
    Json::obj(vec![
        ("cost", Json::Num(opf.cost)),
        ("dispatch", Json::floats(&opf.dispatch)),
        ("theta", Json::floats(&opf.theta)),
        ("flows", Json::floats(&opf.flows)),
    ])
}

fn encode_hour_outcome(o: &HourOutcome) -> Json {
    Json::obj(vec![
        ("hour", Json::Int(int(o.hour))),
        ("total_load_mw", Json::Num(o.total_load_mw)),
        ("cost_no_mtd", Json::Num(o.cost_no_mtd)),
        ("cost_with_mtd", Json::Num(o.cost_with_mtd)),
        ("cost_increase_percent", Json::Num(o.cost_increase_percent)),
        ("gamma_drift", Json::Num(o.gamma_drift)),
        ("gamma_defense", Json::Num(o.gamma_defense)),
        ("gamma_current", Json::Num(o.gamma_current)),
        ("gamma_threshold", Json::Num(o.gamma_threshold)),
        ("effectiveness", Json::Num(o.effectiveness)),
        ("target_met", Json::Bool(o.target_met)),
    ])
}

fn encode_learning(outcome: &LearningOutcome) -> Json {
    Json::obj(vec![
        (
            "gamma_threshold",
            outcome.gamma_threshold.map_or(Json::Null, Json::Num),
        ),
        ("gamma_achieved", Json::Num(outcome.gamma_achieved)),
        (
            "cost_increase_percent",
            Json::Num(outcome.cost_increase_percent),
        ),
        (
            "points",
            Json::Arr(
                outcome
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("n_samples", Json::Int(int(p.n_samples))),
                            ("mean_detection", Json::Num(p.mean_detection)),
                            ("stealthy_fraction", Json::Num(p.stealthy_fraction)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn encode_pairs(pairs: &[(f64, f64)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|&(delta, eta)| Json::Arr(vec![Json::Num(delta), Json::Num(eta)]))
            .collect(),
    )
}

#[allow(clippy::cast_possible_wrap)]
fn int(v: usize) -> i64 {
    v as i64
}

// ---- parameter extraction helpers -----------------------------------

fn missing(method: &str, key: &str) -> WireError {
    WireError::new(INVALID_PARAMS, format!("{method}: missing {key}"))
}

fn bad_type(method: &str, key: &str, expected: &str) -> WireError {
    WireError::new(
        INVALID_PARAMS,
        format!("{method}: {key} must be {expected}"),
    )
}

fn require_f64(params: &Json, key: &str, method: &str) -> Result<f64, WireError> {
    params
        .get(key)
        .ok_or_else(|| missing(method, key))?
        .as_f64()
        .ok_or_else(|| bad_type(method, key, "a number"))
}

fn optional_f64(params: &Json, key: &str, method: &str) -> Result<Option<f64>, WireError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad_type(method, key, "a number")),
    }
}

fn optional_u64(params: &Json, key: &str, method: &str) -> Result<Option<u64>, WireError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad_type(method, key, "a non-negative integer")),
    }
}

#[allow(clippy::cast_possible_truncation)]
fn optional_usize(params: &Json, key: &str, method: &str) -> Result<Option<usize>, WireError> {
    Ok(optional_u64(params, key, method)?.map(|v| v as usize))
}

fn require_usize(params: &Json, key: &str, method: &str) -> Result<usize, WireError> {
    optional_usize(params, key, method)?.ok_or_else(|| missing(method, key))
}

fn require_floats(params: &Json, key: &str, method: &str) -> Result<Vec<f64>, WireError> {
    optional_floats(params, key, method)?.ok_or_else(|| missing(method, key))
}

fn optional_floats(params: &Json, key: &str, method: &str) -> Result<Option<Vec<f64>>, WireError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| bad_type(method, key, "an array of numbers"))?;
            items
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| bad_type(method, key, "an array of numbers"))
                })
                .collect::<Result<Vec<f64>, WireError>>()
                .map(Some)
        }
    }
}

fn optional_usizes(
    params: &Json,
    key: &str,
    method: &str,
) -> Result<Option<Vec<usize>>, WireError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let items = v
                .as_arr()
                .ok_or_else(|| bad_type(method, key, "an array of integers"))?;
            items
                .iter()
                .map(|x| {
                    #[allow(clippy::cast_possible_truncation)]
                    x.as_u64()
                        .map(|v| v as usize)
                        .ok_or_else(|| bad_type(method, key, "an array of integers"))
                })
                .collect::<Result<Vec<usize>, WireError>>()
                .map(Some)
        }
    }
}

/// Applies the `config` object of a session spec as overrides on a
/// default [`MtdConfig`]. Unknown keys are rejected so typos fail loud.
pub fn config_from_overrides(overrides: &Json) -> Result<MtdConfig, WireError> {
    let fields = match overrides {
        Json::Obj(fields) => fields,
        _ => {
            return Err(WireError::new(
                INVALID_PARAMS,
                "session.config must be an object",
            ))
        }
    };
    let mut cfg = MtdConfig::default();
    for (key, value) in fields {
        let bad = || bad_type("session.config", key, "a number");
        match key.as_str() {
            "alpha" => cfg.alpha = value.as_f64().ok_or_else(bad)?,
            "noise_sigma_mw" => cfg.noise_sigma_mw = value.as_f64().ok_or_else(bad)?,
            "attack_ratio" => cfg.attack_ratio = value.as_f64().ok_or_else(bad)?,
            "eta_max" => cfg.eta_max = value.as_f64().ok_or_else(bad)?,
            "seed" => cfg.seed = value.as_u64().ok_or_else(bad)?,
            #[allow(clippy::cast_possible_truncation)]
            "n_attacks" => cfg.n_attacks = value.as_u64().ok_or_else(bad)? as usize,
            #[allow(clippy::cast_possible_truncation)]
            "n_starts" => cfg.n_starts = value.as_u64().ok_or_else(bad)? as usize,
            #[allow(clippy::cast_possible_truncation)]
            "max_evals_per_start" => {
                cfg.max_evals_per_start = value.as_u64().ok_or_else(bad)? as usize;
            }
            "selection_method" => {
                cfg.selection_method = value
                    .as_str()
                    .and_then(SelectionMethod::parse)
                    .ok_or_else(bad)?;
            }
            #[allow(clippy::cast_possible_truncation)]
            "pwl_segments" => cfg.opf.pwl_segments = value.as_u64().ok_or_else(bad)? as usize,
            other => {
                return Err(WireError::new(
                    INVALID_PARAMS,
                    format!("session.config: unknown field '{other}'"),
                ))
            }
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_select_frame() {
        let frame = parse_frame(
            r#"{"id":7,"method":"select","session":{"case":"case4"},"params":{"gamma_threshold":0.05}}"#,
        )
        .unwrap();
        assert_eq!(frame.id, Json::Int(7));
        assert_eq!(
            frame.call,
            Call::Run(Request::Select {
                gamma_threshold: 0.05
            })
        );
        assert!(frame.session.is_some());
    }

    #[test]
    fn ping_needs_no_session() {
        let frame = parse_frame(r#"{"id":1,"method":"ping"}"#).unwrap();
        assert_eq!(frame.call, Call::Ping);
        assert!(frame.session.is_none());
    }

    #[test]
    fn run_methods_require_a_session() {
        let err = parse_frame(r#"{"id":1,"method":"baseline"}"#).unwrap_err();
        assert_eq!(err.code, INVALID_PARAMS);
    }

    #[test]
    fn error_codes_map_to_failure_classes() {
        assert_eq!(parse_frame("not json").unwrap_err().code, PARSE_ERROR);
        assert_eq!(parse_frame("[1,2]").unwrap_err().code, INVALID_REQUEST);
        assert_eq!(
            parse_frame(r#"{"method":"frobnicate"}"#).unwrap_err().code,
            METHOD_NOT_FOUND
        );
        assert_eq!(
            parse_frame(r#"{"method":"select","session":{"case":"case4"},"params":{}}"#)
                .unwrap_err()
                .code,
            INVALID_PARAMS
        );
    }

    #[test]
    fn config_overrides_reject_unknown_fields() {
        let ok = Json::parse(r#"{"seed":9,"n_attacks":40}"#).unwrap();
        let cfg = config_from_overrides(&ok).unwrap();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.n_attacks, 40);
        let bad = Json::parse(r#"{"n_atacks":40}"#).unwrap();
        assert!(config_from_overrides(&bad).is_err());
    }

    #[test]
    fn response_frames_are_single_lines() {
        let ok = ok_frame(&Json::Int(3), Json::obj(vec![("x", Json::floats(&[1.0]))]));
        assert_eq!(ok, r#"{"id":3,"result":{"x":[1]}}"#);
        let err = error_frame(&Json::Null, &WireError::new(PARSE_ERROR, "boom"));
        assert_eq!(
            err,
            r#"{"id":null,"error":{"code":-32700,"message":"boom"}}"#
        );
        assert!(!ok.contains('\n') && !err.contains('\n'));
    }

    #[test]
    fn timeline_and_learning_defaults_fill_in() {
        let frame = parse_frame(
            r#"{"method":"timeline","session":{"case":"case4"},"params":{"hours":[100,110]}}"#,
        )
        .unwrap();
        match frame.call {
            Call::Run(Request::Timeline { hours, options }) => {
                assert_eq!(hours, vec![100.0, 110.0]);
                assert_eq!(options, TimelineOptions::default());
            }
            other => panic!("expected Timeline, got {other:?}"),
        }
        let frame =
            parse_frame(r#"{"method":"learning","session":{"case":"case4"},"params":{}}"#).unwrap();
        match frame.call {
            Call::Run(Request::Learning {
                gamma_threshold,
                options,
            }) => {
                assert_eq!(gamma_threshold, None);
                assert_eq!(options, LearningOptions::default());
            }
            other => panic!("expected Learning, got {other:?}"),
        }
    }
}
