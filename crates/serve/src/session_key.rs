//! Session specs: which warm [`MtdSession`] a request runs against.
//!
//! A request's `session` object names a case, config overrides, an
//! optional explicit `x_pre` vector (or the spread-x_pre policy), and
//! an optional per-session thread budget. Two requests whose resolved
//! specs are identical share one warm session — and therefore one set
//! of symbolic factorizations, QR bases, and attack ensembles — so the
//! spec also defines the LRU cache key: the compact JSON rendering of
//! the *fully resolved* spec (every config field spelled out in fixed
//! order), which makes `{"seed":1}` and an exhaustive config listing
//! the same defaults hash to the same entry.

use gridmtd_core::{MtdConfig, MtdSession};
use gridmtd_powergrid::cases;
use gridmtd_scenario::json::Json;

use crate::wire::{config_from_overrides, WireError, INVALID_PARAMS};

/// A resolved session spec: everything needed to build (or look up)
/// a warm [`MtdSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Case name (`case4` … `case300`, or `synthetic:<buses>:<seed>`).
    pub case: String,
    /// Fully resolved config (defaults + overrides).
    pub config: MtdConfig,
    /// Explicit pre-perturbation reactances (`None` = the case's own).
    pub x_pre: Option<Vec<f64>>,
    /// Apply the paper's spread pre-perturbation policy.
    pub spread_x_pre: bool,
    /// Per-session worker budget (scoped, never process-global).
    pub threads: Option<usize>,
}

impl SessionSpec {
    /// Decodes the `session` object of a request frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] with [`INVALID_PARAMS`] on unknown cases, unknown
    /// config fields, or malformed values.
    pub fn from_json(spec: &Json) -> Result<SessionSpec, WireError> {
        if !matches!(spec, Json::Obj(_)) {
            return Err(WireError::new(INVALID_PARAMS, "session must be an object"));
        }
        let case = spec
            .get("case")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new(INVALID_PARAMS, "session: missing case"))?
            .to_string();
        // Validate the case name at parse time so the error carries the
        // right code instead of surfacing later as a build failure.
        build_case(&case)?;
        let config = match spec.get("config") {
            Some(overrides) => config_from_overrides(overrides)?,
            None => MtdConfig::default(),
        };
        let x_pre = match spec.get("x_pre") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let items = v.as_arr().ok_or_else(|| {
                    WireError::new(INVALID_PARAMS, "session: x_pre must be an array of numbers")
                })?;
                Some(
                    items
                        .iter()
                        .map(|x| {
                            x.as_f64().ok_or_else(|| {
                                WireError::new(
                                    INVALID_PARAMS,
                                    "session: x_pre must be an array of numbers",
                                )
                            })
                        })
                        .collect::<Result<Vec<f64>, WireError>>()?,
                )
            }
        };
        let spread_x_pre = match spec.get("spread_x_pre") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => {
                return Err(WireError::new(
                    INVALID_PARAMS,
                    "session: spread_x_pre must be a boolean",
                ))
            }
        };
        if spread_x_pre && x_pre.is_some() {
            return Err(WireError::new(
                INVALID_PARAMS,
                "session: x_pre and spread_x_pre are mutually exclusive",
            ));
        }
        let threads = match spec.get("threads") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| {
                        WireError::new(
                            INVALID_PARAMS,
                            "session: threads must be a positive integer",
                        )
                    })?,
            ),
        };
        Ok(SessionSpec {
            case,
            config,
            x_pre,
            spread_x_pre,
            threads,
        })
    }

    /// The canonical cache key: compact JSON of the fully resolved
    /// spec. Specs that resolve identically — regardless of how the
    /// request spelled them — produce byte-identical keys.
    pub fn key(&self) -> String {
        let cfg = &self.config;
        Json::obj(vec![
            ("case", Json::Str(self.case.clone())),
            (
                "config",
                Json::obj(vec![
                    ("alpha", Json::Num(cfg.alpha)),
                    ("noise_sigma_mw", Json::Num(cfg.noise_sigma_mw)),
                    ("attack_ratio", Json::Num(cfg.attack_ratio)),
                    ("n_attacks", Json::Int(int(cfg.n_attacks))),
                    ("eta_max", Json::Num(cfg.eta_max)),
                    ("seed", Json::Str(cfg.seed.to_string())),
                    ("n_starts", Json::Int(int(cfg.n_starts))),
                    (
                        "max_evals_per_start",
                        Json::Int(int(cfg.max_evals_per_start)),
                    ),
                    (
                        "selection_method",
                        Json::Str(cfg.selection_method.as_str().to_string()),
                    ),
                    ("pwl_segments", Json::Int(int(cfg.opf.pwl_segments))),
                ]),
            ),
            (
                "x_pre",
                self.x_pre.as_deref().map_or(Json::Null, Json::floats),
            ),
            ("spread_x_pre", Json::Bool(self.spread_x_pre)),
            (
                "threads",
                self.threads.map_or(Json::Null, |n| Json::Int(int(n))),
            ),
        ])
        .compact()
    }

    /// Builds the warm session this spec describes.
    ///
    /// # Errors
    ///
    /// [`WireError`]: [`INVALID_PARAMS`] if the case name no longer
    /// resolves (specs normally re-validate what `from_json` already
    /// checked, but `SessionSpec` has public fields), pipeline errors
    /// for config validation / build failures.
    pub fn build(&self) -> Result<MtdSession, WireError> {
        let net = build_case(&self.case)?;
        let mut builder = MtdSession::builder(net).config(self.config.clone());
        if let Some(x_pre) = &self.x_pre {
            builder = builder.x_pre(x_pre.clone());
        }
        if self.spread_x_pre {
            builder = builder.spread_x_pre();
        }
        if let Some(threads) = self.threads {
            builder = builder.threads(threads);
        }
        builder
            .build()
            .map_err(|err| crate::wire::pipeline_error(&err))
    }
}

#[allow(clippy::cast_possible_wrap)]
fn int(v: usize) -> i64 {
    v as i64
}

/// Maps a wire case name onto a network constructor.
fn build_case(name: &str) -> Result<gridmtd_powergrid::Network, WireError> {
    if let Some(rest) = name.strip_prefix("synthetic:") {
        let mut parts = rest.splitn(2, ':');
        let buses = parts
            .next()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&b| b >= 2);
        let seed = parts.next().and_then(|s| s.parse::<u64>().ok());
        return match (buses, seed) {
            (Some(buses), Some(seed)) => {
                let config = cases::SyntheticConfig {
                    n_buses: buses,
                    ..cases::SyntheticConfig::default()
                };
                Ok(cases::synthetic(&config, seed))
            }
            _ => Err(WireError::new(
                INVALID_PARAMS,
                format!(
                    "session: malformed synthetic case '{name}' (want synthetic:<buses>:<seed>)"
                ),
            )),
        };
    }
    match name {
        "case4" => Ok(cases::case4()),
        "case14" => Ok(cases::case14()),
        "case30" => Ok(cases::case30()),
        "case57" => Ok(cases::case57()),
        "case118" => Ok(cases::case118()),
        "case300" => Ok(cases::case300()),
        other => Err(WireError::new(
            INVALID_PARAMS,
            format!("session: unknown case '{other}'"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_specs_share_a_key() {
        let sparse = SessionSpec::from_json(
            &Json::parse(r#"{"case":"case4","config":{"seed":1}}"#).unwrap(),
        )
        .unwrap();
        let verbose = SessionSpec::from_json(
            &Json::parse(r#"{"case":"case4","config":{"seed":1},"x_pre":null,"threads":null}"#)
                .unwrap(),
        )
        .unwrap();
        assert_eq!(sparse.key(), verbose.key());
        let other = SessionSpec::from_json(
            &Json::parse(r#"{"case":"case4","config":{"seed":2}}"#).unwrap(),
        )
        .unwrap();
        assert_ne!(sparse.key(), other.key());
    }

    #[test]
    fn unknown_cases_fail_at_parse_time() {
        let err =
            SessionSpec::from_json(&Json::parse(r#"{"case":"case9000"}"#).unwrap()).unwrap_err();
        assert_eq!(err.code, INVALID_PARAMS);
    }

    #[test]
    fn synthetic_case_names_parse() {
        let spec =
            SessionSpec::from_json(&Json::parse(r#"{"case":"synthetic:12:7"}"#).unwrap()).unwrap();
        assert_eq!(spec.case, "synthetic:12:7");
        assert!(spec.build().is_ok());
        assert!(
            SessionSpec::from_json(&Json::parse(r#"{"case":"synthetic:12"}"#).unwrap()).is_err()
        );
    }

    #[test]
    fn spec_builds_a_session_with_its_knobs() {
        let spec = SessionSpec::from_json(
            &Json::parse(r#"{"case":"case4","config":{"n_attacks":10},"threads":2}"#).unwrap(),
        )
        .unwrap();
        let session = spec.build().unwrap();
        assert_eq!(session.config().n_attacks, 10);
        assert_eq!(session.threads(), Some(2));
    }
}
