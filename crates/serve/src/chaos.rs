//! The `chaos` replay driver: run a deterministic request workload
//! against an in-process server while each registered fault point
//! fires on a seeded schedule, and report what every fault class did
//! to the service.
//!
//! For each name in [`gridmtd_faults::registry::ALL`] the driver
//! starts a fresh server, arms a [`gridmtd_faults::FaultPlan`] with a
//! probabilistic trigger derived from the run seed, and replays
//! `requests` `select` calls through [`Client::call_raw_with_retry`].
//! Every request must end in one of three audited outcomes:
//!
//! - **ok** — a `result` frame (the pipeline absorbed the fault via a
//!   documented fallback chain);
//! - **typed error** — an `error` frame with a JSON-RPC code (the
//!   fault was surfaced as a contract, not a panic);
//! - **disconnect / stall** — the connection died or went quiet inside
//!   the driver's bounded read timeout, and the next attempt
//!   reconnected cleanly.
//!
//! A hang past the timeout, a server that stops accepting, or a
//! request that vanishes without an outcome fails the run. With
//! `GRIDMTD_BENCH_JSON` set, one row per fault class is appended
//! (`{"bench":"chaos/<point>","mean_ns":…,"iters":…}`).
//!
//! Requires a build with the `fault-injection` feature; on a normal
//! build [`run`] refuses loudly rather than reporting a vacuous
//! all-green sweep whose points can never fire.

use std::io::Write as _;
use std::time::{Duration, Instant};

use gridmtd_faults::{FaultPlan, Trigger};
use gridmtd_scenario::json::Json;

use crate::client::{Client, RetryOptions};
use crate::server::{ServeOptions, Server};

/// Chaos sweep configuration.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Case the session spec names.
    pub case: String,
    /// Requests replayed per fault class.
    pub requests: usize,
    /// Seed for the fault schedule and the retry jitter.
    pub seed: u64,
    /// Probability that an armed point fires per consultation.
    pub fire_prob: f64,
    /// Server configuration for each per-point server.
    pub spawn: ServeOptions,
    /// Client-side read bound — the "never hang" budget per request.
    pub read_timeout: Duration,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            case: "case4".to_string(),
            requests: 16,
            seed: 0,
            fire_prob: 0.25,
            spawn: ServeOptions::default(),
            // A legitimate case4 response is milliseconds; 5 s of
            // silence is a stall, and keeping the bound tight keeps a
            // stall-heavy sweep inside CI's hard timeout.
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// What one fault class did to the workload.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The registered injection-point name.
    pub point: String,
    /// Requests answered with a `result` frame.
    pub ok: usize,
    /// Requests answered with a typed `error` frame.
    pub typed_errors: usize,
    /// Requests whose connection died (reconnected and continued).
    pub disconnects: usize,
    /// Requests that hit the bounded read timeout (reconnected).
    pub stalls: usize,
    /// Times the armed point was consulted during the replay.
    pub consultations: u64,
    /// Times the armed point fired.
    pub fired: u64,
    /// Mean wall-clock per request outcome.
    pub mean: Duration,
}

/// Results of a chaos sweep across every registered point.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// One entry per [`gridmtd_faults::registry::ALL`] name, in order.
    pub outcomes: Vec<PointOutcome>,
}

impl ChaosReport {
    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::from("chaos sweep: every request ended in an audited outcome\n");
        for o in &self.outcomes {
            out.push_str(&format!(
                "  {:<36} ok {:>3}  typed-err {:>3}  disconnect {:>3}  stall {:>3}  (fired {}/{} consults)\n",
                o.point, o.ok, o.typed_errors, o.disconnects, o.stalls, o.fired, o.consultations,
            ));
        }
        out
    }

    /// Appends one row per fault class to `GRIDMTD_BENCH_JSON` when
    /// set, in the bench contract shape.
    pub fn append_bench_rows(&self) {
        let Ok(path) = std::env::var("GRIDMTD_BENCH_JSON") else {
            return;
        };
        let mut lines = String::new();
        for o in &self.outcomes {
            #[allow(clippy::cast_precision_loss)]
            let mean_ns = o.mean.as_nanos() as f64;
            let iters = o.ok + o.typed_errors + o.disconnects + o.stalls;
            lines.push_str(&format!(
                "{{\"bench\":\"chaos/{}\",\"mean_ns\":{mean_ns:.1},\"iters\":{iters}}}\n",
                o.point,
            ));
        }
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(lines.as_bytes()));
        if let Err(e) = write {
            eprintln!("warning: could not append to {path}: {e}");
        }
    }
}

/// Runs the sweep: one server + one armed fault class at a time, the
/// same seeded workload replayed against each.
///
/// # Errors
///
/// [`std::io::Error`] when the build lacks the `fault-injection`
/// feature, a server fails to start, or a request produces no audited
/// outcome within the retry budget (including the bounded-timeout
/// "never hang" violation).
pub fn run(opts: &ChaosOptions) -> std::io::Result<ChaosReport> {
    if !gridmtd_faults::ENABLED {
        return Err(std::io::Error::other(
            "this build has no fault-injection support; rebuild with \
             `--features fault-injection` (points can never fire here, \
             so a sweep would be vacuously green)",
        ));
    }
    let mut outcomes = Vec::with_capacity(gridmtd_faults::registry::ALL.len());
    for (index, point) in gridmtd_faults::registry::ALL.iter().enumerate() {
        outcomes.push(run_point(opts, point, index as u64)?);
    }
    Ok(ChaosReport { outcomes })
}

fn run_point(opts: &ChaosOptions, point: &str, index: u64) -> std::io::Result<PointOutcome> {
    let mut server = Server::start(&opts.spawn)?;
    let addr = server.local_addr().to_string();
    let session = Json::obj(vec![
        ("case", Json::Str(opts.case.clone())),
        (
            "config",
            Json::obj(vec![
                ("seed", Json::Int(7)),
                ("n_attacks", Json::Int(8)),
                ("n_starts", Json::Int(1)),
                ("max_evals_per_start", Json::Int(20)),
            ]),
        ),
    ]);
    // One derived stream per fault class: the retry jitter and the
    // fault schedule replay bit-identically from (--seed, point index).
    let point_seed = gridmtd_core::seedstream::mix(opts.seed, index);
    let retry = RetryOptions {
        attempts: 3,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        seed: gridmtd_core::seedstream::mix(point_seed, 1),
    };

    let active = FaultPlan::new(point_seed)
        .fail(point, Trigger::Prob(opts.fire_prob))
        .activate();

    let (mut ok, mut typed_errors, mut disconnects, mut stalls) = (0, 0, 0, 0);
    let mut latencies = Vec::with_capacity(opts.requests);
    let mut conn: Option<Client> = None;
    for i in 0..opts.requests {
        // Vary the threshold so successive requests exercise fresh
        // selection work against the warm session.
        let threshold = 0.02 + 0.01 * f64::from(u32::try_from(i % 5).unwrap_or(0));
        let params = Json::obj(vec![("gamma_threshold", Json::Num(threshold))]);
        let started = Instant::now();
        let outcome = send_one(
            &addr,
            &mut conn,
            &session,
            &params,
            opts.read_timeout,
            &retry,
            i,
        )?;
        latencies.push(started.elapsed());
        match outcome {
            Outcome::Ok => ok += 1,
            Outcome::TypedError => typed_errors += 1,
            Outcome::Disconnect => disconnects += 1,
            Outcome::Stall => stalls += 1,
        }
    }

    let consultations = active.calls(point);
    let fired = active.fired(point);
    drop(active);
    server.shutdown();

    #[allow(clippy::cast_possible_truncation)]
    let mean = if latencies.is_empty() {
        Duration::ZERO
    } else {
        let nanos = (latencies.iter().map(Duration::as_nanos).sum::<u128>()
            / latencies.len() as u128) as u64;
        Duration::from_nanos(nanos)
    };
    Ok(PointOutcome {
        point: point.to_string(),
        ok,
        typed_errors,
        disconnects,
        stalls,
        consultations,
        fired,
        mean,
    })
}

enum Outcome {
    Ok,
    TypedError,
    Disconnect,
    Stall,
}

/// Sends one request, reusing `conn` when it is still alive and
/// reconnecting (once) when it is not. An injected read/write fault
/// kills at most this request's connection; the follow-up retry-ping
/// proves the server itself survived.
///
/// # Errors
///
/// [`std::io::Error`] when even the retry-with-backoff ping cannot
/// reach the server — the one thing no fault class is allowed to do.
fn send_one(
    addr: &str,
    conn: &mut Option<Client>,
    session: &Json,
    params: &Json,
    read_timeout: Duration,
    retry: &RetryOptions,
    request_index: usize,
) -> std::io::Result<Outcome> {
    let mut stalled = false;
    for fresh in [false, true] {
        if conn.is_none() || fresh {
            *conn = Client::connect(addr)
                .and_then(|c| {
                    c.set_read_timeout(Some(read_timeout))?;
                    Ok(c)
                })
                .ok();
        }
        let Some(client) = conn.as_mut() else {
            continue;
        };
        let frame = client.request_frame("select", session, params);
        match client.call_raw(&frame) {
            Ok(line) => {
                return Ok(if line.contains("\"error\"") {
                    Outcome::TypedError
                } else {
                    Outcome::Ok
                });
            }
            Err(e) => {
                use std::io::ErrorKind::{TimedOut, WouldBlock};
                stalled = stalled || matches!(e.kind(), WouldBlock | TimedOut);
                *conn = None;
            }
        }
    }
    // Both the reused and a fresh connection failed this request:
    // record the class, but first prove the server is still standing.
    let ping = format!("{{\"id\":{request_index},\"method\":\"ping\"}}");
    Client::call_raw_with_retry(addr, &ping, retry).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("server unreachable after injected fault: {e}"),
        )
    })?;
    Ok(if stalled {
        Outcome::Stall
    } else {
        Outcome::Disconnect
    })
}
