//! Chaos suite for the daemon's four injection points (`serve.conn.read`,
//! `serve.conn.write`, `serve.frame.parse`, `serve.worker.dispatch`) plus
//! the sweep driver itself.
//!
//! Gated behind `fault-injection` via this crate's `[[test]]` entry.
//! Every test arms its plan *before* touching the server and keeps all
//! traffic inside the activation window: activation holds the
//! process-wide serialization lock, so no other chaos test's faults can
//! bleed into this one's connections (this binary holds only chaos
//! tests — `hardening.rs` is a separate process).
//!
//! The audited contract per point: a fired fault costs at most the one
//! connection or request it hit — a typed error frame or a clean
//! disconnect — and the server keeps accepting, with a fresh connection
//! serving bit-identical answers.

use std::time::Duration;

use gridmtd_core::session::batch::Response;
use gridmtd_core::{MtdConfig, MtdSession};
use gridmtd_faults::{FaultPlan, Trigger};
use gridmtd_powergrid::cases;
use gridmtd_scenario::json::Json;
use gridmtd_serve::{wire, ChaosOptions, Client, ServeOptions, Server};

fn session_json(seed: u64) -> Json {
    Json::parse(&format!(
        r#"{{"case":"case4","config":{{"seed":{seed},"n_attacks":20,"n_starts":1,"max_evals_per_start":30}}}}"#
    ))
    .unwrap()
}

fn error_code(line: &str) -> Option<i64> {
    match Json::parse(line).ok()?.get("error")?.get("code")? {
        Json::Int(code) => Some(*code),
        _ => None,
    }
}

#[test]
fn conn_read_fault_drops_one_connection_not_the_server() {
    let active = FaultPlan::new(21)
        .fail("serve.conn.read", Trigger::Once)
        .activate();
    let mut server = Server::start(&ServeOptions::default()).unwrap();

    // The first connection's reader hits the injected I/O failure and
    // closes; the client observes a dead socket, nothing worse.
    let mut doomed = Client::connect(server.local_addr()).unwrap();
    doomed
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert!(
        doomed.call_raw(r#"{"id":1,"method":"ping"}"#).is_err(),
        "the faulted connection must fail, not answer"
    );
    assert_eq!(active.fired("serve.conn.read"), 1);

    // The accept loop never saw the fault: a fresh connection serves.
    let mut client = Client::connect(server.local_addr()).unwrap();
    let line = client.call("ping", &Json::Null, &Json::Null).unwrap();
    assert!(line.contains(r#""ok":true"#));
    server.shutdown();
}

#[test]
fn conn_write_fault_stalls_within_the_read_bound_then_reconnects() {
    let active = FaultPlan::new(22)
        .fail("serve.conn.write", Trigger::Once)
        .activate();
    let mut server = Server::start(&ServeOptions::default()).unwrap();

    // The response line is dropped by the faulted writer, so the client
    // sees silence — bounded by its own read timeout, never an
    // unbounded hang.
    let mut doomed = Client::connect(server.local_addr()).unwrap();
    doomed
        .set_read_timeout(Some(Duration::from_millis(800)))
        .unwrap();
    let err = doomed.call_raw(r#"{"id":1,"method":"ping"}"#).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::UnexpectedEof
        ),
        "expected bounded stall or disconnect, got {err:?}"
    );
    assert_eq!(active.fired("serve.conn.write"), 1);

    let mut client = Client::connect(server.local_addr()).unwrap();
    let line = client.call("ping", &Json::Null, &Json::Null).unwrap();
    assert!(line.contains(r#""ok":true"#));
    server.shutdown();
}

#[test]
fn frame_parse_fault_degrades_to_typed_parse_error_connection_survives() {
    let active = FaultPlan::new(23)
        .fail("serve.frame.parse", Trigger::Once)
        .activate();
    let mut server = Server::start(&ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A perfectly valid frame hits the injected parser failure: the
    // answer is the same typed error a garbage frame earns, on the same
    // still-open connection.
    let line = client.call_raw(r#"{"id":7,"method":"ping"}"#).unwrap();
    assert_eq!(error_code(&line), Some(wire::PARSE_ERROR));
    assert!(line.contains("fault-injection"));
    assert_eq!(active.fired("serve.frame.parse"), 1);

    let line = client.call("ping", &Json::Null, &Json::Null).unwrap();
    assert!(line.contains(r#""ok":true"#));
    server.shutdown();
}

#[test]
fn worker_dispatch_fault_answers_typed_then_recovers_bit_identically() {
    let active = FaultPlan::new(24)
        .fail("serve.worker.dispatch", Trigger::Once)
        .activate();

    // The injection point lives only in the server's worker, so the
    // in-process reference pipeline is unaffected by the armed plan.
    let reference = MtdSession::builder(cases::case4())
        .config(MtdConfig {
            seed: 1,
            n_attacks: 20,
            n_starts: 1,
            max_evals_per_start: 30,
            ..MtdConfig::default()
        })
        .build()
        .unwrap();
    let expect_select =
        wire::encode_response(&Response::Select(reference.select(0.01).unwrap())).compact();

    let mut server = Server::start(&ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let params = Json::obj(vec![("gamma_threshold", Json::Num(0.01))]);

    let line = client.call("select", &session_json(1), &params).unwrap();
    assert_eq!(error_code(&line), Some(wire::PIPELINE_ERROR));
    assert!(line.contains("dispatch"));
    assert_eq!(active.fired("serve.worker.dispatch"), 1);

    // Same connection, fault spent: the retry is answered and matches
    // the direct in-process call bit for bit.
    let line = client.call("select", &session_json(1), &params).unwrap();
    let doc = Json::parse(&line).unwrap();
    assert_eq!(doc.get("result").unwrap().compact(), expect_select);
    server.shutdown();
}

#[test]
fn sweep_driver_audits_every_registered_point() {
    let opts = ChaosOptions {
        requests: 4,
        read_timeout: Duration::from_secs(1),
        ..ChaosOptions::default()
    };
    let report = gridmtd_serve::run_chaos(&opts).unwrap();

    assert_eq!(report.outcomes.len(), gridmtd_faults::registry::ALL.len());
    for o in &report.outcomes {
        assert_eq!(
            o.ok + o.typed_errors + o.disconnects + o.stalls,
            opts.requests,
            "{}: every request must end in an audited outcome",
            o.point
        );
        assert!(o.fired <= o.consultations);
    }
    // Any wire workload flows through all four serve-layer points.
    for o in report
        .outcomes
        .iter()
        .filter(|o| o.point.starts_with("serve."))
    {
        assert!(o.consultations > 0, "{} never consulted", o.point);
    }
    let rendered = report.render();
    assert!(rendered.starts_with("chaos sweep"));
    assert!(rendered.contains("serve.worker.dispatch"));
}
