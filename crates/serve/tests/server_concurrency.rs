//! Live-server concurrency suite: N clients against a running
//! [`Server`], pinned bit-identical to direct [`MtdSession`] calls,
//! plus LRU bounds and protocol robustness under malformed input.

use gridmtd_core::session::batch::Response;
use gridmtd_core::{MtdConfig, MtdSession};
use gridmtd_powergrid::cases;
use gridmtd_scenario::json::Json;
use gridmtd_serve::{wire, Client, ServeOptions, Server};

/// The session spec every concurrency test shares: small enough to
/// build in milliseconds, real enough to exercise the full pipeline.
fn session_json(seed: u64) -> Json {
    Json::parse(&format!(
        r#"{{"case":"case4","config":{{"seed":{seed},"n_attacks":20,"n_starts":1,"max_evals_per_start":30}}}}"#
    ))
    .unwrap()
}

fn direct_session(seed: u64) -> MtdSession {
    MtdSession::builder(cases::case4())
        .config(MtdConfig {
            seed,
            n_attacks: 20,
            n_starts: 1,
            max_evals_per_start: 30,
            ..MtdConfig::default()
        })
        .build()
        .unwrap()
}

#[test]
fn concurrent_clients_match_direct_session_calls_bit_for_bit() {
    let mut server = Server::start(&ServeOptions::default()).unwrap();
    let addr = server.local_addr();

    // The reference answers, computed in-process through the same
    // deterministic encoder the server uses.
    let reference = direct_session(1);
    let x_post: Vec<f64> = reference.x_pre().iter().map(|&x| x * 1.1).collect();
    let expect_evaluate =
        wire::encode_response(&Response::Evaluate(reference.evaluate(&x_post).unwrap())).compact();
    let expect_select =
        wire::encode_response(&Response::Select(reference.select(0.01).unwrap())).compact();

    let n_clients = 4;
    let rounds = 3;
    std::thread::scope(|scope| {
        for c in 0..n_clients {
            let x_post = x_post.clone();
            let expect_evaluate = expect_evaluate.clone();
            let expect_select = expect_select.clone();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for r in 0..rounds {
                    let params = Json::obj(vec![("x_post", Json::floats(&x_post))]);
                    let line = client.call("evaluate", &session_json(1), &params).unwrap();
                    let doc = Json::parse(&line).unwrap();
                    assert_eq!(
                        doc.get("result").unwrap().compact(),
                        expect_evaluate,
                        "client {c} round {r}: evaluate diverged from direct call"
                    );
                    let params = Json::obj(vec![("gamma_threshold", Json::Num(0.01))]);
                    let line = client.call("select", &session_json(1), &params).unwrap();
                    let doc = Json::parse(&line).unwrap();
                    assert_eq!(
                        doc.get("result").unwrap().compact(),
                        expect_select,
                        "client {c} round {r}: select diverged from direct call"
                    );
                }
            });
        }
    });

    // Every request after the first build hit the warm session.
    let stats = server.stats();
    assert_eq!(stats.lru.misses, 1, "one spec must build exactly once");
    assert!(stats.lru.hits >= 1);
    assert_eq!(stats.resident, 1);
    server.shutdown();
}

#[test]
fn batch_coalescing_answers_pipelined_requests_correctly() {
    // One worker: while it is busy with the select, the pipelined
    // evaluates queue up and get drained as a coalesced batch.
    let mut server = Server::start(&ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let reference = direct_session(1);
    let x_post: Vec<f64> = reference.x_pre().iter().map(|&x| x * 1.1).collect();
    let expect_evaluate =
        wire::encode_response(&Response::Evaluate(reference.evaluate(&x_post).unwrap())).compact();

    let mut client = Client::connect(server.local_addr()).unwrap();
    let select_params = Json::obj(vec![("gamma_threshold", Json::Num(0.01))]);
    let select_frame = client.request_frame("select", &session_json(1), &select_params);
    client.send_raw(&select_frame).unwrap();
    let n_pipelined = 8;
    for _ in 0..n_pipelined {
        let params = Json::obj(vec![("x_post", Json::floats(&x_post))]);
        let frame = client.request_frame("evaluate", &session_json(1), &params);
        client.send_raw(&frame).unwrap();
    }
    // Responses on one connection come back in request order (the
    // worker answers a coalesced batch in arrival order).
    let select_line = client.read_line().unwrap();
    assert!(Json::parse(&select_line).unwrap().get("result").is_some());
    for i in 0..n_pipelined {
        let line = client.read_line().unwrap();
        let doc = Json::parse(&line).unwrap();
        assert_eq!(
            doc.get("result").unwrap().compact(),
            expect_evaluate,
            "pipelined evaluate {i} diverged"
        );
        assert_eq!(doc.get("id"), Some(&Json::Int(2 + i as i64)));
    }
    let stats = server.stats();
    assert_eq!(stats.requests, 1 + n_pipelined as u64);
    assert!(
        stats.coalesced > 0,
        "pipelined same-session requests should coalesce: {stats:?}"
    );
    assert!(stats.batches < stats.requests);
    server.shutdown();
}

#[test]
fn lru_eviction_bounds_resident_sessions() {
    let mut server = Server::start(&ServeOptions {
        capacity: 2,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for seed in 1..=4 {
        let line = client
            .call("baseline", &session_json(seed), &Json::Null)
            .unwrap();
        assert!(
            Json::parse(&line).unwrap().get("result").is_some(),
            "baseline seed {seed} failed: {line}"
        );
    }
    let stats = server.stats();
    assert!(stats.resident <= 2, "capacity bound violated: {stats:?}");
    assert_eq!(stats.lru.misses, 4);
    assert!(stats.lru.evictions >= 2);

    // The `stats` wire method reports the same numbers.
    let line = client.call("stats", &Json::Null, &Json::Null).unwrap();
    let doc = Json::parse(&line).unwrap();
    let lru = doc.get("result").unwrap().get("lru").unwrap();
    assert_eq!(lru.get("misses"), Some(&Json::Int(4)));
    server.shutdown();
}

#[test]
fn malformed_and_oversized_frames_get_clean_errors_not_dropped_connections() {
    let mut server = Server::start(&ServeOptions {
        max_frame_bytes: 512,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Malformed JSON → parse error, connection stays up.
    let line = client.call_raw("this is not json").unwrap();
    let doc = Json::parse(&line).unwrap();
    assert_eq!(
        doc.get("error").unwrap().get("code"),
        Some(&Json::Int(wire::PARSE_ERROR))
    );

    // Valid JSON, invalid frame → invalid request, id echoed back.
    let line = client.call_raw(r#"{"id":42,"method":17}"#).unwrap();
    let doc = Json::parse(&line).unwrap();
    assert_eq!(doc.get("id"), Some(&Json::Int(42)));
    assert_eq!(
        doc.get("error").unwrap().get("code"),
        Some(&Json::Int(wire::INVALID_REQUEST))
    );

    // Unknown method and bad params keep their distinct codes.
    let line = client.call_raw(r#"{"method":"frobnicate"}"#).unwrap();
    assert!(line.contains(&wire::METHOD_NOT_FOUND.to_string()));
    let line = client
        .call_raw(
            r#"{"method":"select","session":{"case":"nope"},"params":{"gamma_threshold":0.1}}"#,
        )
        .unwrap();
    assert!(line.contains(&wire::INVALID_PARAMS.to_string()));

    // Oversized frame → FRAME_TOO_LARGE, connection still usable.
    let huge = format!(
        r#"{{"method":"evaluate","params":{{"x_post":[{}]}}}}"#,
        vec!["1.0"; 200].join(",")
    );
    assert!(huge.len() > 512);
    let line = client.call_raw(&huge).unwrap();
    let doc = Json::parse(&line).unwrap();
    assert_eq!(
        doc.get("error").unwrap().get("code"),
        Some(&Json::Int(wire::FRAME_TOO_LARGE))
    );

    // After all that abuse, the same connection still serves pipeline
    // work and pings.
    let line = client.call("ping", &Json::Null, &Json::Null).unwrap();
    assert!(line.contains(r#""ok":true"#));
    let line = client
        .call("baseline", &session_json(1), &Json::Null)
        .unwrap();
    assert!(Json::parse(&line).unwrap().get("result").is_some());
    server.shutdown();
}

#[test]
fn pipeline_failures_are_typed_errors_on_the_wire() {
    let mut server = Server::start(&ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // An unreachable γ threshold is a pipeline error, not a transport
    // failure — and it must not poison the warm session for later
    // requests (the daemon-proofing regression).
    let params = Json::obj(vec![("gamma_threshold", Json::Num(1.5))]);
    let line = client.call("select", &session_json(1), &params).unwrap();
    let doc = Json::parse(&line).unwrap();
    assert_eq!(
        doc.get("error").unwrap().get("code"),
        Some(&Json::Int(wire::PIPELINE_ERROR))
    );
    let line = client
        .call("baseline", &session_json(1), &Json::Null)
        .unwrap();
    assert!(Json::parse(&line).unwrap().get("result").is_some());
    server.shutdown();
}

#[test]
fn timeline_runs_over_the_wire() {
    // Drives begin_day/step_hour (via the batch Timeline request) end
    // to end through the server — the path the DayNotStarted fix
    // daemon-proofed.
    let mut server = Server::start(&ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let params = Json::parse(r#"{"hours":[100,110],"gamma_grid":[0.01]}"#).unwrap();
    let line = client.call("timeline", &session_json(1), &params).unwrap();
    let doc = Json::parse(&line).unwrap();
    let outcomes = doc.get("result").unwrap().as_arr().unwrap();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].get("hour"), Some(&Json::Int(0)));
    server.shutdown();
}

#[test]
fn loadtest_driver_reports_clean_runs() {
    let opts = gridmtd_serve::LoadtestOptions {
        requests: 12,
        clients: 3,
        ..gridmtd_serve::LoadtestOptions::default()
    };
    let report = gridmtd_serve::run_loadtest(&opts).unwrap();
    assert_eq!(report.ok, 12);
    assert_eq!(report.errors, 0);
    assert!(report.throughput_rps > 0.0);
    assert!(report.p99 >= report.p50);
    let stats = report.server_stats.unwrap();
    // One warm-up baseline + 12 evaluates, all on one warm session.
    assert_eq!(stats.requests, 13);
    assert_eq!(stats.lru.misses, 1);
}
