//! Pins the warm-LRU hit path to the build counters: once a session
//! is resident, further requests against the same spec must not re-run
//! any symbolic factorization, measurement-matrix build, or QR basis
//! build — they ride entirely on the warm caches.
//!
//! This lives in its own test binary because the counters are
//! process-global relaxed atomics: any concurrently running session
//! work would bleed into the deltas.

use gridmtd_scenario::json::Json;
use gridmtd_serve::{Client, ServeOptions, Server};

fn counters() -> (u64, u64, u64, u64) {
    (
        gridmtd_powergrid::stats::pf_symbolic_analyses(),
        gridmtd_powergrid::stats::measurement_matrix_builds(),
        gridmtd_estimation::gain_symbolic_analyses(),
        gridmtd_core::spa::gamma_basis_builds(),
    )
}

#[test]
fn warm_lru_hits_never_rerun_symbolic_or_basis_work() {
    let mut server = Server::start(&ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = Json::parse(
        r#"{"case":"case14","config":{"n_attacks":20,"n_starts":1,"max_evals_per_start":30}}"#,
    )
    .unwrap();

    // First contact: builds the session and pays the symbolic /
    // basis / ensemble work once. An evaluate also computes
    // H(x_post), so the measurement-matrix counter moves here too.
    let x_post_params = |scale: f64| {
        // The session's x_pre is the case's nominal reactances; the
        // loadtest-style scaling keeps the OPF feasible.
        let x_pre: Vec<f64> = gridmtd_powergrid::cases::case14()
            .branches()
            .iter()
            .map(|b| b.reactance_pu * scale)
            .collect();
        Json::obj(vec![("x_post", Json::floats(&x_pre))])
    };
    let line = client
        .call("evaluate", &session, &x_post_params(1.1))
        .unwrap();
    assert!(
        Json::parse(&line).unwrap().get("result").is_some(),
        "warm-up evaluate failed: {line}"
    );

    let warm = counters();

    // Same x_post against the warm session: the *only* matrix work
    // allowed is the per-request H(x_post) build — no new symbolic
    // analyses, no new gain-matrix patterns, no new γ bases.
    for round in 0..3 {
        let line = client
            .call("evaluate", &session, &x_post_params(1.1))
            .unwrap();
        assert!(
            Json::parse(&line).unwrap().get("result").is_some(),
            "round {round} failed: {line}"
        );
    }
    let after = counters();
    assert_eq!(
        warm.0, after.0,
        "warm hits re-ran power-flow symbolic analysis"
    );
    assert_eq!(
        warm.2, after.2,
        "warm hits re-ran gain-matrix symbolic analysis"
    );
    assert_eq!(warm.3, after.3, "warm hits rebuilt the γ basis");
    // H(x_post) is legitimately rebuilt per evaluate (3 rounds → 3
    // builds); anything more means a warm cache leaked.
    assert_eq!(
        after.1 - warm.1,
        3,
        "expected exactly one H build per evaluate"
    );
    let stats = server.stats();
    assert_eq!(stats.lru.misses, 1);
    assert_eq!(stats.lru.hits, 3);
    server.shutdown();
}
