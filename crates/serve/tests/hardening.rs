//! Hardened-daemon regression suite: idle reaping, per-request
//! deadlines, bounded-queue shedding, drain-on-shutdown, and the
//! client's capped retry. Runs in tier-1 (no feature gate) — these are
//! contracts of the normal build, not of fault injection.

use std::time::Duration;

use gridmtd_scenario::json::Json;
use gridmtd_serve::{wire, Client, RetryOptions, ServeOptions, Server};

fn session_json(case: &str, seed: u64) -> String {
    format!(
        r#"{{"case":"{case}","config":{{"seed":{seed},"n_attacks":20,"n_starts":1,"max_evals_per_start":30}}}}"#
    )
}

fn select_frame(id: u64, case: &str, seed: u64, threshold: f64, extra: &str) -> String {
    format!(
        r#"{{"id":{id},"method":"select","session":{},"params":{{"gamma_threshold":{threshold}}}{extra}}}"#,
        session_json(case, seed)
    )
}

fn error_code(line: &str) -> Option<i64> {
    match Json::parse(line).ok()?.get("error")?.get("code")? {
        Json::Int(code) => Some(*code),
        _ => None,
    }
}

#[test]
fn idle_connections_are_reaped_and_the_listener_keeps_serving() {
    let mut server = Server::start(&ServeOptions {
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServeOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let line = client.call("ping", &Json::Null, &Json::Null).unwrap();
    assert!(line.contains(r#""ok":true"#));

    // Go quiet past the idle budget: the server must reclaim both
    // connection threads instead of parking them forever.
    let mut reaped = 0;
    for _ in 0..200 {
        reaped = server.stats().reaped;
        if reaped > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(reaped >= 1, "idle connection was never reaped");

    // The reaped socket is dead to the client (bounded observation —
    // no response will ever arrive), but a fresh connection serves.
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    assert!(client.call_raw(r#"{"id":2,"method":"ping"}"#).is_err());
    let mut fresh = Client::connect(server.local_addr()).unwrap();
    let line = fresh.call("ping", &Json::Null, &Json::Null).unwrap();
    assert!(line.contains(r#""ok":true"#));
    server.shutdown();
}

#[test]
fn expired_deadlines_get_typed_errors_generous_ones_still_run() {
    let mut server = Server::start(&ServeOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // `deadline_ms: 0` expires before any worker can dequeue it — the
    // deterministic probe for the deadline path.
    let line = client
        .call_raw(&select_frame(1, "case4", 1, 0.01, r#","deadline_ms":0"#))
        .unwrap();
    assert_eq!(error_code(&line), Some(wire::DEADLINE_EXCEEDED));
    assert!(server.stats().expired >= 1);

    // A generous budget on the same connection runs to completion.
    let line = client
        .call_raw(&select_frame(
            2,
            "case4",
            1,
            0.01,
            r#","deadline_ms":60000"#,
        ))
        .unwrap();
    assert!(Json::parse(&line).unwrap().get("result").is_some());
    server.shutdown();
}

#[test]
fn server_default_deadline_applies_to_frames_without_one() {
    let mut server = Server::start(&ServeOptions {
        request_deadline: Some(Duration::ZERO),
        ..ServeOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Inline methods never consult the deadline…
    let line = client.call("ping", &Json::Null, &Json::Null).unwrap();
    assert!(line.contains(r#""ok":true"#));
    // …but every queued pipeline request inherits the server budget.
    let line = client
        .call_raw(&select_frame(1, "case4", 1, 0.01, ""))
        .unwrap();
    assert_eq!(error_code(&line), Some(wire::DEADLINE_EXCEEDED));
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded_instead_of_buffering_unboundedly() {
    let mut server = Server::start(&ServeOptions {
        workers: 1,
        queue_max: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Occupy the single worker with a heavyweight selection, and wait
    // until it has actually been dequeued so the flood below contends
    // with a busy worker, not an empty queue.
    client
        .send_raw(&select_frame(1, "case57", 3, 0.01, ""))
        .unwrap();
    for _ in 0..400 {
        if server.stats().requests >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(server.stats().requests >= 1, "occupier never dispatched");

    let flood = 6;
    for i in 0..flood {
        client
            .send_raw(&select_frame(2 + i, "case4", 1, 0.01, ""))
            .unwrap();
    }
    let mut ok = 0;
    let mut shed = 0;
    for _ in 0..=flood {
        let line = client.read_line().unwrap();
        match error_code(&line) {
            Some(code) if code == wire::OVERLOADED => shed += 1,
            Some(other) => panic!("unexpected error {other}: {line}"),
            None => ok += 1,
        }
    }
    // The occupier and at most one queued request complete; everything
    // past the bounded queue is shed at the door with a typed error.
    assert!((1..=2).contains(&ok), "expected 1-2 completions, got {ok}");
    assert!(shed >= 4, "expected >=4 shed requests, got {shed}");
    assert!(server.stats().shed >= 4);
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_work_before_closing() {
    let mut server = Server::start(&ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let jobs = 5;
    for i in 0..jobs {
        client
            .send_raw(&select_frame(1 + i, "case4", 1, 0.01, ""))
            .unwrap();
    }
    // The inline ping is the barrier: its (immediate) answer proves the
    // reader consumed and enqueued every preceding frame.
    client
        .send_raw(&format!(r#"{{"id":{},"method":"ping"}}"#, jobs + 1))
        .unwrap();

    let barrier = client.read_line().unwrap();
    assert!(barrier.contains(r#""ok":true"#), "barrier ping: {barrier}");
    server.shutdown();

    let mut results = 0;
    for _ in 0..jobs {
        let line = client.read_line().unwrap();
        assert!(
            Json::parse(&line).unwrap().get("result").is_some(),
            "queued request dropped during shutdown: {line}"
        );
        results += 1;
    }
    assert_eq!(results, jobs);
}

#[test]
fn client_retry_is_single_shot_against_a_healthy_server() {
    let mut server = Server::start(&ServeOptions::default()).unwrap();
    let opts = RetryOptions {
        attempts: 4,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(4),
        seed: 9,
    };
    let (line, attempts) =
        Client::call_raw_with_retry(server.local_addr(), r#"{"id":1,"method":"ping"}"#, &opts)
            .unwrap();
    assert!(line.contains(r#""ok":true"#));
    assert_eq!(attempts, 1, "healthy server must not trigger backoff");
    server.shutdown();
}

#[test]
fn client_retry_surrenders_the_last_overloaded_answer_at_budget_end() {
    let mut server = Server::start(&ServeOptions {
        workers: 1,
        queue_max: 1,
        ..ServeOptions::default()
    })
    .unwrap();
    let mut occupier = Client::connect(server.local_addr()).unwrap();
    occupier
        .send_raw(&select_frame(1, "case57", 3, 0.01, ""))
        .unwrap();
    for _ in 0..400 {
        if server.stats().requests >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Fill the one queue slot so every retry attempt below sheds.
    occupier
        .send_raw(&select_frame(2, "case57", 3, 0.012, ""))
        .unwrap();

    let opts = RetryOptions {
        attempts: 3,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(8),
        seed: 5,
    };
    let (line, attempts) = Client::call_raw_with_retry(
        server.local_addr(),
        &select_frame(9, "case4", 1, 0.01, ""),
        &opts,
    )
    .unwrap();
    assert_eq!(
        error_code(&line),
        Some(wire::OVERLOADED),
        "budget end must surrender the typed shed answer, got: {line}"
    );
    assert_eq!(attempts, opts.attempts);
    assert!(server.stats().shed >= u64::from(opts.attempts));
    server.shutdown();
}
