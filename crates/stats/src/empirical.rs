//! Small empirical-statistics helpers for Monte-Carlo post-processing.

/// Sample mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance; `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0)
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Empirical quantile (linear interpolation between order statistics).
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level must be in [0,1], got {q}"
    );
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let pos = q * (sorted.len() as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fraction of samples for which `pred` holds.
pub fn fraction_where<F: Fn(f64) -> bool>(xs: &[f64], pred: F) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| pred(x)).count() as f64 / xs.len() as f64
}

/// Five-number summary of a sample, used by the scenario engine's
/// per-sweep result blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Smallest sample value (`0.0` for an empty sample).
    pub min: f64,
    /// Largest sample value (`0.0` for an empty sample).
    pub max: f64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Median (linear-interpolation quantile at 0.5).
    pub median: f64,
}

/// Summarizes a sample. An empty slice yields an all-zero summary with
/// `n = 0`, so callers can serialize it without special-casing.
pub fn summarize(xs: &[f64]) -> Summary {
    if xs.is_empty() {
        return Summary {
            n: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            std_dev: 0.0,
            median: 0.0,
        };
    }
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Summary {
        n: xs.len(),
        min,
        max,
        mean: mean(xs),
        std_dev: std_dev(xs),
        median: quantile(xs, 0.5),
    }
}

/// Half-width of the normal-approximation 95% confidence interval for a
/// Bernoulli proportion estimated from `n` trials.
pub fn proportion_ci_halfwidth(p_hat: f64, n: usize) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    1.96 * (p_hat * (1.0 - p_hat) / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_counts_predicate() {
        let xs = [0.1, 0.5, 0.9, 0.95];
        assert_eq!(fraction_where(&xs, |x| x >= 0.9), 0.5);
        assert_eq!(fraction_where(&[], |_| true), 0.0);
    }

    #[test]
    fn ci_halfwidth_shrinks_with_n() {
        let w100 = proportion_ci_halfwidth(0.5, 100);
        let w10000 = proportion_ci_halfwidth(0.5, 10_000);
        assert!((w100 / w10000 - 10.0).abs() < 1e-9);
        assert_eq!(proportion_ci_halfwidth(0.5, 0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn summary_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = summarize(&xs);
        assert_eq!(s.n, 8);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 4.5);
    }

    #[test]
    fn summary_of_empty_sample_is_zeroed() {
        let s = summarize(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.median, 0.0);
    }
}
