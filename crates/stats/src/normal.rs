//! Standard normal distribution and Gaussian sampling.
//!
//! Sensor noise in the paper is i.i.d. Gaussian; this module provides the
//! density/CDF of the standard normal and Marsaglia polar sampling on top
//! of any [`rand::Rng`].

use rand::Rng;

use crate::gamma::{erf, erfc};

/// Standard normal probability density.
pub fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF `Φ(x)`.
pub fn cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal survival function `1 − Φ(x)` with tail precision.
pub fn sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Draws one standard-normal variate using the Marsaglia polar method.
pub fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Fills a vector with `n` i.i.d. `N(0, sigma²)` samples.
///
/// # Panics
///
/// Panics if `sigma < 0`.
pub fn sample_vector<R: Rng + ?Sized>(rng: &mut R, n: usize, sigma: f64) -> Vec<f64> {
    assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
    (0..n).map(|_| sigma * sample_standard(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_known_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-10);
        assert!((cdf(-1.959_963_984_540_054) - 0.025).abs() < 1e-10);
    }

    #[test]
    fn sf_is_complement_with_tail_precision() {
        assert!((sf(0.0) - 0.5).abs() < 1e-15);
        // sf(6) = 9.865876e-10; 1-cdf would keep only ~6 digits.
        assert!((sf(6.0) / 9.865_876_450_376_946e-10 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-15);
        assert!((pdf(1.3) - pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn sample_moments_match() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let xs = sample_vector(&mut rng, n, 2.0);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sample_cdf_matches_analytic() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let xs = sample_vector(&mut rng, n, 1.0);
        let below = xs.iter().filter(|&&x| x < 1.0).count() as f64 / n as f64;
        assert!((below - cdf(1.0)).abs() < 0.01, "empirical {below}");
    }

    #[test]
    fn zero_sigma_gives_zero_vector() {
        let mut rng = StdRng::seed_from_u64(0);
        let xs = sample_vector(&mut rng, 10, 0.0);
        assert!(xs.iter().all(|&x| x == 0.0));
    }
}
