//! Gamma-family special functions.
//!
//! Provides the log-gamma function (Lanczos approximation) and the
//! regularized incomplete gamma functions `P(a, x)` / `Q(a, x)`, which
//! together give the central χ² distribution in closed form:
//! `F_{χ²_k}(x) = P(k/2, x/2)`.

/// Lanczos coefficients (g = 7, n = 9), double-precision accurate.
/// Quoted digit-for-digit from the published table, hence beyond f64
/// precision.
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)]
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~15 significant digits over the range used by the χ²
/// machinery (half-integer arguments up to a few hundred).
///
/// # Panics
///
/// Panics if `x <= 0` (reflection is not needed in this workspace).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy for small positive arguments.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Maximum iterations for the series / continued-fraction evaluations.
const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;

/// Regularized lower incomplete gamma function `P(a, x)`, for `a > 0`,
/// `x ≥ 0`.
///
/// `P(a, x) = γ(a, x) / Γ(a)` increases from 0 at `x = 0` to 1 as
/// `x → ∞`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly by continued fraction when `x` is large so the upper
/// tail keeps full relative precision — important because the BDD
/// false-positive rates in the paper are as small as `5 × 10⁻⁴`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_upper_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_upper_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for `Q(a, x)`, convergent for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function `erf(x)` via the incomplete gamma identity
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        reg_lower_gamma(0.5, x * x)
    } else {
        -reg_lower_gamma(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)` with full relative
/// precision in the upper tail.
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        1.0 + reg_lower_gamma(0.5, x * x).min(1.0) * if x == 0.0 { 0.0 } else { 1.0 }
    } else {
        reg_upper_gamma(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma((n + 1) as f64);
            assert!((got - f.ln()).abs() < 1e-12, "Γ({}) mismatch: {got}", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let got = ln_gamma(0.5);
        assert!((got - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = √π / 2
        let got = ln_gamma(1.5);
        let expect = 0.5 * std::f64::consts::PI.ln() - 2.0_f64.ln();
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0, 100.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}: p+q={}", p + q);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.0, 0.5, 1.0, 3.0, 10.0] {
            let got = reg_lower_gamma(1.0, x);
            assert!((got - (1.0 - (-x).exp())).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn incomplete_gamma_is_monotone_in_x() {
        let a = 3.7;
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.3;
            let p = reg_lower_gamma(a, x);
            assert!(p >= prev - 1e-14);
            prev = p;
        }
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        // erf(1) = 0.8427007929497149
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(3.0) - 0.999_977_909_503_001_4).abs() < 1e-12);
    }

    #[test]
    fn erfc_tail_precision() {
        // erfc(5) = 1.5374597944280347e-12; direct 1-erf would lose all digits.
        let got = erfc(5.0);
        assert!(
            (got / 1.537_459_794_428_034_7e-12 - 1.0).abs() < 1e-9,
            "got {got}"
        );
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn negative_shape_panics() {
        reg_lower_gamma(-1.0, 1.0);
    }
}
