//! Probability and statistics substrate for the `gridmtd` workspace.
//!
//! Implements exactly the distribution theory the paper's analysis needs:
//!
//! * [`gamma`] — log-gamma and regularized incomplete gamma functions,
//! * [`chi2`] — central χ² (BDD threshold calibration for a target
//!   false-positive rate) and **noncentral χ²** (closed-form attack
//!   detection probabilities per Appendix B of Lakshminarayana & Yau,
//!   DSN 2018),
//! * [`normal`] — Gaussian density/CDF and sampling for measurement noise,
//! * [`empirical`] — Monte-Carlo post-processing helpers.
//!
//! # Example: BDD threshold and detection probability
//!
//! ```
//! use gridmtd_stats::chi2::{ChiSquared, NoncentralChiSquared};
//!
//! // 54 measurements, 13 states -> 41 residual degrees of freedom.
//! let h0 = ChiSquared::new(41.0);
//! let tau_sq = h0.inv_cdf(1.0 - 5e-4); // α = 5e-4 like the paper
//!
//! // An FDI attack with residual noncentrality λ = 60 is detected with
//! // probability:
//! let pd = gridmtd_stats::chi2::NoncentralChiSquared::new(41.0, 60.0).sf(tau_sq);
//! assert!(pd > 0.5);
//! ```

pub mod chi2;
pub mod empirical;
pub mod gamma;
pub mod normal;
