//! Central and noncentral χ² distributions.
//!
//! The BDD residual statistic `J = ‖z − Hθ̂‖²_W` follows:
//!
//! * under no attack: a **central** χ² with `M − n` degrees of freedom
//!   (measurement count minus state dimension), which calibrates the
//!   detection threshold for a target false-positive rate α;
//! * under attack `a` and MTD `H'`: a **noncentral** χ² with the same
//!   degrees of freedom and noncentrality `λ = ‖r'_a‖²_W` (Appendix B of
//!   the paper), which gives the detection probability in closed form.

use crate::gamma::{reg_lower_gamma, reg_upper_gamma};

/// Central χ² distribution with `k` degrees of freedom.
///
/// # Example
///
/// ```
/// use gridmtd_stats::chi2::ChiSquared;
///
/// let d = ChiSquared::new(4.0);
/// // Median of χ²_4 is about 3.357.
/// assert!((d.cdf(3.3567) - 0.5).abs() < 1e-4);
/// // Threshold for a 5e-4 false-positive rate.
/// let tau_sq = d.inv_cdf(1.0 - 5e-4);
/// assert!((d.sf(tau_sq) - 5e-4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive and finite.
    pub fn new(k: f64) -> ChiSquared {
        assert!(k > 0.0 && k.is_finite(), "χ² requires k > 0, got {k}");
        ChiSquared { k }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.k
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_lower_gamma(self.k / 2.0, x / 2.0)
        }
    }

    /// Survival function `P(X > x)` with full tail precision.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            reg_upper_gamma(self.k / 2.0, x / 2.0)
        }
    }

    /// Mean `k`.
    pub fn mean(&self) -> f64 {
        self.k
    }

    /// Variance `2k`.
    pub fn variance(&self) -> f64 {
        2.0 * self.k
    }

    /// Inverse CDF (quantile) by bracketed bisection.
    ///
    /// Accuracy ~1e-10 in `x`, ample for threshold calibration.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&p) && p > 0.0,
            "quantile requires 0 < p < 1, got {p}"
        );
        // Bracket: [0, hi] with hi grown until cdf(hi) >= p.
        let mut hi = self.k + 10.0 * (2.0 * self.k).sqrt() + 10.0;
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Noncentral χ² distribution with `k` degrees of freedom and
/// noncentrality `lambda`.
///
/// The CDF is evaluated as the Poisson(λ/2) mixture of central χ² CDFs:
/// `F(x; k, λ) = Σ_j e^{−λ/2} (λ/2)^j / j! · F(x; k + 2j)`, summed outward
/// from the modal Poisson index for numerical robustness at large λ.
///
/// # Example
///
/// ```
/// use gridmtd_stats::chi2::{ChiSquared, NoncentralChiSquared};
///
/// let central = ChiSquared::new(6.0);
/// let shifted = NoncentralChiSquared::new(6.0, 9.0);
/// let tau = central.inv_cdf(0.999);
/// // An attack with noncentrality 9 is detected far more often than α.
/// assert!(shifted.sf(tau) > central.sf(tau));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoncentralChiSquared {
    k: f64,
    lambda: f64,
}

impl NoncentralChiSquared {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0` or `lambda < 0` or either is non-finite.
    pub fn new(k: f64, lambda: f64) -> NoncentralChiSquared {
        assert!(
            k > 0.0 && k.is_finite(),
            "noncentral χ² requires k > 0, got {k}"
        );
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "noncentral χ² requires λ >= 0, got {lambda}"
        );
        NoncentralChiSquared { k, lambda }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.k
    }

    /// Noncentrality parameter.
    pub fn noncentrality(&self) -> f64 {
        self.lambda
    }

    /// Mean `k + λ`.
    pub fn mean(&self) -> f64 {
        self.k + self.lambda
    }

    /// Variance `2(k + 2λ)`.
    pub fn variance(&self) -> f64 {
        2.0 * (self.k + 2.0 * self.lambda)
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if self.lambda == 0.0 {
            return ChiSquared::new(self.k).cdf(x);
        }
        let half = self.lambda / 2.0;
        // Start at the modal Poisson term and expand outward until the
        // accumulated weight is (numerically) complete.
        let j0 = half.floor() as i64;
        let ln_w0 = -half + (j0 as f64) * half.ln() - crate::gamma::ln_gamma(j0 as f64 + 1.0);
        let w0 = ln_w0.exp();

        let mut total = w0 * reg_lower_gamma(self.k / 2.0 + j0 as f64, x / 2.0);
        let mut weight_sum = w0;

        // upward
        let mut w = w0;
        let mut j = j0;
        while weight_sum < 1.0 - 1e-14 {
            j += 1;
            w *= half / j as f64;
            if w < 1e-18 && j > j0 + 4 {
                break;
            }
            total += w * reg_lower_gamma(self.k / 2.0 + j as f64, x / 2.0);
            weight_sum += w;
            if j - j0 > 10_000 {
                break;
            }
        }
        // downward
        let mut w = w0;
        let mut j = j0;
        while j > 0 {
            w *= j as f64 / half;
            j -= 1;
            if w < 1e-18 && j0 - j > 4 {
                break;
            }
            total += w * reg_lower_gamma(self.k / 2.0 + j as f64, x / 2.0);
        }
        total.clamp(0.0, 1.0)
    }

    /// Survival function `P(X > x)`.
    ///
    /// Mirrors [`NoncentralChiSquared::cdf`] but mixes the central χ²
    /// survival functions so the upper tail retains relative precision.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        if self.lambda == 0.0 {
            return ChiSquared::new(self.k).sf(x);
        }
        let half = self.lambda / 2.0;
        let j0 = half.floor() as i64;
        let ln_w0 = -half + (j0 as f64) * half.ln() - crate::gamma::ln_gamma(j0 as f64 + 1.0);
        let w0 = ln_w0.exp();

        let mut total = w0 * reg_upper_gamma(self.k / 2.0 + j0 as f64, x / 2.0);
        let mut weight_sum = w0;

        let mut w = w0;
        let mut j = j0;
        while weight_sum < 1.0 - 1e-14 {
            j += 1;
            w *= half / j as f64;
            if w < 1e-18 && j > j0 + 4 {
                break;
            }
            total += w * reg_upper_gamma(self.k / 2.0 + j as f64, x / 2.0);
            weight_sum += w;
            if j - j0 > 10_000 {
                break;
            }
        }
        let mut w = w0;
        let mut j = j0;
        while j > 0 {
            w *= j as f64 / half;
            j -= 1;
            if w < 1e-18 && j0 - j > 4 {
                break;
            }
            total += w * reg_upper_gamma(self.k / 2.0 + j as f64, x / 2.0);
        }
        total.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_cdf_known_values() {
        // χ²_1: F(x) = erf(sqrt(x/2)); F(1) = 0.6826894921370859
        let d = ChiSquared::new(1.0);
        assert!((d.cdf(1.0) - 0.682_689_492_137_085_9).abs() < 1e-12);
        // χ²_2 is Exp(1/2): F(x) = 1 - e^{-x/2}
        let d2 = ChiSquared::new(2.0);
        for &x in &[0.5, 1.0, 4.0] {
            assert!((d2.cdf(x) - (1.0 - (-x / 2.0).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_roundtrips_cdf() {
        for &k in &[1.0, 3.0, 10.0, 40.0, 100.0] {
            let d = ChiSquared::new(k);
            for &p in &[0.001, 0.05, 0.5, 0.95, 0.9995] {
                let x = d.inv_cdf(p);
                assert!((d.cdf(x) - p).abs() < 1e-8, "k={k} p={p}");
            }
        }
    }

    #[test]
    fn central_moments() {
        let d = ChiSquared::new(7.0);
        assert_eq!(d.mean(), 7.0);
        assert_eq!(d.variance(), 14.0);
    }

    #[test]
    fn noncentral_with_zero_lambda_is_central() {
        let nc = NoncentralChiSquared::new(5.0, 0.0);
        let c = ChiSquared::new(5.0);
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            assert!((nc.cdf(x) - c.cdf(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn noncentral_cdf_sf_complementarity() {
        let nc = NoncentralChiSquared::new(12.0, 30.0);
        for &x in &[1.0, 10.0, 40.0, 42.0, 100.0] {
            assert!((nc.cdf(x) + nc.sf(x) - 1.0).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn noncentral_known_value() {
        // Cross-checked against an independent Poisson-mixture
        // implementation (and consistent with the Monte-Carlo test below).
        let nc = NoncentralChiSquared::new(4.0, 5.0);
        assert!(
            (nc.cdf(10.0) - 0.638_228_859_582_311).abs() < 1e-10,
            "got {}",
            nc.cdf(10.0)
        );
        let nc2 = NoncentralChiSquared::new(20.0, 25.0);
        assert!(
            (nc2.cdf(50.0) - 0.686_080_708_636_577_4).abs() < 1e-10,
            "got {}",
            nc2.cdf(50.0)
        );
    }

    #[test]
    fn noncentral_cdf_matches_monte_carlo() {
        // X = Σ_{i=1}^{k} (Z_i + δ_i)² with Σ δ_i² = λ is noncentral χ².
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (k, lambda) = (4usize, 5.0f64);
        let delta = (lambda / k as f64).sqrt();
        let mut rng = StdRng::seed_from_u64(123);
        let n = 200_000;
        let x0 = 10.0;
        let mut below = 0usize;
        for _ in 0..n {
            let mut s = 0.0;
            for _ in 0..k {
                let z = crate::normal::sample_standard(&mut rng) + delta;
                s += z * z;
            }
            if s <= x0 {
                below += 1;
            }
        }
        let empirical = below as f64 / n as f64;
        let analytic = NoncentralChiSquared::new(k as f64, lambda).cdf(x0);
        assert!(
            (empirical - analytic).abs() < 0.005,
            "MC {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn detection_probability_increases_with_noncentrality() {
        // Theorem 1's mechanism: P(X > τ) is increasing in λ.
        let tau = ChiSquared::new(30.0).inv_cdf(1.0 - 5e-4);
        let mut prev = 0.0;
        for i in 0..20 {
            let lambda = i as f64 * 5.0;
            let pd = NoncentralChiSquared::new(30.0, lambda).sf(tau);
            assert!(pd >= prev - 1e-12, "λ={lambda}: {pd} < {prev}");
            prev = pd;
        }
        // And it approaches 1 for huge noncentrality.
        assert!(NoncentralChiSquared::new(30.0, 500.0).sf(tau) > 0.999);
    }

    #[test]
    fn noncentral_moments() {
        let nc = NoncentralChiSquared::new(6.0, 4.0);
        assert_eq!(nc.mean(), 10.0);
        assert_eq!(nc.variance(), 2.0 * (6.0 + 8.0));
    }

    #[test]
    fn large_lambda_stability() {
        // λ large enough that naive series from j=0 would underflow.
        let nc = NoncentralChiSquared::new(50.0, 2000.0);
        let m = nc.mean();
        assert!(nc.cdf(m) > 0.4 && nc.cdf(m) < 0.6);
        assert!(nc.cdf(m * 2.0) > 0.999_9);
        assert!(nc.cdf(m * 0.5) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "requires k > 0")]
    fn zero_df_panics() {
        ChiSquared::new(0.0);
    }

    #[test]
    #[should_panic(expected = "λ >= 0")]
    fn negative_lambda_panics() {
        NoncentralChiSquared::new(1.0, -1.0);
    }
}
