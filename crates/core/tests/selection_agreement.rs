//! Method agreement: the gradient (projected L-BFGS) selection path and
//! the Nelder–Mead path it replaced must agree on what matters.
//!
//! * Both meet the requested `γ_th` on every case rung they are run on
//!   (the audit is shared, so this pins the optimizer, not the audit);
//! * the gradient path's OPF cost is never worse than Nelder–Mead's by
//!   more than 1 % — it replaced NM as the default on the promise of
//!   equal-or-better selections, not merely faster ones;
//! * the gradient path is bit-identical across worker thread counts
//!   (the workspace determinism contract extends to the new optimizer).
//!
//! The largest rung (case118) runs gradient-only: a Nelder–Mead run of
//! comparable quality needs hundreds of debug-build LP solves, which is
//! exactly the cost this PR retires.

use gridmtd_core::{selection, MtdConfig, MtdError, SelectionMethod};
use gridmtd_opf::parallel::with_thread_budget;
use gridmtd_powergrid::{cases, Network};

fn cfg_with(method: SelectionMethod, n_starts: usize, max_evals: usize, seed: u64) -> MtdConfig {
    MtdConfig {
        n_attacks: 50,
        n_starts,
        max_evals_per_start: max_evals,
        seed,
        selection_method: method,
        ..MtdConfig::default()
    }
}

fn agree_on(net: &Network, gamma_th: f64, n_starts: usize, max_evals: usize, seed: u64) {
    let x_pre = net.nominal_reactances();
    let grad_cfg = cfg_with(SelectionMethod::Gradient, n_starts, max_evals, seed);
    let nm_cfg = cfg_with(SelectionMethod::NelderMead, n_starts, max_evals, seed);

    let grad = selection::select_mtd(net, &x_pre, gamma_th, &grad_cfg).unwrap();
    let nm = selection::select_mtd(net, &x_pre, gamma_th, &nm_cfg).unwrap();

    assert!(
        grad.gamma >= gamma_th - 1e-3,
        "gradient path missed gamma_th: {} < {gamma_th}",
        grad.gamma
    );
    assert!(
        nm.gamma >= gamma_th - 1e-3,
        "nelder-mead path missed gamma_th: {} < {gamma_th}",
        nm.gamma
    );
    assert!(
        grad.opf.cost <= nm.opf.cost * 1.01,
        "gradient selection must not cost more than 1% over nelder-mead: {} vs {}",
        grad.opf.cost,
        nm.opf.cost
    );
}

#[test]
fn case4_methods_agree() {
    agree_on(&cases::case4(), 0.2, 2, 120, 1);
}

#[test]
fn case14_methods_agree() {
    agree_on(&cases::case14(), 0.2, 2, 120, 1);
}

#[test]
fn case30_methods_agree() {
    // Quadratic generator costs: the envelope gradient prices the PWL
    // surrogate, which must still steer to an equal-or-better optimum.
    agree_on(&cases::case30(), 0.15, 2, 120, 30);
}

#[test]
fn case57_methods_agree() {
    // 160 evaluations is what Nelder-Mead needs to clear 0.02 on the
    // 25-dimensional case57 D-FACTS box (its initial simplex alone costs
    // 26); the gradient path clears far higher thresholds on the same
    // budget, but agreement needs a bar both can meet.
    agree_on(&cases::case57(), 0.02, 1, 160, 5757);
}

#[test]
fn case118_gradient_meets_threshold() {
    let net = cases::case118();
    let x_pre = net.nominal_reactances();
    let cfg = cfg_with(SelectionMethod::Gradient, 1, 12, 118_118);
    let sel = selection::select_mtd(&net, &x_pre, 0.05, &cfg).unwrap();
    assert!(
        sel.gamma >= 0.05 - 1e-3,
        "case118 gradient selection missed gamma_th: {}",
        sel.gamma
    );
    assert!(sel.opf.cost.is_finite() && sel.opf.cost > 0.0);
}

#[test]
fn gradient_selection_is_bit_identical_across_thread_counts() {
    let net = cases::case14();
    let x_pre = net.nominal_reactances();
    let cfg = cfg_with(SelectionMethod::Gradient, 4, 60, 7);

    let baseline =
        with_thread_budget(Some(1), || selection::select_mtd(&net, &x_pre, 0.2, &cfg)).unwrap();
    for threads in [2usize, 4, 16] {
        let sel = with_thread_budget(Some(threads), || {
            selection::select_mtd(&net, &x_pre, 0.2, &cfg)
        })
        .unwrap();
        assert_eq!(
            sel.gamma.to_bits(),
            baseline.gamma.to_bits(),
            "gamma differs at {threads} threads"
        );
        assert_eq!(
            sel.opf.cost.to_bits(),
            baseline.opf.cost.to_bits(),
            "cost differs at {threads} threads"
        );
        for (l, (a, b)) in sel.x_post.iter().zip(baseline.x_post.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "x_post[{l}] differs at {threads} threads"
            );
        }
    }
}

#[test]
fn unreachable_threshold_is_still_a_typed_error() {
    // The gradient rounds fall back to Nelder–Mead, and the NM tail owns
    // the ThresholdUnreachable diagnosis — the fallback chain must not
    // swallow it.
    let net = cases::case4();
    let x_pre = net.nominal_reactances();
    let cfg = cfg_with(SelectionMethod::Gradient, 1, 40, 1);
    match selection::select_mtd(&net, &x_pre, 1.5, &cfg) {
        Err(MtdError::ThresholdUnreachable {
            requested,
            achieved,
        }) => {
            assert_eq!(requested, 1.5);
            assert!(achieved < 1.5);
        }
        other => panic!("expected ThresholdUnreachable, got {other:?}"),
    }
}
