//! The chaos matrix for the pipeline-side injection points (the serve
//! daemon's four points live in `crates/serve/tests/chaos.rs`).
//!
//! Gated behind the `fault-injection` feature (see this crate's
//! `[[test]]` entry): `cargo test -p gridmtd-core --features
//! fault-injection`. Each test arms one registered point through a
//! seeded [`FaultPlan`] and asserts the documented contract from
//! `docs/ROBUSTNESS.md`: under the fault the pipeline either produces
//! a **bit-identical** result through its fallback chain or a **typed
//! error** — never a panic, hang, or silently wrong answer — and the
//! component recovers once the fault clears.
//!
//! Reference (unfaulted) runs execute under an *empty* activated plan:
//! activation holds the process-wide serialization lock, so a
//! concurrently running chaos test cannot leak its faults into another
//! test's reference.

use gridmtd_core::faults::{registry, FaultPlan, Trigger};
use gridmtd_core::{MtdConfig, MtdSession, SelectionMethod};
use gridmtd_linalg::sparse::{SparseLu, SparseMatrix};
use gridmtd_linalg::LinalgError;
use gridmtd_opf::lp::{LpProblem, LpSolution, LpSolver, Relation};
use gridmtd_powergrid::cases;

fn tiny_cfg() -> MtdConfig {
    MtdConfig {
        n_attacks: 8,
        n_starts: 1,
        max_evals_per_start: 40,
        ..MtdConfig::default()
    }
}

fn gradient_cfg() -> MtdConfig {
    MtdConfig {
        selection_method: SelectionMethod::Gradient,
        ..tiny_cfg()
    }
}

/// Runs `f` with every fault dormant, serialized against other chaos
/// tests in this binary.
fn unfaulted<T>(f: impl FnOnce() -> T) -> T {
    let _quiet = FaultPlan::new(0).activate();
    f()
}

/// The doc-example warm-start LP: cold solve, then a rhs perturbation
/// that resolves warm.
fn warm_lp_pair(solver: &mut LpSolver, tighten_to: f64) -> (LpSolution, LpSolution) {
    let mut lp = LpProblem::new();
    let x = lp.add_var(0.0, 3.0, -1.0);
    let y = lp.add_var(0.0, 3.0, -2.0);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
    let first = solver.solve(&lp).expect("cold solve");
    lp.set_rhs(0, tighten_to);
    let second = solver.solve(&lp).expect("resolve");
    (first, second)
}

#[test]
fn warm_resolve_fault_falls_back_cold_bit_identically() {
    let (ref_pair, ref_select) = unfaulted(|| {
        let mut solver = LpSolver::new();
        let pair = warm_lp_pair(&mut solver, 3.5);
        assert_eq!(solver.warm_solves(), 1, "reference must take the warm path");
        let session = MtdSession::builder(cases::case14())
            .config(tiny_cfg())
            .build()
            .unwrap();
        (pair, session.select(0.1).unwrap())
    });

    let active = FaultPlan::new(11)
        .fail("opf.lp.warm_resolve", Trigger::Always)
        .activate();

    // LP layer: the engine silently falls back to the cold two-phase
    // solve and the answers do not move by a single bit.
    let mut solver = LpSolver::new();
    let pair = warm_lp_pair(&mut solver, 3.5);
    assert_eq!(
        solver.warm_solves(),
        0,
        "fault must divert every warm solve"
    );
    assert_eq!(solver.cold_solves(), 2);
    assert_eq!(pair, ref_pair, "cold fallback must be bit-identical");

    // Pipeline layer: a full SPA-constrained selection rides the same
    // chain. Warm and cold solves land on the same optimal vertex but
    // reach it through different pivot arithmetic, so the all-cold run
    // may differ from the warm reference in the last ulp — the audit
    // here is "same selection, still deterministic", not bit-equality
    // across *different healthy paths* (that identity is pinned per
    // path by the property test in `crates/opf/tests`).
    let session = MtdSession::builder(cases::case14())
        .config(tiny_cfg())
        .build()
        .unwrap();
    let select = session.select(0.1).unwrap();
    assert!(active.fired("opf.lp.warm_resolve") > 0, "fault never fired");
    assert!(select.gamma >= 0.1 - 1e-3);
    assert_eq!(select.x_post.len(), ref_select.x_post.len());
    for (a, b) in select.x_post.iter().zip(&ref_select.x_post) {
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "{a} vs {b}");
    }
    let (c, rc) = (select.opf.cost, ref_select.opf.cost);
    assert!((c - rc).abs() <= 1e-9 * rc.abs().max(1.0));
}

#[test]
fn warm_repair_fault_falls_back_cold_bit_identically() {
    // Tightening the constraint below the incumbent activity (1 + 3 =
    // 4 → 2.5) leaves the saved basis primal-infeasible, so the warm
    // path must run its Phase-1 repair before pricing.
    let ref_pair = unfaulted(|| {
        let mut solver = LpSolver::new();
        let pair = warm_lp_pair(&mut solver, 2.5);
        assert_eq!(solver.warm_solves(), 1, "reference must repair warm");
        pair
    });

    let active = FaultPlan::new(12)
        .fail("opf.lp.warm_repair", Trigger::Always)
        .activate();
    let mut solver = LpSolver::new();
    let pair = warm_lp_pair(&mut solver, 2.5);
    assert!(
        active.calls("opf.lp.warm_repair") > 0,
        "workload must consult the repair point"
    );
    assert!(active.fired("opf.lp.warm_repair") > 0);
    assert_eq!(solver.warm_solves(), 0, "failed repair must divert to cold");
    assert_eq!(pair, ref_pair, "cold fallback must be bit-identical");
}

#[test]
fn sparse_lu_zero_pivot_fault_is_a_typed_error() {
    let a = SparseMatrix::from_triplets(
        3,
        3,
        &[
            (0, 0, 4.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 5.0),
        ],
    )
    .unwrap();
    let reference = unfaulted(|| SparseLu::factor(&a).expect("well-conditioned factor"));

    let active = FaultPlan::new(13)
        .fail("linalg.sparse_lu.zero_pivot", Trigger::Once)
        .activate();
    // First factor hits the injected zero pivot: a typed error, no
    // NaN-laden factor object escapes.
    assert!(matches!(SparseLu::factor(&a), Err(LinalgError::Singular)));
    assert_eq!(active.fired("linalg.sparse_lu.zero_pivot"), 1);
    // Second factor (fault spent) recovers and solves like the
    // reference.
    let again = SparseLu::factor(&a).expect("factor after fault clears");
    let rhs = vec![1.0, -2.0, 0.5];
    assert_eq!(
        reference.solve(&rhs).unwrap(),
        again.solve(&rhs).unwrap(),
        "recovered factor must be bit-identical"
    );
}

#[test]
fn sparse_cholesky_zero_pivot_recovers_after_firing_once() {
    // case57 crosses both sparse crossovers (57 buses ≥ 48, 56 states
    // ≥ 40), so the estimator gain and the power flow both run their
    // sparse Cholesky refactor paths.
    let cfg = MtdConfig {
        n_attacks: 4,
        ..MtdConfig::default()
    };
    let net = cases::case57();
    let x_pre = net.nominal_reactances();
    let mut x_post = x_pre.clone();
    for l in net.dfacts_branches() {
        x_post[l] *= 1.15;
    }
    let reference = unfaulted(|| {
        let session = MtdSession::builder(cases::case57())
            .config(cfg.clone())
            .build()
            .unwrap();
        session.evaluate(&x_post).unwrap()
    });

    let active = FaultPlan::new(14)
        .fail("linalg.sparse_cholesky.zero_pivot", Trigger::Once)
        .activate();
    let session = MtdSession::builder(cases::case57())
        .config(cfg)
        .build()
        .unwrap();
    let first = session.evaluate(&x_post);
    assert!(
        first.is_err(),
        "injected zero pivot must surface as a typed error, got {first:?}"
    );
    assert_eq!(active.fired("linalg.sparse_cholesky.zero_pivot"), 1);
    // The session is not bricked: the lazy caches held no poisoned
    // state, and the retry reproduces the reference bit for bit.
    let second = session.evaluate(&x_post).expect("session must recover");
    assert_eq!(second.gamma.to_bits(), reference.gamma.to_bits());
    assert_eq!(
        second.smallest_angle.to_bits(),
        reference.smallest_angle.to_bits()
    );
    assert_eq!(second.detection_probs, reference.detection_probs);
}

#[test]
fn eigen_nonconvergence_fault_degrades_to_typed_error_never_panics() {
    let net = cases::case14();
    let reference = unfaulted(|| {
        MtdSession::builder(net.clone())
            .config(gradient_cfg())
            .build()
            .unwrap()
            .select(0.05)
            .unwrap()
    });

    // Always: every principal-angle eigensolve reports
    // NonConvergence. The gradient path sees an infinite objective and
    // hands over to Nelder–Mead, whose evaluations fail the same way —
    // the select must end in a typed error or a genuine selection,
    // never a panic.
    {
        let active = FaultPlan::new(15)
            .fail("linalg.eigen.ql_nonconvergence", Trigger::Always)
            .activate();
        let session = MtdSession::builder(net.clone())
            .config(gradient_cfg())
            .build()
            .unwrap();
        let outcome = session.select(0.05);
        assert!(active.fired("linalg.eigen.ql_nonconvergence") > 0);
        match outcome {
            Ok(sel) => assert!(sel.gamma >= 0.05 - 1e-3),
            // Any *typed* MtdError is within contract — the search may
            // bottom out as unreachable/infeasible or surface the
            // eigensolver's NonConvergence directly. A panic is not.
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }

    // Once: the first eigensolve of the run fails. With a single
    // gradient start that can cost the whole trajectory, so the select
    // may legitimately end in `ThresholdUnreachable` — but it must end
    // *typed*, and once the fault is spent a fresh session reproduces
    // the reference bit for bit under the still-active (exhausted)
    // plan.
    {
        let active = FaultPlan::new(16)
            .fail("linalg.eigen.ql_nonconvergence", Trigger::Once)
            .activate();
        let session = MtdSession::builder(net.clone())
            .config(gradient_cfg())
            .build()
            .unwrap();
        match session.select(0.05) {
            Ok(sel) => assert!(sel.gamma >= 0.05 - 1e-3),
            Err(e) => assert!(!e.to_string().is_empty()),
        }
        assert_eq!(active.fired("linalg.eigen.ql_nonconvergence"), 1);
        let recovered = MtdSession::builder(net.clone())
            .config(gradient_cfg())
            .build()
            .unwrap()
            .select(0.05)
            .expect("spent fault must leave no residue");
        assert_eq!(recovered.gamma.to_bits(), reference.gamma.to_bits());
        assert_eq!(recovered.x_post, reference.x_post);
    }
}

#[test]
fn lbfgs_line_search_fault_keeps_iterate_and_still_selects() {
    let net = cases::case14();
    let active = FaultPlan::new(17)
        .fail("opf.lbfgs.line_search", Trigger::Always)
        .activate();
    let session = MtdSession::builder(net)
        .config(gradient_cfg())
        .build()
        .unwrap();
    // Every Armijo backtrack is cut short: the optimizer keeps its
    // current iterate, the gradient stage returns whatever it reached,
    // and the Nelder–Mead fallback guarantees a real selection.
    let sel = session
        .select(0.05)
        .expect("line-search exhaustion must never abort selection");
    assert!(
        active.fired("opf.lbfgs.line_search") > 0,
        "fault never fired"
    );
    assert!(sel.gamma >= 0.05 - 1e-3);
}

#[test]
fn estimator_poison_fault_recovers_bit_identically() {
    let net = cases::case4();
    let x_pre = net.nominal_reactances();
    let mut x_post = x_pre.clone();
    for l in net.dfacts_branches() {
        x_post[l] *= 1.2;
    }
    let reference = unfaulted(|| {
        let session = MtdSession::builder(cases::case4())
            .config(tiny_cfg())
            .build()
            .unwrap();
        session.evaluate(&x_post).unwrap()
    });

    let active = FaultPlan::new(18)
        .fail("core.session.estimator_poison", Trigger::Once)
        .activate();
    let session = MtdSession::builder(cases::case4())
        .config(tiny_cfg())
        .build()
        .unwrap();
    // The injection poisons the estimator-context mutex for real (a
    // scoped thread panics while holding it — the panic backtrace on
    // stderr is the fault, not a test failure). The session's lock
    // helper must recover the guard instead of cascading the panic.
    let eval = session
        .evaluate(&x_post)
        .expect("poisoned lock must recover");
    assert_eq!(active.fired("core.session.estimator_poison"), 1);
    assert_eq!(eval.gamma.to_bits(), reference.gamma.to_bits());
    assert_eq!(eval.detection_probs, reference.detection_probs);
    // And the session keeps serving after the poison cleared.
    let eval2 = session.evaluate(&x_post).expect("post-poison evaluate");
    assert_eq!(eval2.detection_probs, reference.detection_probs);
}

/// The two chaos suites together must cover every registered point:
/// this file owns the pipeline points, `crates/serve/tests/chaos.rs`
/// owns the `serve.*` points.
#[test]
fn matrix_covers_every_non_serve_registry_point() {
    let covered = [
        "core.session.estimator_poison",
        "linalg.eigen.ql_nonconvergence",
        "linalg.sparse_cholesky.zero_pivot",
        "linalg.sparse_lu.zero_pivot",
        "opf.lbfgs.line_search",
        "opf.lp.warm_repair",
        "opf.lp.warm_resolve",
    ];
    let expected: Vec<&str> = registry::ALL
        .iter()
        .copied()
        .filter(|name| !name.starts_with("serve."))
        .collect();
    assert_eq!(covered.as_slice(), expected.as_slice());
}
