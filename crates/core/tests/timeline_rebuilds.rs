//! Regression guard for matrix-rebuild hoisting.
//!
//! The timeline loop (and the helpers under it) must *reuse* the stale
//! measurement matrix, its QR basis and the post-perturbation matrix
//! instead of reconstructing them per call: the matrices depend only on
//! topology and reactances, not on the hour's loads. These tests pin
//! the exact number of `Network::measurement_matrix` constructions the
//! hoisted entry points are allowed, using the process-global build
//! counters of `gridmtd_powergrid::stats`.
//!
//! Everything lives in ONE `#[test]` in its own integration-test binary:
//! the counters are process-global, so concurrently running tests would
//! otherwise inflate the deltas.

use gridmtd_core::{effectiveness, selection, spa, timeline, MtdConfig};
use gridmtd_powergrid::{cases, stats};
use gridmtd_traces::LoadTrace;

/// Runs `f` and returns the number of measurement-matrix builds it
/// performed.
fn builds_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = stats::measurement_matrix_builds();
    let out = f();
    (stats::measurement_matrix_builds() - before, out)
}

#[test]
fn hoisted_paths_do_not_rebuild_fixed_matrices() {
    let net = cases::case4();
    let cfg = MtdConfig {
        n_attacks: 20,
        n_starts: 1,
        max_evals_per_start: 40,
        ..MtdConfig::default()
    };
    let x_pre = net.nominal_reactances();
    let mut x_post = x_pre.clone();
    for l in net.dfacts_branches() {
        x_post[l] *= 1.3;
    }

    let h_pre = net.measurement_matrix(&x_pre).unwrap();
    let basis = spa::GammaBasis::new(&h_pre).unwrap();
    let opf = gridmtd_opf::solve_opf(&net, &x_pre, &cfg.opf_options()).unwrap();

    // Attack-set construction against a precomputed H: zero rebuilds.
    let (n, attacks) = builds_during(|| {
        effectiveness::build_attack_set_with_h(&net, &h_pre, &x_pre, &opf.dispatch, &cfg).unwrap()
    });
    assert_eq!(n, 0, "build_attack_set_with_h must not rebuild H(x_pre)");

    // Evaluation against a precomputed H(x_pre): exactly one build — the
    // post-perturbation matrix, shared by the angle metric and the
    // detector.
    let (n, _) = builds_during(|| {
        effectiveness::evaluate_with_attacks_h(&net, &h_pre, &x_post, &attacks, &cfg).unwrap()
    });
    assert_eq!(n, 1, "evaluate_with_attacks_h must build H(x_post) once");

    // The detector helper itself: one build (H(x_post)).
    let (n, _) = builds_during(|| effectiveness::post_mtd_detector(&net, &x_post, &cfg).unwrap());
    assert_eq!(n, 1);

    // Selection with a hoisted basis does exactly one build fewer than
    // the self-contained variant (the hoisted H(x_pre)); the remaining
    // builds are the per-candidate objective evaluations, identical on
    // both paths.
    let (n_plain, _) = builds_during(|| selection::select_mtd(&net, &x_pre, 0.05, &cfg).unwrap());
    let (n_hoisted, _) = builds_during(|| {
        selection::select_mtd_with(&net, &x_pre, &h_pre, &basis, 0.05, &cfg).unwrap()
    });
    assert_eq!(
        n_plain,
        n_hoisted + 1,
        "select_mtd_with must save exactly the hoisted H(x_pre) build"
    );

    // Timeline: the per-hour fixed-reactance builds are bounded. Per
    // hour the loop itself builds h_stale, h_now and the audited
    // H(x_post) of the chosen selection — everything else (the
    // Nelder–Mead objective evaluations, which genuinely vary x) is
    // charged to the candidate runs, measured here as the per-candidate
    // hoisted cost from above.
    let trace = LoadTrace::new(vec![400.0, 450.0]);
    let opts = timeline::TimelineOptions {
        gamma_grid: vec![0.03, 0.05],
        ..timeline::TimelineOptions::default()
    };
    let (n_day, outcomes) =
        builds_during(|| timeline::simulate_day(&net, &trace, &opts, &cfg).unwrap());
    assert_eq!(outcomes.len(), 2);
    let candidate_budget = (n_hoisted + 2) * opts.gamma_grid.len() as u64; // selection + evaluation + audit per candidate
    let per_hour_fixed = 3; // h_stale + h_now + final H(x_post)
                            // The optimizer trajectory length varies with the hour's loads and
                            // start point (each hour starts from the previous hour's reactances,
                            // and a failed audit triggers an extra penalty round), so allow 2×
                            // headroom over the single-candidate measurement; an accidental
                            // rebuild inside the per-evaluation objective — one per D-FACTS line
                            // per gradient call — would still blow far past it.
    let bound = outcomes.len() as u64 * (per_hour_fixed + candidate_budget) * 2;
    assert!(
        n_day <= bound,
        "simulate_day built H {n_day} times, hoisting bound is {bound}"
    );
}
