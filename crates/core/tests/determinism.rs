//! End-to-end determinism contract: the scenario engine's output is
//! bit-identical no matter how many worker threads it fans across.
//!
//! This lives in its own integration-test binary because it flips the
//! `GRIDMTD_THREADS` override; keeping every phase inside one `#[test]`
//! keeps the environment mutation race-free.

use gridmtd_core::{effectiveness, selection, tradeoff, MtdConfig};
use gridmtd_powergrid::cases;

#[test]
fn parallel_engine_output_is_bit_identical_to_serial() {
    let net = cases::case14();
    let cfg = MtdConfig {
        n_attacks: 80,
        n_starts: 3,
        max_evals_per_start: 120,
        ..MtdConfig::default()
    };
    let x0 = net.nominal_reactances();

    let run_engine = || {
        let sel = selection::select_mtd(&net, &x0, 0.12, &cfg).unwrap();
        let opf = gridmtd_opf::solve_opf(&net, &x0, &cfg.opf_options()).unwrap();
        let attacks = effectiveness::build_attack_set(&net, &x0, &opf.dispatch, &cfg).unwrap();
        let eval =
            effectiveness::evaluate_with_attacks(&net, &x0, &sel.x_post, &attacks, &cfg).unwrap();
        let curve = tradeoff::tradeoff_sweep(&net, &x0, &[0.05, 0.15], &[0.5, 0.9], &cfg).unwrap();
        (sel, eval, curve)
    };

    std::env::set_var("GRIDMTD_THREADS", "1");
    let (sel_serial, eval_serial, curve_serial) = run_engine();
    std::env::set_var("GRIDMTD_THREADS", "4");
    let (sel_par, eval_par, curve_par) = run_engine();
    std::env::remove_var("GRIDMTD_THREADS");

    // MtdSelection: the selected reactances, angle and OPF must agree to
    // the bit (PartialEq on f64 fields is exact equality).
    assert_eq!(
        sel_serial, sel_par,
        "MtdSelection must not depend on fan-out"
    );
    assert_eq!(
        eval_serial, eval_par,
        "attack scoring must not depend on fan-out"
    );
    assert_eq!(
        curve_serial, curve_par,
        "tradeoff sweep must not depend on fan-out"
    );
}
