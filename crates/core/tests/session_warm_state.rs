//! Regression guards for the session's warm-state ownership.
//!
//! An [`MtdSession`] owns every per-topology cache of the pipeline, so
//! repeated `select()` / `evaluate()` calls on an unchanged topology
//! must never redo the one-time work:
//!
//! * no `GammaBasis` rebuild (the QR of `H(x_pre)`) — pinned with the
//!   `gridmtd_core::spa::gamma_basis_builds` counter;
//! * no sparse power-flow symbolic re-analysis — pinned with
//!   `gridmtd_powergrid::stats::pf_symbolic_analyses`;
//! * no gain-matrix (`HᵀWH`) symbolic re-analysis in detector builds —
//!   pinned with `gridmtd_estimation::gain_symbolic_analyses`.
//!
//! And session-routed outputs must be **bit-identical** to the
//! historical free-function pipeline, on dense paper-scale cases and on
//! the sparse scaling cases alike (the scenario goldens pin the same
//! property end to end at the artifact level).
//!
//! Everything lives in ONE `#[test]` in its own integration-test
//! binary: the counters are process-global, so concurrently running
//! tests would otherwise inflate the deltas (the pattern of
//! `timeline_rebuilds.rs`).

use gridmtd_core::{effectiveness, selection, spa, MtdConfig, MtdSession};
use gridmtd_estimation::gain_symbolic_analyses;
use gridmtd_powergrid::{cases, stats};

fn tiny_cfg() -> MtdConfig {
    MtdConfig {
        n_attacks: 20,
        n_starts: 1,
        max_evals_per_start: 40,
        ..MtdConfig::default()
    }
}

#[test]
fn session_reuses_warm_state_and_matches_free_functions() {
    // ------------------------------------------------------------------
    // case4 (dense backends): GammaBasis ownership + bit-identity of
    // selection.
    // ------------------------------------------------------------------
    let net = cases::case4();
    let cfg = tiny_cfg();
    let session = MtdSession::builder(net.clone())
        .config(cfg.clone())
        .build()
        .unwrap();

    let sel_warmup = session.select(0.05).unwrap(); // fills h_pre/basis
    let basis_before = spa::gamma_basis_builds();
    let sel_again = session.select(0.05).unwrap();
    let eval = session.evaluate(&sel_again.x_post).unwrap();
    let eval_again = session.evaluate(&sel_again.x_post).unwrap();
    assert_eq!(
        spa::gamma_basis_builds(),
        basis_before,
        "repeated select()/evaluate() must not rebuild the GammaBasis"
    );
    assert_eq!(sel_warmup, sel_again, "warm select must be deterministic");
    assert_eq!(eval, eval_again, "warm evaluate must be deterministic");

    // Bit-identity against the self-contained free function (which
    // rebuilds H + basis itself).
    let x_pre = session.x_pre().to_vec();
    let free = selection::select_mtd(&net, &x_pre, 0.05, &cfg).unwrap();
    assert_eq!(
        free, sel_again,
        "session select must be bit-identical to the free function"
    );
    assert!(
        spa::gamma_basis_builds() > basis_before,
        "the free function pays the basis rebuild the session avoids"
    );

    // ------------------------------------------------------------------
    // case14 (dense): one-shot evaluation wrapper vs session.
    // ------------------------------------------------------------------
    let net14 = cases::case14();
    let mut x_post14 = net14.nominal_reactances();
    for (k, l) in net14.dfacts_branches().into_iter().enumerate() {
        x_post14[l] *= if k % 2 == 0 { 1.3 } else { 0.7 };
    }
    let free14 =
        effectiveness::evaluate_mtd(&net14, &net14.nominal_reactances(), &x_post14, &cfg).unwrap();
    let session14 = MtdSession::builder(net14.clone())
        .config(cfg.clone())
        .build()
        .unwrap();
    assert_eq!(
        session14.evaluate(&x_post14).unwrap(),
        free14,
        "session evaluate must be bit-identical to evaluate_mtd"
    );

    // ------------------------------------------------------------------
    // case57 (sparse PF ≥ 48 buses, sparse WLS ≥ 40 states): symbolic
    // factorizations run once per topology and never again.
    // ------------------------------------------------------------------
    let net57 = cases::case57();
    let cfg57 = MtdConfig {
        n_attacks: 10,
        n_starts: 1,
        max_evals_per_start: 20,
        ..MtdConfig::default()
    };
    let session57 = MtdSession::builder(net57.clone())
        .config(cfg57.clone())
        .build()
        .unwrap();

    // Warm up every cache class once: baseline (primes the PF
    // prototype), selection, evaluation (primes the gain symbolic).
    session57.baseline().unwrap();
    let sel57 = session57.select(0.0).unwrap();
    session57.evaluate(&sel57.x_post).unwrap();

    let pf_before = stats::pf_symbolic_analyses();
    let gain_before = gain_symbolic_analyses();
    let basis_before = spa::gamma_basis_builds();
    let sel57_again = session57.select(0.0).unwrap();
    let eval57 = session57.evaluate(&sel57_again.x_post).unwrap();
    session57
        .detection_probabilities(&sel57_again.x_post)
        .unwrap();
    assert_eq!(
        stats::pf_symbolic_analyses(),
        pf_before,
        "repeated select()/evaluate() must not re-run the PF symbolic factorization"
    );
    assert_eq!(
        gain_symbolic_analyses(),
        gain_before,
        "repeated evaluate()/detection must not re-analyze the gain pattern"
    );
    assert_eq!(spa::gamma_basis_builds(), basis_before);
    assert_eq!(sel57, sel57_again);

    // Sparse-path bit-identity: the primed-prototype solves must equal
    // the free function's all-fresh contexts to the bit.
    let x57 = session57.x_pre().to_vec();
    let free57 = selection::select_mtd(&net57, &x57, 0.0, &cfg57).unwrap();
    assert_eq!(
        free57, sel57_again,
        "sparse-path session select must be bit-identical to the free function"
    );
    // ...and the free path re-analyzed what the session kept warm.
    assert!(
        stats::pf_symbolic_analyses() > pf_before,
        "the free function pays the symbolic analyses the session avoids"
    );
    let eval57_free = effectiveness::evaluate_with_attacks(
        &net57,
        &x57,
        &sel57_again.x_post,
        session57.attacks().unwrap(),
        &cfg57,
    )
    .unwrap();
    assert_eq!(
        eval57_free, eval57,
        "sparse-path evaluation must be bit-identical to the free function"
    );

    // ------------------------------------------------------------------
    // case118: the largest gated case — evaluation and raw detection
    // probabilities, session vs free, to the bit.
    // ------------------------------------------------------------------
    let net118 = cases::case118();
    let cfg118 = MtdConfig {
        n_attacks: 10,
        ..MtdConfig::default()
    };
    let x118 = net118.nominal_reactances();
    let mut x_post118 = x118.clone();
    for (k, l) in net118.dfacts_branches().into_iter().enumerate() {
        x_post118[l] *= if k % 2 == 0 { 1.2 } else { 0.8 };
    }
    let session118 = MtdSession::builder(net118.clone())
        .config(cfg118.clone())
        .build()
        .unwrap();
    let sess_eval = session118.evaluate(&x_post118).unwrap();

    let opf118 = gridmtd_opf::solve_opf(&net118, &x118, &cfg118.opf_options()).unwrap();
    let attacks118 =
        effectiveness::build_attack_set(&net118, &x118, &opf118.dispatch, &cfg118).unwrap();
    let free_eval =
        effectiveness::evaluate_with_attacks(&net118, &x118, &x_post118, &attacks118, &cfg118)
            .unwrap();
    assert_eq!(
        free_eval, sess_eval,
        "case118 session evaluation must be bit-identical to the free path"
    );
    let free_probs = {
        let bdd = effectiveness::post_mtd_detector(&net118, &x_post118, &cfg118).unwrap();
        effectiveness::detection_probabilities_parallel(&bdd, &attacks118).unwrap()
    };
    let sess_probs = session118.detection_probabilities(&x_post118).unwrap();
    assert_eq!(
        free_probs.iter().map(|p| p.to_bits()).collect::<Vec<u64>>(),
        sess_probs.iter().map(|p| p.to_bits()).collect::<Vec<u64>>(),
        "case118 detection probabilities must agree to the bit"
    );
}
