//! Warm-path regression guard: a warm `MtdSession::select` on the
//! gradient path must not trigger a single new power-flow symbolic
//! analysis — every L-BFGS iteration prices its OPF through a clone of
//! the session's primed `PfContext`, and a clone carries the analysis.
//!
//! Lives in its own one-`#[test]` integration binary because the
//! counters are process-global; concurrently running tests would
//! inflate the delta (same pattern as `timeline_rebuilds.rs`).

use gridmtd_core::{MtdConfig, MtdSession, SelectionMethod};
use gridmtd_powergrid::{cases, stats};

#[test]
fn warm_gradient_select_does_no_new_symbolic_analysis() {
    let cfg = MtdConfig {
        n_attacks: 20,
        n_starts: 2,
        max_evals_per_start: 60,
        selection_method: SelectionMethod::Gradient,
        ..MtdConfig::default()
    };
    let session = MtdSession::builder(cases::case14())
        .config(cfg)
        .build()
        .unwrap();

    // First call warms every lazy cache (pf prototype, gamma basis,
    // baseline OPF).
    let first = session.select(0.2).unwrap();

    let before = stats::pf_symbolic_analyses();
    let second = session.select(0.25).unwrap();
    let after = stats::pf_symbolic_analyses();
    assert_eq!(
        after - before,
        0,
        "warm gradient select must reuse the primed PfContext's symbolic \
         analysis across every L-BFGS iteration"
    );

    // Both selections are real answers, not cache echoes.
    assert!(first.gamma >= 0.2 - 1e-3);
    assert!(second.gamma >= 0.25 - 1e-3);
}
