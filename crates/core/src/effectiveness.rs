//! The MTD effectiveness metric `η'(δ)` of Section V-A.
//!
//! `η'(δ)` is the fraction of stealthy attacks crafted against the
//! pre-perturbation matrix `H` whose detection probability under the
//! post-perturbation BDD exceeds `δ`. The paper estimates it by
//! Monte-Carlo over 1000 random attacks `a = Hc` (Gaussian `c`, scaled to
//! `‖a‖₁/‖z‖₁ ≈ 0.08`) × 1000 noise draws; here each attack's detection
//! probability is computed in closed form (noncentral χ², Appendix B),
//! with an optional Monte-Carlo cross-check used by the ablation
//! experiments.
//!
//! Both the per-attack analytic scoring and the Monte-Carlo cross-check
//! fan out across scoped worker threads
//! ([`gridmtd_opf::parallel`]); the Monte-Carlo draws each trial's noise
//! from a stream seeded by the trial index, so parallel results are
//! bit-identical to serial.

use gridmtd_attack::{AttackerKnowledge, FdiAttack};
use gridmtd_estimation::{BadDataDetector, EstimatorContext, NoiseModel, StateEstimator};
use gridmtd_linalg::Matrix;
use gridmtd_powergrid::{dcpf, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{spa, MtdConfig, MtdError};

/// Result of evaluating one MTD perturbation against an attack ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdEvaluation {
    /// Operational subspace angle `γ(H, H')` (largest principal angle).
    pub gamma: f64,
    /// Literal smallest principal angle (≈0 for partial-line MTD).
    pub smallest_angle: f64,
    /// Per-attack analytic detection probabilities.
    pub detection_probs: Vec<f64>,
}

impl MtdEvaluation {
    /// The effectiveness `η'(δ)`: fraction of attacks with detection
    /// probability at least `δ`.
    pub fn effectiveness(&self, delta: f64) -> f64 {
        if self.detection_probs.is_empty() {
            return 0.0;
        }
        let hits = self.detection_probs.iter().filter(|&&p| p >= delta).count();
        hits as f64 / self.detection_probs.len() as f64
    }

    /// Mean detection probability over the ensemble.
    pub fn mean_detection(&self) -> f64 {
        gridmtd_stats::empirical::mean(&self.detection_probs)
    }
}

/// Index of the attack whose detection probability is closest to 0.5 —
/// the most informative attack for Monte-Carlo cross-checks (at the
/// midpoint the analytic-vs-sampled comparison has maximal variance to
/// detect).
///
/// Ranking uses [`f64::total_cmp`], and a NaN probability is surfaced as
/// [`MtdError::NanDetectionProbability`] instead of panicking the whole
/// evaluation.
///
/// # Errors
///
/// * [`MtdError::NanDetectionProbability`] if any probability is NaN.
///
/// # Panics
///
/// Panics if `detection_probs` is empty.
pub fn midpoint_attack_index(detection_probs: &[f64]) -> Result<usize, MtdError> {
    assert!(
        !detection_probs.is_empty(),
        "need at least one detection probability"
    );
    if let Some(index) = detection_probs.iter().position(|p| p.is_nan()) {
        return Err(MtdError::NanDetectionProbability { index });
    }
    Ok(detection_probs
        .iter()
        .enumerate()
        .min_by(|a, b| (a.1 - 0.5).abs().total_cmp(&(b.1 - 0.5).abs()))
        .map(|(i, _)| i)
        .expect("non-empty slice"))
}

/// Builds the detector a grid operator would run after switching to the
/// post-MTD reactances `x_post`.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn post_mtd_detector(
    net: &Network,
    x_post: &[f64],
    cfg: &MtdConfig,
) -> Result<BadDataDetector, MtdError> {
    detector_from_h(net.measurement_matrix(x_post)?, cfg)
}

/// Builds the post-MTD detector from an already-constructed measurement
/// matrix (the hoisted path for loops that hold `H'` anyway).
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn detector_from_h(h_post: Matrix, cfg: &MtdConfig) -> Result<BadDataDetector, MtdError> {
    detector_from_h_ctx(h_post, cfg, &mut EstimatorContext::new())
}

/// [`detector_from_h`] with a reusable [`EstimatorContext`]: on the
/// sparse estimator backend the gain matrix's symbolic factorization is
/// shared across every detector built for the same topology (the
/// pattern of `HᵀWH` never changes under reactance perturbations), so
/// only the numeric phase runs per candidate. Bit-identical to the
/// fresh-context path.
pub(crate) fn detector_from_h_ctx(
    h_post: Matrix,
    cfg: &MtdConfig,
    est_ctx: &mut EstimatorContext,
) -> Result<BadDataDetector, MtdError> {
    let noise = NoiseModel::uniform(h_post.rows(), cfg.noise_sigma_mw);
    let est = StateEstimator::with_context(h_post, &noise, est_ctx)?;
    Ok(BadDataDetector::new(est, cfg.alpha))
}

/// Builds the paper's attack ensemble: the attacker knows the
/// pre-perturbation `H(x_pre)` and scales attacks against the
/// measurements it eavesdropped at the pre-perturbation operating point
/// (dispatch `dispatch_pre`).
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn build_attack_set(
    net: &Network,
    x_pre: &[f64],
    dispatch_pre: &[f64],
    cfg: &MtdConfig,
) -> Result<Vec<FdiAttack>, MtdError> {
    let h_pre = net.measurement_matrix(x_pre)?;
    build_attack_set_with_h(net, &h_pre, x_pre, dispatch_pre, cfg)
}

/// [`build_attack_set`] with a precomputed `H(x_pre)` — the timeline
/// loop already holds the stale matrix and must not rebuild it each
/// hour.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn build_attack_set_with_h(
    net: &Network,
    h_pre: &Matrix,
    x_pre: &[f64],
    dispatch_pre: &[f64],
    cfg: &MtdConfig,
) -> Result<Vec<FdiAttack>, MtdError> {
    build_attack_set_impl(
        net,
        h_pre,
        x_pre,
        dispatch_pre,
        cfg,
        &dcpf::PfContext::new(),
    )
}

/// [`build_attack_set_with_h`] seeded with a power-flow context
/// prototype for the eavesdropped-measurement solve (the session's
/// shared symbolic factorization; a clone of an unprimed prototype is a
/// fresh context, and primed solves are pinned bit-identical to cold).
pub(crate) fn build_attack_set_impl(
    net: &Network,
    h_pre: &Matrix,
    x_pre: &[f64],
    dispatch_pre: &[f64],
    cfg: &MtdConfig,
    pf_proto: &dcpf::PfContext,
) -> Result<Vec<FdiAttack>, MtdError> {
    let pf = dcpf::solve_dispatch_with(net, x_pre, dispatch_pre, &mut pf_proto.clone())?;
    let z_pre = pf.measurement_vector();
    let attacker = AttackerKnowledge::learned(h_pre.clone(), 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    Ok(attacker.craft_random_set(&z_pre, cfg.attack_ratio, cfg.n_attacks, &mut rng)?)
}

/// Attacks per multi-RHS scoring batch: small enough that every worker
/// gets work on paper-scale ensembles, large enough to amortize the
/// triangular-solve pass. Fixed (not thread-count-derived) so the batch
/// boundaries — and therefore the bits — never depend on the machine.
const DETECTION_BATCH: usize = 32;

/// Scores every attack in the ensemble against the detector: attacks
/// are chunked into fixed-size batches, each batch fans out across the
/// worker threads and is scored through one multi-RHS triangular-solve
/// pass. Per-attack arithmetic is independent of the batching, so the
/// result is bit-identical to the serial per-attack loop.
pub fn detection_probabilities_parallel(
    bdd: &BadDataDetector,
    attacks: &[FdiAttack],
) -> Result<Vec<f64>, MtdError> {
    let batches: Vec<&[FdiAttack]> = attacks.chunks(DETECTION_BATCH).collect();
    let scored = gridmtd_opf::parallel::par_map(&batches, |_, batch| {
        gridmtd_attack::detection_probabilities(bdd, batch)
    });
    let mut out = Vec::with_capacity(attacks.len());
    for batch in scored {
        out.extend(batch?);
    }
    Ok(out)
}

/// Evaluates an MTD perturbation `x_pre → x_post` against a prebuilt
/// attack ensemble (fast path for threshold sweeps that reuse the
/// ensemble).
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn evaluate_with_attacks(
    net: &Network,
    x_pre: &[f64],
    x_post: &[f64],
    attacks: &[FdiAttack],
    cfg: &MtdConfig,
) -> Result<MtdEvaluation, MtdError> {
    let h_pre = net.measurement_matrix(x_pre)?;
    evaluate_with_attacks_h(net, &h_pre, x_post, attacks, cfg)
}

/// [`evaluate_with_attacks`] with a precomputed `H(x_pre)`; builds the
/// post-perturbation matrix exactly once (angle metric and detector
/// share it).
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn evaluate_with_attacks_h(
    net: &Network,
    h_pre: &Matrix,
    x_post: &[f64],
    attacks: &[FdiAttack],
    cfg: &MtdConfig,
) -> Result<MtdEvaluation, MtdError> {
    let h_post = net.measurement_matrix(x_post)?;
    let gamma = spa::gamma(h_pre, &h_post)?;
    let smallest_angle = spa::smallest_angle(h_pre, &h_post)?;
    let bdd = detector_from_h(h_post, cfg)?;
    let detection_probs = detection_probabilities_parallel(&bdd, attacks)?;
    Ok(MtdEvaluation {
        gamma,
        smallest_angle,
        detection_probs,
    })
}

/// One-shot evaluation: builds the attack ensemble from the
/// pre-perturbation OPF dispatch, then scores the perturbation.
///
/// # Errors
///
/// Propagates OPF and model failures.
pub fn evaluate_mtd(
    net: &Network,
    x_pre: &[f64],
    x_post: &[f64],
    cfg: &MtdConfig,
) -> Result<MtdEvaluation, MtdError> {
    // Thin compatibility wrapper over the session (which caches the
    // pre-perturbation OPF and the ensemble it scales); bit-identical
    // to the historical solve-build-evaluate sequence.
    crate::MtdSession::builder(net.clone())
        .config(cfg.clone())
        .x_pre(x_pre.to_vec())
        .build()?
        .evaluate(x_post)
}

/// Monte-Carlo cross-check of the analytic detection probability for one
/// attack (the paper's 1000-noise-draw procedure): used by the ablation
/// experiment to validate the closed form.
///
/// Trials fan out across worker threads; trial `t` draws its noise from
/// a dedicated stream derived by [`crate::seedstream::mix`]`(base, t)`,
/// so the alarm count (and hence the returned probability) is identical
/// for any worker count and independent across nearby seeds and trials.
///
/// # Errors
///
/// Propagates model failures.
pub fn monte_carlo_detection(
    net: &Network,
    x_post: &[f64],
    dispatch_post: &[f64],
    attack: &FdiAttack,
    trials: usize,
    cfg: &MtdConfig,
) -> Result<f64, MtdError> {
    let bdd = post_mtd_detector(net, x_post, cfg)?;
    let pf = dcpf::solve_dispatch(net, x_post, dispatch_post)?;
    let z_true = pf.measurement_vector();
    let noise = NoiseModel::uniform(z_true.len(), cfg.noise_sigma_mw);
    let base = crate::seedstream::domain(cfg.seed, 0x5eed);
    let trial_ids: Vec<u64> = (0..trials as u64).collect();
    let alarms = gridmtd_opf::parallel::par_map(&trial_ids, |_, &t| {
        let mut rng = StdRng::seed_from_u64(crate::seedstream::mix(base, t));
        gridmtd_attack::detection::monte_carlo_trial(&bdd, &z_true, attack, &noise, &mut rng)
            .map(usize::from)
    })
    .into_iter()
    .sum::<Result<usize, _>>()?;
    Ok(alarms as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;

    fn mixed_perturbation(net: &Network, eta: f64) -> (Vec<f64>, Vec<f64>) {
        let x_pre = net.nominal_reactances();
        let mut x_post = x_pre.clone();
        for (k, l) in net.dfacts_branches().into_iter().enumerate() {
            x_post[l] *= if k % 2 == 0 { 1.0 + eta } else { 1.0 - eta };
        }
        (x_pre, x_post)
    }

    #[test]
    fn identity_perturbation_has_alpha_level_detection() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x = net.nominal_reactances();
        let eval = evaluate_mtd(&net, &x, &x, &cfg).unwrap();
        assert!(eval.gamma < 1e-6);
        // Every attack stays stealthy: PD = alpha.
        for &pd in &eval.detection_probs {
            assert!((pd - cfg.alpha).abs() < 1e-6);
        }
        assert_eq!(eval.effectiveness(0.5), 0.0);
    }

    #[test]
    fn effectiveness_increases_with_gamma() {
        let net = cases::case14();
        // σ chosen so the strongest fixed perturbation detects most
        // attacks (the paper-scale calibration lives in the bench
        // binaries).
        let cfg = MtdConfig {
            noise_sigma_mw: 0.15,
            ..MtdConfig::fast_test()
        };
        let mut prev_eta = -1.0;
        let mut prev_gamma = -1.0;
        for eta in [0.15, 0.3, 0.5] {
            let (x_pre, x_post) = mixed_perturbation(&net, eta);
            let eval = evaluate_mtd(&net, &x_pre, &x_post, &cfg).unwrap();
            assert!(eval.gamma > prev_gamma);
            let e = eval.effectiveness(0.5);
            assert!(
                e >= prev_eta - 0.05,
                "effectiveness should broadly increase: {e} after {prev_eta}"
            );
            prev_eta = e;
            prev_gamma = eval.gamma;
        }
        assert!(
            prev_eta > 0.3,
            "strong MTD should catch attacks: {prev_eta}"
        );
    }

    #[test]
    fn effectiveness_is_monotone_in_delta() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let (x_pre, x_post) = mixed_perturbation(&net, 0.4);
        let eval = evaluate_mtd(&net, &x_pre, &x_post, &cfg).unwrap();
        let mut prev = 1.0;
        for delta in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let e = eval.effectiveness(delta);
            assert!(e <= prev + 1e-12, "η must fall as δ rises");
            prev = e;
        }
    }

    #[test]
    fn analytic_matches_monte_carlo_on_one_attack() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let (x_pre, x_post) = mixed_perturbation(&net, 0.35);
        let opf_pre = gridmtd_opf::solve_opf(&net, &x_pre, &cfg.opf_options()).unwrap();
        let attacks = build_attack_set(&net, &x_pre, &opf_pre.dispatch, &cfg).unwrap();
        let bdd = post_mtd_detector(&net, &x_post, &cfg).unwrap();
        // pick an attack with mid-range PD so the comparison is informative
        let probs = gridmtd_attack::detection_probabilities(&bdd, &attacks).unwrap();
        let idx = midpoint_attack_index(&probs).unwrap();
        let opf_post = gridmtd_opf::solve_opf(&net, &x_post, &cfg.opf_options()).unwrap();
        let mc =
            monte_carlo_detection(&net, &x_post, &opf_post.dispatch, &attacks[idx], 2500, &cfg)
                .unwrap();
        assert!(
            (mc - probs[idx]).abs() < 0.05,
            "MC {mc} vs analytic {}",
            probs[idx]
        );
    }

    #[test]
    fn attack_set_is_deterministic_per_seed() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x = net.nominal_reactances();
        let opf = gridmtd_opf::solve_opf(&net, &x, &cfg.opf_options()).unwrap();
        let a = build_attack_set(&net, &x, &opf.dispatch, &cfg).unwrap();
        let b = build_attack_set(&net, &x, &opf.dispatch, &cfg).unwrap();
        assert_eq!(a, b);
        let cfg2 = MtdConfig {
            seed: 99,
            ..MtdConfig::fast_test()
        };
        let c = build_attack_set(&net, &x, &opf.dispatch, &cfg2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn midpoint_attack_index_picks_closest_to_half() {
        assert_eq!(midpoint_attack_index(&[0.1, 0.48, 0.9, 0.52]).unwrap(), 1);
        assert_eq!(midpoint_attack_index(&[0.99]).unwrap(), 0);
    }

    #[test]
    fn midpoint_attack_index_surfaces_nan_as_error() {
        // Regression: a NaN probability used to panic the whole
        // evaluation through `partial_cmp(..).unwrap()`.
        let err = midpoint_attack_index(&[0.3, f64::NAN, 0.6]).unwrap_err();
        assert_eq!(err, crate::MtdError::NanDetectionProbability { index: 1 });
        // Infinities are ranked (total_cmp), not fatal.
        assert_eq!(
            midpoint_attack_index(&[f64::INFINITY, 0.4]).unwrap(),
            1,
            "finite value is closer to 0.5 than +inf"
        );
    }

    #[test]
    fn monte_carlo_is_deterministic_across_thread_counts() {
        // The per-trial seed streams make the estimate independent of
        // the fan-out; exercised here via the env-independent public
        // API (thread count is read from the machine, but the alarm
        // count is a pure function of the trial seeds).
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let (x_pre, x_post) = mixed_perturbation(&net, 0.35);
        let opf_pre = gridmtd_opf::solve_opf(&net, &x_pre, &cfg.opf_options()).unwrap();
        let attacks = build_attack_set(&net, &x_pre, &opf_pre.dispatch, &cfg).unwrap();
        let opf_post = gridmtd_opf::solve_opf(&net, &x_post, &cfg.opf_options()).unwrap();
        let a = monte_carlo_detection(&net, &x_post, &opf_post.dispatch, &attacks[0], 400, &cfg)
            .unwrap();
        let b = monte_carlo_detection(&net, &x_post, &opf_post.dispatch, &attacks[0], 400, &cfg)
            .unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn empty_evaluation_effectiveness_is_zero() {
        let eval = MtdEvaluation {
            gamma: 0.2,
            smallest_angle: 0.0,
            detection_probs: vec![],
        };
        assert_eq!(eval.effectiveness(0.5), 0.0);
        assert_eq!(eval.mean_detection(), 0.0);
    }
}
