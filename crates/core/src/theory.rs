//! Executable forms of Proposition 1 and Theorem 1.
//!
//! * **Proposition 1**: an attack `a = H c` is undetectable under MTD
//!   `H'` iff `rank(H') = rank([H' a])`, i.e. `a ∈ Col(H')`.
//! * **Theorem 1**: if `Col(H')` is the orthogonal complement of
//!   `Col(H)` (under the weighting `W`), no nonzero attack of the form
//!   `a = Hc` is undetectable, and each attack's detection probability is
//!   maximal among all MTDs.
//!
//! For physically realizable reactance perturbations the orthogonality
//! condition is generally unreachable (Section V-C) — these predicates
//! exist so that tests and the ablation experiments can check the theory
//! on synthetic matrices where it *is* reachable, and quantify how far
//! realizable MTDs fall short.

use gridmtd_linalg::{vector, Matrix, Svd};

use crate::MtdError;

/// Numerical tolerance for subspace-membership decisions, relative to the
/// attack magnitude.
const MEMBERSHIP_TOL: f64 = 1e-8;

/// Proposition 1: is the attack vector undetectable under MTD `h_post`?
///
/// Implemented as a rank test on the augmented matrix
/// `[H' a]` (the paper's formulation): the attack stays stealthy iff
/// appending it does not increase the rank, i.e. `a ∈ Col(H')`.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn is_undetectable(h_post: &Matrix, attack: &[f64]) -> Result<bool, MtdError> {
    if vector::norm2(attack) == 0.0 {
        return Ok(true); // the zero attack never changes the residual
    }
    let a_col = Matrix::column(attack);
    let augmented = h_post.hstack(&a_col).map_err(MtdError::from)?;
    let rank_h = Svd::compute(h_post).map_err(MtdError::from)?.rank();
    let rank_aug = Svd::compute(&augmented).map_err(MtdError::from)?.rank();
    Ok(rank_aug == rank_h)
}

/// Residual magnitude `‖(I − P')a‖₂` of an attack under MTD `h_post`
/// (the noiseless BDD residual of the paper's Table I).
///
/// # Errors
///
/// Propagates projector failures.
pub fn noiseless_residual(h_post: &Matrix, attack: &[f64]) -> Result<f64, MtdError> {
    let p = gridmtd_linalg::subspace::complement_projector(h_post)?;
    let r = p.matvec(attack)?;
    Ok(vector::norm2(&r))
}

/// Theorem 1 premise: does `Col(h_post)` lie in the `W`-orthogonal
/// complement of `Col(h_pre)`, i.e. `H'ᵀ W H = 0`?
///
/// With uniform weights this is plain column-space orthogonality.
///
/// # Errors
///
/// Propagates shape mismatches.
pub fn orthogonality_condition_holds(
    h_pre: &Matrix,
    h_post: &Matrix,
    weights: &[f64],
) -> Result<bool, MtdError> {
    if weights.len() != h_pre.rows() || h_pre.rows() != h_post.rows() {
        return Err(MtdError::Numerical(
            gridmtd_linalg::LinalgError::ShapeMismatch {
                op: "orthogonality_condition",
                lhs: h_pre.shape(),
                rhs: (weights.len(), h_post.rows()),
            },
        ));
    }
    // Compute H'ᵀ W H and compare to zero, relative to the factor norms.
    let mut wh = h_pre.clone();
    for (i, &w) in weights.iter().enumerate() {
        for v in wh.row_mut(i) {
            *v *= w;
        }
    }
    let cross = h_post.transpose().matmul(&wh).map_err(MtdError::from)?;
    let scale = h_post.frobenius_norm() * wh.frobenius_norm();
    Ok(cross.max_abs() <= MEMBERSHIP_TOL * scale.max(f64::MIN_POSITIVE))
}

/// Theorem 1 consequence check: under an orthogonal MTD, every nonzero
/// attack `a = H c` has residual equal to its own magnitude (`r'_a = a`),
/// the maximum possible.
///
/// Returns the worst ratio `‖r'_a‖/‖a‖` over the columns of `h_pre`
/// (1.0 means the theorem's bound is met exactly).
///
/// # Errors
///
/// Propagates projector failures.
pub fn min_residual_ratio_over_columns(h_pre: &Matrix, h_post: &Matrix) -> Result<f64, MtdError> {
    let p = gridmtd_linalg::subspace::complement_projector(h_post)?;
    let mut worst: f64 = 1.0;
    for j in 0..h_pre.cols() {
        let a = h_pre.col(j);
        let norm = vector::norm2(&a);
        if norm == 0.0 {
            continue;
        }
        let r = p.matvec(&a)?;
        worst = worst.min(vector::norm2(&r) / norm);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;

    #[test]
    fn stealthy_attack_is_undetectable_without_mtd() {
        let net = cases::case4();
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        let a = h.matvec(&[0.1, -0.2, 0.3]).unwrap();
        assert!(is_undetectable(&h, &a).unwrap());
    }

    #[test]
    fn zero_attack_is_trivially_undetectable() {
        let net = cases::case4();
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        assert!(is_undetectable(&h, &vec![0.0; h.rows()]).unwrap());
    }

    #[test]
    fn table1_detectability_pattern() {
        // The paper's Table I: attack 1 (c = [0,1,1,1]) is caught by MTDs
        // on lines 1 and 2 but NOT lines 3, 4; attack 2 (c = [0,0,0,1])
        // the reverse. With bus 1 as slack, c maps to [1,1,1] and
        // [0,0,1].
        let net = cases::case4();
        let x0 = net.nominal_reactances();
        let h = net.measurement_matrix(&x0).unwrap();
        let attack1 = h.matvec(&[1.0, 1.0, 1.0]).unwrap();
        let attack2 = h.matvec(&[0.0, 0.0, 1.0]).unwrap();
        let expected_detect_1 = [true, true, false, false];
        let expected_detect_2 = [false, false, true, true];
        for l in 0..4 {
            let mut x = x0.clone();
            x[l] *= 1.2; // η = 0.2 like the paper
            let h_post = net.measurement_matrix(&x).unwrap();
            let undetectable1 = is_undetectable(&h_post, &attack1).unwrap();
            let undetectable2 = is_undetectable(&h_post, &attack2).unwrap();
            assert_eq!(
                !undetectable1,
                expected_detect_1[l],
                "attack 1 vs MTD on line {}",
                l + 1
            );
            assert_eq!(
                !undetectable2,
                expected_detect_2[l],
                "attack 2 vs MTD on line {}",
                l + 1
            );
        }
    }

    #[test]
    fn noiseless_residual_zero_iff_undetectable() {
        let net = cases::case4();
        let x0 = net.nominal_reactances();
        let h = net.measurement_matrix(&x0).unwrap();
        let attack = h.matvec(&[0.0, 0.0, 1.0]).unwrap();
        let mut x = x0.clone();
        x[2] *= 1.2; // MTD on line 3 detects attack 2
        let h_post = net.measurement_matrix(&x).unwrap();
        let r = noiseless_residual(&h_post, &attack).unwrap();
        assert!(r > 1e-3, "expected nonzero residual, got {r}");
        assert!(!is_undetectable(&h_post, &attack).unwrap());
        // And without MTD the residual vanishes.
        assert!(noiseless_residual(&h, &attack).unwrap() < 1e-8);
    }

    #[test]
    fn orthogonality_condition_on_synthetic_matrices() {
        // Construct H and an exactly orthogonal H' in R^6 with 2 columns
        // each; Theorem 1 then guarantees maximal residuals.
        let h = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
        ])
        .unwrap();
        let h_orth = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[0.0, 0.0],
            &[0.0, 0.0],
        ])
        .unwrap();
        let w = vec![1.0; 6];
        assert!(orthogonality_condition_holds(&h, &h_orth, &w).unwrap());
        assert!(!orthogonality_condition_holds(&h, &h, &w).unwrap());
        // Every column of H keeps its full magnitude in the residual.
        let ratio = min_residual_ratio_over_columns(&h, &h_orth).unwrap();
        assert!((ratio - 1.0).abs() < 1e-12);
        // No nonzero attack from Col(H) is undetectable under H'.
        let a = h.matvec(&[0.3, -0.7]).unwrap();
        assert!(!is_undetectable(&h_orth, &a).unwrap());
    }

    #[test]
    fn realizable_mtd_falls_short_of_orthogonality() {
        // Section V-C's motivation: D-FACTS perturbations cannot reach the
        // orthogonal complement.
        let net = cases::case14();
        let x0 = net.nominal_reactances();
        let h = net.measurement_matrix(&x0).unwrap();
        let mut x = x0.clone();
        for l in net.dfacts_branches() {
            x[l] *= 1.5;
        }
        let h_post = net.measurement_matrix(&x).unwrap();
        let w = vec![1.0; h.rows()];
        assert!(!orthogonality_condition_holds(&h, &h_post, &w).unwrap());
        // Shared directions exist => some column ratio far below 1.
        let ratio = min_residual_ratio_over_columns(&h, &h_post).unwrap();
        assert!(ratio < 0.5, "ratio {ratio}");
    }

    #[test]
    fn mismatched_weights_length_is_error() {
        let net = cases::case4();
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        assert!(orthogonality_condition_holds(&h, &h, &[1.0]).is_err());
    }
}
