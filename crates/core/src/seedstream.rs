//! Collision-resistant derivation of per-trial RNG stream seeds.
//!
//! The Monte-Carlo loops fan each trial onto its own `StdRng` stream so
//! results are bit-identical for any worker count. Historically the
//! stream seed was derived as `base ^ t`, which is a bijection in `t`
//! for one base but **collides across nearby bases**: with
//! `base = seed + K`, trial `t` of seed `s` and trial `t ^ 1` of seed
//! `s ^ 1` share a stream (e.g. `(K+1) ^ 1 == (K+0) ^ 0` whenever the
//! low bits line up). A batch sweeping seeds `1, 2, 3, …` — exactly
//! what the scenario engine and the serve layer submit — therefore
//! reused trial streams between variants, silently correlating studies
//! that are reported as independent.
//!
//! [`mix`] instead walks the splitmix64 sequence: the trial index
//! strides the state by the golden-gamma constant (the same constant
//! `selection`'s low-discrepancy corner sampler uses) and the result is
//! avalanched through the splitmix64 finalizer, so every `(base, t)`
//! pair lands on an effectively independent stream.

/// The splitmix64 golden-gamma increment (2⁶⁴ / φ, odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the RNG stream seed for trial `t` of stream family `base`.
///
/// This is splitmix64 output `t` of the generator seeded with `base`:
/// state `base + (t + 1)·γ` pushed through the finalizer. Unlike the
/// historical `base ^ t`, nearby bases (consecutive experiment seeds)
/// and nearby trials never share streams in any realistic sweep.
#[must_use]
pub fn mix(base: u64, t: u64) -> u64 {
    let mut z = base.wrapping_add(t.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Offsets an experiment seed into a named stream family, one per
/// subsystem (`0xfeed` keyspace studies, `0x5eed` effectiveness trials,
/// `0xa110` allocation learning, …). The offset alone is **not**
/// collision-resistant — two families whose tags differ by the gap
/// between two experiment seeds overlap — which is exactly why every
/// per-trial seed must still go through [`mix`]. Centralising the
/// arithmetic here keeps that pairing in one audited place; the
/// workspace lint flags raw seed arithmetic everywhere else.
#[must_use]
pub fn domain(seed: u64, tag: u64) -> u64 {
    seed.wrapping_add(tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn nearby_bases_and_trials_never_share_streams() {
        // The regression the XOR scheme failed: every (base, trial)
        // pair in a realistic sweep window must map to a distinct
        // stream. With `base ^ t`, this set collapses badly (e.g.
        // base 8 trial 1 == base 9 trial 0).
        let mut seen = HashSet::new();
        for base in 0..64u64 {
            for t in 0..256u64 {
                assert!(
                    seen.insert(mix(base, t)),
                    "stream collision at base {base}, trial {t}"
                );
            }
        }
    }

    #[test]
    fn xor_scheme_really_did_collide() {
        // Documents why this module exists: the old derivation shares
        // streams between adjacent seeds.
        let old = |base: u64, t: u64| base ^ t;
        assert_eq!(old(8, 1), old(9, 0));
        assert_ne!(mix(8, 1), mix(9, 0));
    }

    #[test]
    fn domain_is_the_additive_offset() {
        // Callers that migrated from inline `seed.wrapping_add(TAG)`
        // must keep their exact historical stream families.
        assert_eq!(domain(10, 0xfeed), 10 + 0xfeed);
        assert_eq!(domain(u64::MAX, 2), 1);
    }

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(42, 7), mix(42, 7));
        assert_ne!(mix(42, 7), mix(42, 8));
        assert_ne!(mix(42, 7), mix(43, 7));
    }
}
