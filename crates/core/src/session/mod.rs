//! The unified MTD service layer: one stateful handle per grid.
//!
//! The MTD operation the paper describes — and the continuous
//! decide–perturb–evaluate loop the MTD survey literature frames it as —
//! runs against a *fixed grid topology*: the operator re-selects
//! perturbations, re-scores attack ensembles and re-dispatches hour
//! after hour while the network graph never changes. Everything
//! expensive in that loop is therefore reusable state:
//!
//! * the pre-perturbation measurement matrix `H(x_pre)` and its QR
//!   basis ([`spa::GammaBasis`]) behind every subspace-angle query;
//! * the sparse power-flow symbolic factorization
//!   ([`PfContext`], topology-keyed) behind every
//!   DC-OPF and dispatch solve;
//! * the gain-matrix symbolic factorization
//!   ([`gridmtd_estimation::EstimatorContext`]) behind every bad-data
//!   detector build;
//! * the pre-perturbation OPF, the attack ensemble crafted from it, the
//!   no-MTD baseline and the achievable-γ ceiling.
//!
//! Historically each of those was hoisted ad hoc through `_with`
//! function variants that every caller had to hand-thread in the right
//! order. [`MtdSession`] owns them all: build one from a
//! [`Network`] + [`MtdConfig`] (validated up front), then drive the
//! whole pipeline through methods — [`MtdSession::baseline`],
//! [`MtdSession::select`], [`MtdSession::evaluate`],
//! [`MtdSession::detection_probabilities`],
//! [`MtdSession::tradeoff_sweep`], [`MtdSession::keyspace_study`],
//! [`MtdSession::learning_study`] and the hourly
//! [`MtdSession::begin_day`] / [`MtdSession::step_hour`] loop. The
//! [`batch`] module adds a typed request layer on top so sweep drivers
//! (the scenario engine, the `gridmtd` CLI, a future server) fan
//! heterogeneous workloads through one entry point.
//!
//! # Determinism
//!
//! Every cache the session owns is either a pure function of its inputs
//! (matrices, bases, ensembles) or pinned bit-identical to the cold path
//! by the workspace's regression tests (primed power-flow contexts,
//! shared symbolic factorizations). Session-routed results are therefore
//! **byte-identical** to the historical free-function pipeline — the
//! scenario goldens and `crates/core/tests/session_warm_state.rs` pin
//! this.
//!
//! # Example
//!
//! ```
//! use gridmtd_core::{MtdConfig, MtdSession};
//! use gridmtd_powergrid::cases;
//!
//! # fn main() -> Result<(), gridmtd_core::MtdError> {
//! let cfg = MtdConfig { n_attacks: 60, ..MtdConfig::fast_test() };
//! let session = MtdSession::builder(cases::case14()).config(cfg).build()?;
//! let sel = session.select(0.05)?;
//! let eval = session.evaluate(&sel.x_post)?;
//! assert!(eval.gamma >= 0.05 - 1e-3);
//! # Ok(())
//! # }
//! ```

pub mod batch;

use std::sync::{Arc, Mutex, OnceLock};

use gridmtd_attack::FdiAttack;
use gridmtd_estimation::{BadDataDetector, EstimatorContext};
use gridmtd_linalg::Matrix;
use gridmtd_opf::{parallel, solve_opf_with, OpfContext, OpfSolution};
use gridmtd_powergrid::{dcpf::PfContext, Network};
use gridmtd_traces::LoadTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::timeline::HourOutcome;
use crate::tradeoff::{eta_grid, RandomTrial, TradeoffCurve, TradeoffPoint};
use crate::{
    cost, effectiveness, learning, selection, spa, LearningOptions, LearningPoint, MtdConfig,
    MtdError, MtdEvaluation, MtdSelection, TimelineOptions,
};

/// The no-MTD operating point: problem (1)'s jointly optimized
/// reactances and dispatch (the cost yardstick every MTD premium is
/// measured against).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineOutcome {
    /// Cost-optimal reactance vector within the D-FACTS limits.
    pub x: Vec<f64>,
    /// The OPF at those reactances.
    pub opf: OpfSolution,
}

/// Result of a select-then-study attacker-relearning flow
/// (see [`MtdSession::learning_flow`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LearningOutcome {
    /// The γ threshold the perturbation was selected for (`None` = the
    /// study ran in the unperturbed world).
    pub gamma_threshold: Option<f64>,
    /// Achieved subspace angle of the applied perturbation.
    pub gamma_achieved: f64,
    /// Operational cost of the perturbation, percent over the
    /// pre-perturbation OPF.
    pub cost_increase_percent: f64,
    /// Attacker progress per snapshot-count checkpoint.
    pub points: Vec<LearningPoint>,
}

/// Topology-keyed warm state: survives [`MtdSession::set_x_pre`] because
/// the grid graph — not the reactance values — fixes it.
#[derive(Debug, Clone, Default)]
struct TopoCaches {
    /// Primed power-flow context prototype; clones of it serve
    /// numeric-only refactorizations everywhere a solver loop needs a
    /// private context.
    pf_proto: Arc<OnceLock<PfContext>>,
    /// Shared gain-matrix symbolic factorization for detector builds.
    est_ctx: Arc<Mutex<EstimatorContext>>,
}

/// Per-`x_pre` warm state, rebuilt lazily after every topology-value
/// change. Everything a [`MtdSession::derive`]d sibling's overrides
/// (seed, attack magnitude) cannot influence — `h_pre`, `basis`, the
/// pre-perturbation OPF and the no-MTD baseline — is shared (`Arc`)
/// with derived batch sessions; the seed-dependent ensemble and γ
/// ceiling stay per-session.
#[derive(Debug, Default)]
struct WarmCaches {
    h_pre: Arc<OnceLock<Matrix>>,
    basis: Arc<OnceLock<spa::GammaBasis>>,
    opf_pre: Arc<OnceLock<OpfSolution>>,
    baseline: Arc<OnceLock<BaselineOutcome>>,
    /// Baseline OPF state for [`MtdSession::select`]: the unperturbed
    /// cost scale plus the warmed simplex basis, so repeated selections
    /// skip the one cold LP solve. Independent of seed and attack
    /// magnitude, hence shared with derived siblings.
    sel_baseline: Arc<OnceLock<selection::BaselineState>>,
    attacks: OnceLock<Vec<FdiAttack>>,
    ceiling: OnceLock<(Vec<f64>, f64)>,
}

/// Hourly-operation state between [`MtdSession::begin_day`] and the last
/// [`MtdSession::step_hour`].
#[derive(Debug, Clone)]
struct DayState {
    trace: LoadTrace,
    opts: TimelineOptions,
    nominal_total: f64,
    hour: usize,
}

/// How the builder initializes the pre-perturbation reactances.
#[derive(Debug, Clone)]
enum XPreInit {
    Nominal,
    Spread,
    Explicit(Vec<f64>),
}

/// Builder for [`MtdSession`] (see [`MtdSession::builder`]).
#[derive(Debug, Clone)]
pub struct MtdSessionBuilder {
    net: Network,
    cfg: MtdConfig,
    x_pre: XPreInit,
    threads: Option<usize>,
}

impl MtdSessionBuilder {
    /// Overrides the experiment configuration (default:
    /// [`MtdConfig::default`]).
    #[must_use]
    pub fn config(mut self, cfg: MtdConfig) -> MtdSessionBuilder {
        self.cfg = cfg;
        self
    }

    /// Sets an explicit pre-perturbation reactance vector (the
    /// attacker's knowledge). Default: the network's nominal
    /// reactances.
    #[must_use]
    pub fn x_pre(mut self, x_pre: Vec<f64>) -> MtdSessionBuilder {
        self.x_pre = XPreInit::Explicit(x_pre);
        self
    }

    /// Starts from a spread D-FACTS box corner
    /// ([`selection::spread_pre_perturbation`]) instead of the nominal
    /// reactances, keeping the paper's full γ range reachable.
    #[must_use]
    pub fn spread_x_pre(mut self) -> MtdSessionBuilder {
        self.x_pre = XPreInit::Spread;
        self
    }

    /// Caps the worker threads for every fan-out layer — batch requests,
    /// sweeps, multistarts, attack scoring — **for this session only**.
    ///
    /// The cap is applied as a scoped [`parallel::with_thread_budget`]
    /// around every session entry point, and the budget follows the
    /// call tree into nested fan-outs, so an outer batch and an inner
    /// multistart can never disagree. Unlike the process-wide
    /// [`parallel::set_thread_override`] (which remains available as a
    /// coarse fallback for single-workload processes, and which this
    /// builder no longer touches), per-session budgets do not race:
    /// two sessions built with different `threads(n)` run concurrently
    /// and each observes exactly its own cap. Precedence, highest
    /// first: this per-session budget, the process-wide override, the
    /// `GRIDMTD_THREADS` environment variable, the machine's
    /// parallelism. Results are bit-identical for any worker count;
    /// this is purely a resource control.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> MtdSessionBuilder {
        self.threads = Some(threads.max(1));
        self
    }

    /// Validates the configuration and reactances and builds the
    /// session.
    ///
    /// # Errors
    ///
    /// * [`MtdError::InvalidConfig`] for NaN / out-of-range
    ///   configuration fields (see [`MtdConfig::validate`]);
    /// * [`MtdError::Grid`] if an explicit `x_pre` has the wrong length
    ///   or non-positive entries.
    pub fn build(self) -> Result<MtdSession, MtdError> {
        self.cfg.validate()?;
        let x_pre = match self.x_pre {
            XPreInit::Nominal => self.net.nominal_reactances(),
            XPreInit::Spread => selection::spread_pre_perturbation(&self.net, self.cfg.eta_max),
            XPreInit::Explicit(x) => {
                self.net.check_reactances(&x)?;
                x
            }
        };
        Ok(MtdSession {
            net: self.net,
            cfg: self.cfg,
            x_pre,
            threads: self.threads,
            topo: TopoCaches::default(),
            warm: WarmCaches::default(),
            day: None,
        })
    }
}

/// A stateful MTD service handle for one grid: owns every warm cache of
/// the paper pipeline and exposes the pipeline as methods (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct MtdSession {
    net: Network,
    cfg: MtdConfig,
    x_pre: Vec<f64>,
    /// Per-session worker budget (see [`MtdSessionBuilder::threads`]);
    /// applied as a scoped [`parallel::with_thread_budget`] around every
    /// entry point by [`MtdSession::scoped`].
    threads: Option<usize>,
    topo: TopoCaches,
    warm: WarmCaches,
    day: Option<DayState>,
}

/// `OnceLock::get_or_try_init` on stable: on a lost race the freshly
/// computed value is dropped and the winner's is returned — harmless
/// here because every cached value is a pure function of the session
/// inputs.
fn get_or_try<T>(
    lock: &OnceLock<T>,
    init: impl FnOnce() -> Result<T, MtdError>,
) -> Result<&T, MtdError> {
    if let Some(v) = lock.get() {
        return Ok(v);
    }
    let v = init()?;
    Ok(lock.get_or_init(|| v))
}

/// Locks the shared estimator context, shrugging off poison: a worker
/// that panicked while holding the lock leaves the context exactly as
/// sound as any other cached symbolic state, because every use
/// pattern-validates it against the matrix at hand and rebuilds on
/// mismatch. Propagating the poison instead would turn one caught panic
/// into a permanent brick — every later request on the session (and, in
/// a server, every later client sharing the warm session) would panic
/// at this lock site.
fn lock_est_ctx(est_ctx: &Mutex<EstimatorContext>) -> std::sync::MutexGuard<'_, EstimatorContext> {
    // Injection point: poison the mutex *for real* (a helper thread
    // panics while holding it) so the recovery below is exercised end
    // to end, not simulated. The chaos matrix pins the recovered
    // result bit-identical to an unfaulted run.
    if gridmtd_faults::point!("core.session.estimator_poison") {
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = est_ctx.lock();
                    panic!("fault-injection: core.session.estimator_poison");
                })
                .join()
        });
    }
    est_ctx
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Builds a post-MTD detector through the shared estimator context: the
/// symbolic state is cloned out of the mutex, the (possibly long)
/// numeric factorization runs unlocked, and a freshly analyzed symbolic
/// is published back unless a concurrent build already did.
pub(crate) fn detector_via(
    est_ctx: &Mutex<EstimatorContext>,
    h_post: Matrix,
    cfg: &MtdConfig,
) -> Result<BadDataDetector, MtdError> {
    let mut local = lock_est_ctx(est_ctx).clone();
    let bdd = effectiveness::detector_from_h_ctx(h_post, cfg, &mut local)?;
    let mut shared = lock_est_ctx(est_ctx);
    if !shared.has_symbolic() {
        *shared = local;
    }
    Ok(bdd)
}

impl MtdSession {
    /// Starts building a session for `net` (nominal `x_pre`, default
    /// configuration, machine-default threads).
    pub fn builder(net: Network) -> MtdSessionBuilder {
        MtdSessionBuilder {
            net,
            cfg: MtdConfig::default(),
            x_pre: XPreInit::Nominal,
            threads: None,
        }
    }

    /// The network this session serves (at its in-effect loads).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The validated configuration.
    pub fn config(&self) -> &MtdConfig {
        &self.cfg
    }

    /// The current pre-perturbation reactances (the attacker's
    /// knowledge).
    pub fn x_pre(&self) -> &[f64] {
        &self.x_pre
    }

    /// The per-session worker budget, if one was set at build time
    /// (see [`MtdSessionBuilder::threads`]).
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// Runs `f` under this session's worker budget: every fan-out layer
    /// reached from inside — batch dispatch, sweeps, multistarts,
    /// attack-scoring chunks — sizes itself to the budget, and
    /// concurrent sessions with different budgets never interfere
    /// (the budget is scoped to the call tree, not process-global).
    /// A no-op when the builder set no budget.
    fn scoped<R>(&self, f: impl FnOnce() -> R) -> R {
        parallel::with_thread_budget(self.threads, f)
    }

    /// Replaces the pre-perturbation reactances, invalidating every
    /// `x_pre`-keyed cache (the topology-keyed symbolic factorizations
    /// survive — the grid graph is unchanged). A no-op when `x_pre` is
    /// already current.
    ///
    /// # Panics
    ///
    /// Panics if `x_pre` has the wrong length.
    pub fn set_x_pre(&mut self, x_pre: Vec<f64>) {
        assert_eq!(
            x_pre.len(),
            self.net.n_branches(),
            "x_pre length must match the branch count"
        );
        if x_pre == self.x_pre {
            return;
        }
        self.x_pre = x_pre;
        self.warm = WarmCaches::default();
    }

    // ------------------------------------------------------------------
    // Warm caches
    // ------------------------------------------------------------------

    /// The cached pre-perturbation measurement matrix `H(x_pre)`.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn h_pre(&self) -> Result<&Matrix, MtdError> {
        get_or_try(&self.warm.h_pre, || {
            Ok(self.net.measurement_matrix(&self.x_pre)?)
        })
    }

    /// The cached QR basis of `Col(H(x_pre))` behind every γ query.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures.
    pub fn gamma_basis(&self) -> Result<&spa::GammaBasis, MtdError> {
        get_or_try(&self.warm.basis, || spa::GammaBasis::new(self.h_pre()?))
    }

    /// The primed power-flow context prototype; solver loops clone it so
    /// the sparse symbolic factorization runs once per topology.
    fn pf_proto(&self) -> Result<&PfContext, MtdError> {
        get_or_try(&self.topo.pf_proto, || {
            let mut pf = PfContext::new();
            pf.prime(&self.net, &self.x_pre)?;
            Ok(pf)
        })
    }

    /// The cached pre-perturbation OPF at `x_pre` (the operating point
    /// the attacker eavesdropped).
    ///
    /// # Errors
    ///
    /// Propagates OPF failures.
    pub fn opf_pre(&self) -> Result<&OpfSolution, MtdError> {
        self.scoped(|| {
            get_or_try(&self.warm.opf_pre, || {
                Ok(solve_opf_with(
                    &self.net,
                    &self.x_pre,
                    &self.cfg.opf_options(),
                    &mut OpfContext::with_pf(self.pf_proto()?.clone()),
                )?)
            })
        })
    }

    /// The cached attack ensemble: stealthy FDI attacks crafted against
    /// `H(x_pre)`, scaled by the eavesdropped measurements at the
    /// pre-perturbation operating point.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn attacks(&self) -> Result<&[FdiAttack], MtdError> {
        self.scoped(|| {
            get_or_try(&self.warm.attacks, || {
                let dispatch = self.opf_pre()?.dispatch.clone();
                effectiveness::build_attack_set_impl(
                    &self.net,
                    self.h_pre()?,
                    &self.x_pre,
                    &dispatch,
                    &self.cfg,
                    self.pf_proto()?,
                )
            })
            .map(Vec::as_slice)
        })
    }

    /// The cached no-MTD baseline (problem (1): cost-optimal reactances
    /// and dispatch within the D-FACTS limits, warm-started from
    /// `x_pre`).
    ///
    /// # Errors
    ///
    /// Propagates OPF failures.
    pub fn baseline(&self) -> Result<&BaselineOutcome, MtdError> {
        self.scoped(|| {
            get_or_try(&self.warm.baseline, || {
                let (x, opf) = selection::baseline_opf_impl(
                    &self.net,
                    &self.x_pre,
                    &self.cfg,
                    self.pf_proto()?,
                )?;
                Ok(BaselineOutcome { x, opf })
            })
        })
    }

    /// The cached achievable-γ ceiling within the D-FACTS limits:
    /// the maximizing reactance vector and its angle.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn max_gamma(&self) -> Result<&(Vec<f64>, f64), MtdError> {
        self.scoped(|| {
            get_or_try(&self.warm.ceiling, || {
                selection::max_achievable_gamma_with(
                    &self.net,
                    &self.x_pre,
                    self.gamma_basis()?,
                    &self.cfg,
                )
            })
        })
    }

    /// Builds the post-MTD bad-data detector for `h_post` through the
    /// session's shared gain-symbolic cache.
    fn detector(&self, h_post: Matrix) -> Result<BadDataDetector, MtdError> {
        detector_via(&self.topo.est_ctx, h_post, &self.cfg)
    }

    // ------------------------------------------------------------------
    // The paper pipeline
    // ------------------------------------------------------------------

    /// Solves a DC-OPF at an arbitrary reactance vector through the
    /// session's warm power-flow state (fresh simplex, so the result is
    /// bit-identical to a cold [`gridmtd_opf::solve_opf`]).
    ///
    /// # Errors
    ///
    /// See [`gridmtd_opf::solve_opf`].
    pub fn solve_opf(&self, x: &[f64]) -> Result<OpfSolution, MtdError> {
        Ok(solve_opf_with(
            &self.net,
            x,
            &self.cfg.opf_options(),
            &mut OpfContext::with_pf(self.pf_proto()?.clone()),
        )?)
    }

    /// Solves the SPA-constrained OPF of problem (4) for one threshold,
    /// through the cached `H(x_pre)`, its QR basis, the shared
    /// power-flow symbolic state and the cached baseline simplex basis.
    ///
    /// # Errors
    ///
    /// See [`selection::select_mtd`].
    pub fn select(&self, gamma_threshold: f64) -> Result<MtdSelection, MtdError> {
        self.scoped(|| {
            let baseline = get_or_try(&self.warm.sel_baseline, || {
                selection::prepare_baseline(&self.net, &self.x_pre, &self.cfg, self.pf_proto()?)
            })?;
            selection::select_mtd_seeded(
                &self.net,
                &self.x_pre,
                self.h_pre()?,
                self.gamma_basis()?,
                gamma_threshold,
                &self.cfg,
                baseline,
            )
        })
    }

    /// Scores a perturbation `x_pre → x_post` against the session's
    /// cached attack ensemble.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn evaluate(&self, x_post: &[f64]) -> Result<MtdEvaluation, MtdError> {
        self.scoped(|| {
            let attacks = self.attacks()?;
            self.evaluate_against(&self.net, x_post, attacks)
        })
    }

    /// [`MtdSession::evaluate`] against an explicit ensemble and network
    /// (the hourly loop passes the hour's rescaled network; `H` depends
    /// only on topology and reactances, so the angles are unaffected).
    fn evaluate_against(
        &self,
        net: &Network,
        x_post: &[f64],
        attacks: &[FdiAttack],
    ) -> Result<MtdEvaluation, MtdError> {
        let h_post = net.measurement_matrix(x_post)?;
        let gamma = self.gamma_basis()?.gamma_to(&h_post)?;
        let smallest_angle = spa::smallest_angle(self.h_pre()?, &h_post)?;
        let bdd = self.detector(h_post)?;
        let detection_probs = effectiveness::detection_probabilities_parallel(&bdd, attacks)?;
        Ok(MtdEvaluation {
            gamma,
            smallest_angle,
            detection_probs,
        })
    }

    /// Per-attack post-MTD detection probabilities of the cached
    /// ensemble under a candidate `x_post` (the raw series behind
    /// `η'(δ)`).
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn detection_probabilities(&self, x_post: &[f64]) -> Result<Vec<f64>, MtdError> {
        self.scoped(|| {
            let attacks = self.attacks()?;
            let bdd = self.detector(self.net.measurement_matrix(x_post)?)?;
            effectiveness::detection_probabilities_parallel(&bdd, attacks)
        })
    }

    /// Sweeps the effectiveness-vs-cost tradeoff curve (Figs. 6 and 9)
    /// over a γ-threshold grid, reusing the cached ensemble so points
    /// are directly comparable. Thresholds above the achievable ceiling
    /// are skipped, not errors.
    ///
    /// # Errors
    ///
    /// Propagates selection/OPF failures.
    pub fn tradeoff_sweep(
        &self,
        gamma_thresholds: &[f64],
        deltas: &[f64],
    ) -> Result<TradeoffCurve, MtdError> {
        self.scoped(|| self.tradeoff_sweep_inner(gamma_thresholds, deltas))
    }

    fn tradeoff_sweep_inner(
        &self,
        gamma_thresholds: &[f64],
        deltas: &[f64],
    ) -> Result<TradeoffCurve, MtdError> {
        // Cache-fill order mirrors the historical free function: the
        // pre-perturbation OPF prices the ensemble, then ceiling, then
        // baseline.
        self.opf_pre()?;
        let attacks = self.attacks()?;
        let &(_, gamma_ceiling) = self.max_gamma()?;
        let baseline = self.baseline()?;

        // Every threshold's selection + scoring is independent given the
        // shared ensemble, so the sweep fans across worker threads;
        // results come back in grid order, making the curve identical to
        // a serial sweep.
        let in_range: Vec<f64> = gamma_thresholds
            .iter()
            .copied()
            .filter(|&g| g <= gamma_ceiling + 1e-3)
            .collect();
        let swept: Vec<Result<Option<TradeoffPoint>, MtdError>> =
            parallel::par_map(&in_range, |_, &gamma_th| {
                let sel = match self.select(gamma_th) {
                    Ok(s) => s,
                    Err(MtdError::ThresholdUnreachable { .. }) => return Ok(None),
                    Err(e) => return Err(e),
                };
                let eval = self.evaluate_against(&self.net, &sel.x_post, attacks)?;
                Ok(Some(TradeoffPoint {
                    gamma_threshold: gamma_th,
                    gamma_achieved: sel.gamma,
                    cost_increase_percent: cost::cost_increase_percent(
                        baseline.opf.cost,
                        sel.opf.cost,
                    ),
                    effectiveness: eta_grid(&eval, deltas),
                }))
            });
        let mut points = Vec::with_capacity(in_range.len());
        for swept_point in swept {
            if let Some(p) = swept_point? {
                points.push(p);
            }
        }
        Ok(TradeoffCurve {
            points,
            gamma_ceiling,
            baseline_cost: baseline.opf.cost,
        })
    }

    /// Scores `n_trials` random baseline perturbations (the keyspace of
    /// prior work, Figs. 7–8) against the session's cached ensemble.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn keyspace_study(
        &self,
        fraction: f64,
        n_trials: usize,
        deltas: &[f64],
    ) -> Result<Vec<RandomTrial>, MtdError> {
        let attacks = self.attacks()?;
        self.keyspace_study_with_attacks(attacks, fraction, n_trials, deltas)
    }

    /// [`MtdSession::keyspace_study`] against an explicit ensemble
    /// (trial `t` draws its perturbation from a stream derived by
    /// [`crate::seedstream::mix`]`(seed + 0xfeed, t)`, so the study is a
    /// pure function of its arguments for any worker count and trial
    /// streams never collide between nearby seeds — the variant axes a
    /// batch sweeps).
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn keyspace_study_with_attacks(
        &self,
        attacks: &[FdiAttack],
        fraction: f64,
        n_trials: usize,
        deltas: &[f64],
    ) -> Result<Vec<RandomTrial>, MtdError> {
        self.scoped(|| self.keyspace_study_inner(attacks, fraction, n_trials, deltas))
    }

    fn keyspace_study_inner(
        &self,
        attacks: &[FdiAttack],
        fraction: f64,
        n_trials: usize,
        deltas: &[f64],
    ) -> Result<Vec<RandomTrial>, MtdError> {
        let base = crate::seedstream::domain(self.cfg.seed, 0xfeed);
        let h_pre = self.h_pre()?;
        let basis = self.gamma_basis()?;
        let trial_ids: Vec<u64> = (0..n_trials as u64).collect();
        parallel::par_map(&trial_ids, |_, &t| {
            let mut rng = StdRng::seed_from_u64(crate::seedstream::mix(base, t));
            let x_post =
                selection::random_perturbation(&self.net, &self.x_pre, fraction, &mut rng)?;
            let h_post = self.net.measurement_matrix(&x_post)?;
            let gamma = basis.gamma_to(&h_post)?;
            let smallest_angle = spa::smallest_angle(h_pre, &h_post)?;
            // Angles first so `h_post` can move into the detector
            // unclone'd.
            let bdd = self.detector(h_post)?;
            let probs = gridmtd_attack::detection_probabilities(&bdd, attacks)?;
            let eval = MtdEvaluation {
                gamma,
                smallest_angle,
                detection_probs: probs,
            };
            Ok(RandomTrial {
                trial: t as usize,
                gamma: eval.gamma,
                effectiveness: eta_grid(&eval, deltas),
            })
        })
        .into_iter()
        .collect()
    }

    /// Runs the attacker-relearning study of Section IV-A in the
    /// post-perturbation world `x_post`, through the session's warm
    /// power-flow and detector state.
    ///
    /// # Errors
    ///
    /// See [`learning::attacker_learning_study`].
    ///
    /// # Panics
    ///
    /// See [`learning::attacker_learning_study`].
    pub fn learning_study(
        &self,
        x_post: &[f64],
        opts: &LearningOptions,
    ) -> Result<Vec<LearningPoint>, MtdError> {
        self.scoped(|| {
            learning::attacker_learning_study_impl(
                &self.net,
                x_post,
                opts,
                &self.cfg,
                self.pf_proto()?,
                &self.topo.est_ctx,
            )
        })
    }

    /// The full relearning flow: optionally select a perturbation for
    /// `gamma_threshold` (pricing it against the pre-perturbation OPF),
    /// then run the study in the resulting world.
    ///
    /// # Errors
    ///
    /// Propagates selection and study failures.
    ///
    /// # Panics
    ///
    /// See [`learning::attacker_learning_study`].
    pub fn learning_flow(
        &self,
        gamma_threshold: Option<f64>,
        opts: &LearningOptions,
    ) -> Result<LearningOutcome, MtdError> {
        let (x_post, gamma_achieved, cost_increase_percent) = match gamma_threshold {
            Some(g) => {
                let baseline_cost = self.opf_pre()?.cost;
                let sel = self.select(g)?;
                let increase = cost::cost_increase_percent(baseline_cost, sel.opf.cost);
                (sel.x_post, sel.gamma, increase)
            }
            None => (self.x_pre.clone(), 0.0, 0.0),
        };
        let points = self.learning_study(&x_post, opts)?;
        Ok(LearningOutcome {
            gamma_threshold,
            gamma_achieved,
            cost_increase_percent,
            points,
        })
    }

    // ------------------------------------------------------------------
    // Hourly operation (Figs. 10–11)
    // ------------------------------------------------------------------

    /// Starts a day of hourly MTD operation over `trace`: initializes
    /// the attacker's knowledge from the hour preceding the trace start
    /// (a spread D-FACTS point re-dispatched at the last trace hour) and
    /// arms [`MtdSession::step_hour`].
    ///
    /// # Errors
    ///
    /// Propagates OPF failures.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn begin_day(&mut self, trace: &LoadTrace, opts: &TimelineOptions) -> Result<(), MtdError> {
        assert!(!trace.is_empty(), "timeline trace must be non-empty");
        let budget = self.threads;
        let nominal_total = self.net.total_load();
        let n_hours = trace.len();
        let mut x_prev = selection::spread_pre_perturbation(&self.net, self.cfg.eta_max);
        {
            let net_prev = self
                .net
                .scale_loads(trace.scaling_factor(n_hours - 1, nominal_total));
            let (x, _) = parallel::with_thread_budget(budget, || {
                selection::baseline_opf_impl(&net_prev, &x_prev, &self.cfg, self.pf_proto()?)
            })?;
            x_prev = x;
        }
        self.set_x_pre(x_prev);
        self.day = Some(DayState {
            trace: trace.clone(),
            opts: opts.clone(),
            nominal_total,
            hour: 0,
        });
        Ok(())
    }

    /// Hours of the armed day not yet simulated (0 when no day is in
    /// progress).
    pub fn hours_remaining(&self) -> usize {
        self.day
            .as_ref()
            .map_or(0, |d| d.trace.len().saturating_sub(d.hour))
    }

    /// Simulates the next hour of MTD operation: re-dispatch for the
    /// hour's load, craft the attack ensemble against the one-hour-stale
    /// knowledge, auto-tune the smallest `γ_th` meeting the
    /// effectiveness target, and advance the attacker's knowledge to
    /// this hour's no-MTD reactances.
    ///
    /// # Errors
    ///
    /// [`MtdError::DayNotStarted`] without a day in progress
    /// ([`MtdSession::begin_day`]) — a typed error, not a panic, so a
    /// misrouted service request cannot abort a server worker.
    /// Propagates OPF/selection failures, and [`MtdError::Infeasible`]
    /// if even the smallest grid threshold is unreachable. Hours where
    /// the largest reachable `γ_th` misses the effectiveness target are
    /// reported with `target_met = false` rather than failing.
    pub fn step_hour(&mut self) -> Result<HourOutcome, MtdError> {
        let day = self.day.clone().ok_or(MtdError::DayNotStarted)?;
        let budget = self.threads;
        let hour = day.hour;
        debug_assert!(
            hour < day.trace.len(),
            "an armed day always has hours left (it is disarmed on its last step)"
        );
        let net_now = self
            .net
            .scale_loads(day.trace.scaling_factor(hour, day.nominal_total));

        let (x_now, outcome) = parallel::with_thread_budget(budget, || {
            // 1. No-MTD OPF for this hour (warm start from previous hour).
            let (x_now, opf_now) =
                selection::baseline_opf_impl(&net_now, &self.x_pre, &self.cfg, self.pf_proto()?)?;

            let outcome = {
                // 2. Attacker's knowledge: last hour's matrix — exactly the
                // session's cached `H(x_pre)`/basis, built once per hour and
                // shared by the ensemble, every γ-grid candidate's selection
                // and the effectiveness evaluations.
                let h_stale = self.h_pre()?;
                let stale_basis = self.gamma_basis()?;
                let h_now = self.net.measurement_matrix(&x_now)?;

                // Attack ensemble against the stale matrix, scaled by the
                // stale operating point (what the attacker eavesdropped).
                let opf_prev_dispatch = {
                    let prev_hour = if hour == 0 {
                        day.trace.len() - 1
                    } else {
                        hour - 1
                    };
                    let net_prev = self
                        .net
                        .scale_loads(day.trace.scaling_factor(prev_hour, day.nominal_total));
                    solve_opf_with(
                        &net_prev,
                        &self.x_pre,
                        &self.cfg.opf_options(),
                        &mut OpfContext::with_pf(self.pf_proto()?.clone()),
                    )?
                    .dispatch
                };
                let attacks = effectiveness::build_attack_set_impl(
                    &net_now,
                    h_stale,
                    &self.x_pre,
                    &opf_prev_dispatch,
                    &self.cfg,
                    self.pf_proto()?,
                )?;

                // 3. Tune γ_th on the grid. Candidates are evaluated
                // speculatively in worker-sized chunks and the serial
                // early-exit rule is replayed over the ordered results, so
                // the outcome (including which errors can surface) is
                // exactly the serial tuner's.
                let lookahead = parallel::available_threads().max(1);
                let mut chosen: Option<(f64, MtdSelection, f64)> = None;
                // The baseline OPF depends on the hour's loads but not
                // on γ_th: solve it once and seed every candidate, so
                // the grid pays one cold LP instead of one per point.
                let sel_baseline = selection::prepare_baseline(
                    &net_now,
                    &self.x_pre,
                    &self.cfg,
                    self.pf_proto()?,
                )?;
                'grid: for candidates in day.opts.gamma_grid.chunks(lookahead) {
                    let evaluations: Vec<Result<(MtdSelection, f64), MtdError>> =
                        parallel::par_map(candidates, |_, &gamma_th| {
                            let sel = selection::select_mtd_seeded(
                                &net_now,
                                &self.x_pre,
                                h_stale,
                                stale_basis,
                                gamma_th,
                                &self.cfg,
                                &sel_baseline,
                            )?;
                            let eval = self.evaluate_against(&net_now, &sel.x_post, &attacks)?;
                            let eta = eval.effectiveness(day.opts.target_delta);
                            Ok((sel, eta))
                        });
                    for (&gamma_th, evaluation) in candidates.iter().zip(evaluations) {
                        match evaluation {
                            Ok((sel, eta)) => {
                                let met = eta >= day.opts.target_eta;
                                chosen = Some((gamma_th, sel, eta));
                                if met {
                                    break 'grid;
                                }
                            }
                            Err(MtdError::ThresholdUnreachable { .. }) => break 'grid,
                            Err(e) => return Err(e),
                        }
                    }
                }
                let (gamma_threshold, sel, eta) = chosen.ok_or(MtdError::Infeasible)?;

                let h_post = self.net.measurement_matrix(&sel.x_post)?;
                HourOutcome {
                    hour,
                    total_load_mw: net_now.total_load(),
                    cost_no_mtd: opf_now.cost,
                    cost_with_mtd: sel.opf.cost,
                    cost_increase_percent: cost::cost_increase_percent(opf_now.cost, sel.opf.cost),
                    gamma_drift: stale_basis.gamma_to(&h_now)?,
                    gamma_defense: stale_basis.gamma_to(&h_post)?,
                    gamma_current: spa::gamma(&h_now, &h_post)?,
                    gamma_threshold,
                    effectiveness: eta,
                    target_met: eta >= day.opts.target_eta,
                }
            };
            Ok::<_, MtdError>((x_now, outcome))
        })?;

        // 4. Advance the attacker's knowledge to this hour's no-MTD
        // reactances (invalidates the `x_pre`-keyed caches; the
        // topology-keyed symbolic state survives).
        self.set_x_pre(x_now);
        if let Some(d) = self.day.as_mut() {
            d.hour += 1;
            if d.hour >= d.trace.len() {
                self.day = None;
            }
        }
        Ok(outcome)
    }

    /// Runs a whole armed-and-stepped day in one call (see
    /// [`crate::simulate_day`] for the free-function form).
    ///
    /// # Errors
    ///
    /// See [`MtdSession::step_hour`].
    pub fn simulate_day(
        &mut self,
        trace: &LoadTrace,
        opts: &TimelineOptions,
    ) -> Result<Vec<HourOutcome>, MtdError> {
        self.begin_day(trace, opts)?;
        let mut outcomes = Vec::with_capacity(trace.len());
        while self.hours_remaining() > 0 {
            outcomes.push(self.step_hour()?);
        }
        Ok(outcomes)
    }

    /// Derives a sibling session for a per-request configuration
    /// override: the topology-keyed warm state and every cache the
    /// overridable knobs (seed, attack magnitude) cannot influence —
    /// `H(x_pre)`, its basis, the pre-perturbation OPF, the no-MTD
    /// baseline — are shared, while the seed-dependent caches
    /// (ensemble, ceiling) start empty — exactly what a batch variant
    /// axis needs.
    pub(crate) fn derive(&self, seed: Option<u64>, attack_ratio: Option<f64>) -> MtdSession {
        let mut cfg = self.cfg.clone();
        if let Some(s) = seed {
            cfg.seed = s;
        }
        if let Some(r) = attack_ratio {
            cfg.attack_ratio = r;
        }
        MtdSession {
            net: self.net.clone(),
            cfg,
            x_pre: self.x_pre.clone(),
            threads: self.threads,
            topo: self.topo.clone(),
            warm: WarmCaches {
                h_pre: Arc::clone(&self.warm.h_pre),
                basis: Arc::clone(&self.warm.basis),
                opf_pre: Arc::clone(&self.warm.opf_pre),
                baseline: Arc::clone(&self.warm.baseline),
                sel_baseline: Arc::clone(&self.warm.sel_baseline),
                ..WarmCaches::default()
            },
            day: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;

    #[test]
    fn builder_rejects_invalid_config() {
        let bad = MtdConfig {
            eta_max: f64::NAN,
            ..MtdConfig::fast_test()
        };
        let err = MtdSession::builder(cases::case4())
            .config(bad)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            MtdError::InvalidConfig {
                field: "eta_max",
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_wrong_length_x_pre() {
        let err = MtdSession::builder(cases::case4())
            .config(MtdConfig::fast_test())
            .x_pre(vec![0.1; 3])
            .build()
            .unwrap_err();
        assert!(matches!(err, MtdError::Grid(_)));
    }

    #[test]
    fn set_x_pre_invalidates_x_keyed_caches_only() {
        let net = cases::case4();
        let mut s = MtdSession::builder(net.clone())
            .config(MtdConfig::fast_test())
            .build()
            .unwrap();
        let h_a = s.h_pre().unwrap().clone();
        let mut x = net.nominal_reactances();
        for l in net.dfacts_branches() {
            x[l] *= 1.2;
        }
        s.set_x_pre(x);
        let h_b = s.h_pre().unwrap().clone();
        assert_ne!(h_a, h_b, "new x_pre must rebuild H");
        // Setting the same value back-to-back is a cache-preserving
        // no-op: the cached matrix keeps its address.
        let addr_before = s.h_pre().unwrap() as *const Matrix;
        let x_now = s.x_pre().to_vec();
        s.set_x_pre(x_now);
        assert_eq!(s.h_pre().unwrap() as *const Matrix, addr_before);
    }

    #[test]
    fn caught_panic_does_not_brick_the_session() {
        // A worker that panics while holding the estimator-context lock
        // poisons the mutex. A daemon catches such panics and keeps
        // serving; the session must shrug the poison off (the context
        // is pattern-validated per use, so a poisoned clone is safe)
        // instead of turning every later request into a panic cascade.
        let s = MtdSession::builder(cases::case4())
            .config(MtdConfig {
                n_attacks: 20,
                n_starts: 1,
                max_evals_per_start: 30,
                ..MtdConfig::default()
            })
            .build()
            .unwrap();
        let before = s.evaluate(s.x_pre()).unwrap();

        // Simulate the mid-batch panic: grab the shared lock on another
        // thread and unwind while holding it.
        let est_ctx = Arc::clone(&s.topo.est_ctx);
        let caught = std::thread::spawn(move || {
            // Same poison-shrugging acquisition as the production lock
            // sites; this guard is the one that poisons on unwind.
            let _guard = lock_est_ctx(&est_ctx);
            panic!("worker panic while holding the estimator context");
        })
        .join();
        assert!(caught.is_err(), "the helper thread must have panicked");
        assert!(s.topo.est_ctx.is_poisoned(), "the mutex must be poisoned");

        // Every later request still works, through the same lock sites,
        // and produces the same bits as before the poisoning.
        let after = s.evaluate(s.x_pre()).unwrap();
        assert_eq!(before, after);
        let batch = s.run_batch(&[batch::Request::Evaluate {
            x_post: s.x_pre().to_vec(),
        }]);
        assert!(batch[0].is_ok(), "batch path must also survive: {batch:?}");
    }

    #[test]
    fn step_hour_without_begin_day_is_a_typed_error() {
        let mut s = MtdSession::builder(cases::case4())
            .config(MtdConfig::fast_test())
            .build()
            .unwrap();
        assert_eq!(s.step_hour().unwrap_err(), MtdError::DayNotStarted);
        // A finished day disarms the session: stepping past the end is
        // the same typed error, not a panic.
        let trace = gridmtd_traces::LoadTrace::new(vec![100.0]);
        let opts = TimelineOptions {
            gamma_grid: vec![0.01],
            ..TimelineOptions::default()
        };
        s.begin_day(&trace, &opts).unwrap();
        while s.hours_remaining() > 0 {
            s.step_hour().unwrap();
        }
        assert_eq!(s.step_hour().unwrap_err(), MtdError::DayNotStarted);
    }

    #[test]
    fn adjacent_seed_keyspace_studies_share_no_trial_streams() {
        // The historical XOR stream derivation reused trial streams
        // between adjacent seeds: with base = seed + 0xfeed, trial 1 of
        // seed 2 equalled trial 0 of seed 3 ((2+0xfeed)^1 == (3+0xfeed)^0),
        // so the "independent" keyspace variants of a batch sweep drew
        // identical perturbations. Pin that no trial of seed 2 matches
        // any trial of seed 3.
        let study = |seed: u64| {
            let s = MtdSession::builder(cases::case4())
                .config(MtdConfig {
                    n_attacks: 20,
                    seed,
                    ..MtdConfig::default()
                })
                .build()
                .unwrap();
            s.keyspace_study(0.05, 6, &[0.9]).unwrap()
        };
        let a = study(2);
        let b = study(3);
        for ta in &a {
            for tb in &b {
                assert_ne!(
                    ta.gamma.to_bits(),
                    tb.gamma.to_bits(),
                    "seed 2 trial {} and seed 3 trial {} drew the same stream",
                    ta.trial,
                    tb.trial
                );
            }
        }
    }

    #[test]
    fn per_session_thread_budgets_do_not_race() {
        // Two sessions with different `threads(n)` caps, driven
        // concurrently, must produce bit-identical results to their
        // serial selves and leave the process-global override untouched
        // (the historical builder set the global, so the last builder
        // won for both sessions).
        let build = |threads: usize| {
            MtdSession::builder(cases::case14())
                .config(MtdConfig {
                    n_attacks: 30,
                    n_starts: 1,
                    max_evals_per_start: 40,
                    ..MtdConfig::default()
                })
                .threads(threads)
                .build()
                .unwrap()
        };
        let reference = build(1).select(0.01).unwrap();
        let s1 = build(1);
        let s4 = build(4);
        assert_eq!(
            parallel::thread_override(),
            None,
            "builder must not touch the global"
        );
        std::thread::scope(|scope| {
            let a = scope.spawn(|| s1.select(0.01).unwrap());
            let b = scope.spawn(|| s4.select(0.01).unwrap());
            assert_eq!(a.join().unwrap(), reference);
            assert_eq!(b.join().unwrap(), reference);
        });
        assert_eq!(parallel::thread_override(), None);
    }

    #[test]
    fn spread_builder_matches_free_function() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let s = MtdSession::builder(net.clone())
            .config(cfg.clone())
            .spread_x_pre()
            .build()
            .unwrap();
        assert_eq!(
            s.x_pre(),
            selection::spread_pre_perturbation(&net, cfg.eta_max).as_slice()
        );
    }
}
