//! The typed batch layer over [`MtdSession`]: heterogeneous pipeline
//! work expressed as data.
//!
//! Sweep drivers — the declarative scenario engine, the `gridmtd` CLI,
//! a future network service — all face the same shape of workload: a
//! list of independent pipeline invocations (one tradeoff sweep per
//! `(seed, attack-ratio)` variant, one keyspace study per seed, a
//! timeline, a relearning flow) that should fan out across workers and
//! come back in order. [`Request`] / [`Response`] give that workload a
//! type, and [`MtdSession::run_batch`] executes it through
//! [`gridmtd_opf::parallel`] with the session's warm caches shared
//! underneath.
//!
//! Per-request variant axes ([`Request::Tradeoff::seed`],
//! [`Request::Keyspace::seed`], …) run on a *derived* session: the
//! topology-keyed warm state and every seed-independent cache
//! (`H(x_pre)`, basis, pre-perturbation OPF, baseline) are shared,
//! while the seed-dependent caches start fresh — so overriding a seed
//! can never leak one variant's ensemble into another, and the shared
//! work is still paid once per batch.
//!
//! Results land in request order for any worker count, and every
//! underlying Monte-Carlo stream is seeded from the request — batch
//! output is a pure function of `(session inputs, requests)`, which the
//! scenario goldens pin byte for byte.

use gridmtd_opf::parallel;
use gridmtd_traces::LoadTrace;
use serde::{Deserialize, Serialize};

use crate::tradeoff::{RandomTrial, TradeoffCurve};
use crate::{HourOutcome, LearningOptions, MtdError, MtdEvaluation, MtdSelection, TimelineOptions};

use super::{BaselineOutcome, LearningOutcome, MtdSession};

/// One typed pipeline invocation for [`MtdSession::run_batch`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// The no-MTD baseline operating point (problem (1)).
    Baseline,
    /// One SPA-constrained selection (problem (4)).
    Select {
        /// Subspace-angle threshold `γ_th`, radians.
        gamma_threshold: f64,
    },
    /// Score a perturbation against the session's cached ensemble.
    Evaluate {
        /// Full post-perturbation reactance vector.
        x_post: Vec<f64>,
    },
    /// Raw per-attack detection probabilities under a perturbation.
    DetectionProbabilities {
        /// Full post-perturbation reactance vector.
        x_post: Vec<f64>,
    },
    /// A full effectiveness-vs-cost sweep (Figs. 6 / 9).
    Tradeoff {
        /// γ-threshold grid, ascending.
        gamma_thresholds: Vec<f64>,
        /// Detection-probability levels δ to report η'(δ) at.
        deltas: Vec<f64>,
        /// Per-request seed override (`None` = session seed).
        seed: Option<u64>,
        /// Per-request attack-magnitude override.
        attack_ratio: Option<f64>,
    },
    /// A random-keyspace study (Figs. 7 / 8).
    Keyspace {
        /// Random-perturbation fraction (prior work: 0.02).
        fraction: f64,
        /// Monte-Carlo trial count.
        n_trials: usize,
        /// δ levels to report η'(δ) at.
        deltas: Vec<f64>,
        /// Per-request seed override (`None` = session seed).
        seed: Option<u64>,
    },
    /// A day of hourly MTD operation (Figs. 10 / 11).
    Timeline {
        /// Hourly total loads, MW.
        hours: Vec<f64>,
        /// Tuning targets and the per-hour γ grid.
        options: TimelineOptions,
    },
    /// The attacker-relearning flow of Section IV-A.
    Learning {
        /// Optional selection threshold applied before the study
        /// (`None` runs it in the unperturbed world).
        gamma_threshold: Option<f64>,
        /// Study axes.
        options: LearningOptions,
    },
}

/// The result of one [`Request`], in the matching variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// From [`Request::Baseline`].
    Baseline(BaselineOutcome),
    /// From [`Request::Select`].
    Select(MtdSelection),
    /// From [`Request::Evaluate`].
    Evaluate(MtdEvaluation),
    /// From [`Request::DetectionProbabilities`].
    DetectionProbabilities(Vec<f64>),
    /// From [`Request::Tradeoff`].
    Tradeoff(TradeoffCurve),
    /// From [`Request::Keyspace`].
    Keyspace(Vec<RandomTrial>),
    /// From [`Request::Timeline`].
    Timeline(Vec<HourOutcome>),
    /// From [`Request::Learning`].
    Learning(LearningOutcome),
}

impl MtdSession {
    /// Executes a batch of typed requests, fanning across the worker
    /// threads ([`parallel::available_threads`] — the same source every
    /// inner fan-out reads, and the builder's `threads` knob scopes a
    /// per-session budget around the whole batch, so outer and inner
    /// layers are capped identically without touching any process-global
    /// state). Responses come back in request order; each request fails
    /// independently, so one infeasible variant does not poison the
    /// batch.
    pub fn run_batch(&self, requests: &[Request]) -> Vec<Result<Response, MtdError>> {
        parallel::with_thread_budget(self.threads(), || {
            parallel::par_map(requests, |_, request| self.run_request(request))
        })
    }

    /// Executes one request against this session (variant overrides run
    /// on a derived sibling session).
    ///
    /// # Errors
    ///
    /// Propagates the underlying pipeline failure.
    pub fn run_request(&self, request: &Request) -> Result<Response, MtdError> {
        match request {
            Request::Baseline => Ok(Response::Baseline(self.baseline()?.clone())),
            Request::Select { gamma_threshold } => {
                Ok(Response::Select(self.select(*gamma_threshold)?))
            }
            Request::Evaluate { x_post } => Ok(Response::Evaluate(self.evaluate(x_post)?)),
            Request::DetectionProbabilities { x_post } => Ok(Response::DetectionProbabilities(
                self.detection_probabilities(x_post)?,
            )),
            Request::Tradeoff {
                gamma_thresholds,
                deltas,
                seed,
                attack_ratio,
            } => {
                let curve = if seed.is_some() || attack_ratio.is_some() {
                    self.derive(*seed, *attack_ratio)
                        .tradeoff_sweep(gamma_thresholds, deltas)?
                } else {
                    self.tradeoff_sweep(gamma_thresholds, deltas)?
                };
                Ok(Response::Tradeoff(curve))
            }
            Request::Keyspace {
                fraction,
                n_trials,
                deltas,
                seed,
            } => {
                let trials = if seed.is_some() {
                    self.derive(*seed, None)
                        .keyspace_study(*fraction, *n_trials, deltas)?
                } else {
                    self.keyspace_study(*fraction, *n_trials, deltas)?
                };
                Ok(Response::Keyspace(trials))
            }
            Request::Timeline { hours, options } => {
                // The hourly loop mutates session state (the advancing
                // attacker knowledge), so it runs on a derived sibling —
                // the shared topology caches still do the warm work.
                let mut day_session = self.derive(None, None);
                let outcomes = day_session.simulate_day(&LoadTrace::new(hours.clone()), options)?;
                Ok(Response::Timeline(outcomes))
            }
            Request::Learning {
                gamma_threshold,
                options,
            } => Ok(Response::Learning(
                self.learning_flow(*gamma_threshold, options)?,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MtdConfig;
    use gridmtd_powergrid::cases;

    fn tiny_session() -> MtdSession {
        MtdSession::builder(cases::case4())
            .config(MtdConfig {
                n_attacks: 30,
                n_starts: 1,
                max_evals_per_start: 40,
                ..MtdConfig::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn batch_results_land_in_request_order() {
        let s = tiny_session();
        let requests = vec![
            Request::Baseline,
            Request::Select {
                gamma_threshold: 0.02,
            },
            Request::Keyspace {
                fraction: 0.05,
                n_trials: 3,
                deltas: vec![0.9],
                seed: Some(7),
            },
        ];
        let responses = s.run_batch(&requests);
        assert_eq!(responses.len(), 3);
        assert!(matches!(responses[0], Ok(Response::Baseline(_))));
        assert!(matches!(responses[1], Ok(Response::Select(_))));
        match &responses[2] {
            Ok(Response::Keyspace(trials)) => assert_eq!(trials.len(), 3),
            other => panic!("expected Keyspace, got {other:?}"),
        }
    }

    #[test]
    fn batch_matches_direct_session_calls_bit_for_bit() {
        let s = tiny_session();
        let direct = s.select(0.02).unwrap();
        let batched = s.run_batch(&[Request::Select {
            gamma_threshold: 0.02,
        }]);
        match &batched[0] {
            Ok(Response::Select(sel)) => assert_eq!(*sel, direct),
            other => panic!("expected Select, got {other:?}"),
        }
    }

    #[test]
    fn seed_override_runs_on_a_derived_session() {
        let s = tiny_session();
        let responses = s.run_batch(&[
            Request::Keyspace {
                fraction: 0.05,
                n_trials: 2,
                deltas: vec![0.9],
                seed: Some(1),
            },
            Request::Keyspace {
                fraction: 0.05,
                n_trials: 2,
                deltas: vec![0.9],
                seed: Some(99),
            },
        ]);
        let gamma = |r: &Result<Response, MtdError>| match r {
            Ok(Response::Keyspace(t)) => t[0].gamma,
            other => panic!("expected Keyspace, got {other:?}"),
        };
        assert_ne!(gamma(&responses[0]), gamma(&responses[1]));
        // The base session's own seed is untouched by the overrides.
        assert_eq!(s.config().seed, 1);
    }

    #[test]
    fn one_failing_request_does_not_poison_the_batch() {
        let s = tiny_session();
        let responses = s.run_batch(&[
            Request::Select {
                gamma_threshold: 1.5,
            },
            Request::Baseline,
        ]);
        assert!(matches!(
            responses[0],
            Err(MtdError::ThresholdUnreachable { .. })
        ));
        assert!(responses[1].is_ok());
    }
}
