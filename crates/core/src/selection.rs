//! MTD perturbation selection.
//!
//! Three strategies, in increasing order of sophistication:
//!
//! 1. [`random_perturbation`] — the state-of-the-art baseline of the
//!    papers the authors compare against ([11–13]): pick random reactance
//!    perturbations within a small percentage of the current values. The
//!    paper's Figs. 7–8 show this cannot guarantee effectiveness.
//! 2. [`max_achievable_gamma`] — maximize the subspace angle
//!    `γ(H, H')` irrespective of cost, to find the feasible range of
//!    `γ_th` (used to bound the tradeoff sweep).
//! 3. [`select_mtd`] — the paper's problem (4): minimize OPF cost
//!    subject to `γ(H_t, H'(x')) ≥ γ_th` and the DC-OPF constraints,
//!    solved with multistart Nelder–Mead + adaptive exterior penalty —
//!    the equivalent of the paper's fmincon/MultiStart.

use gridmtd_opf::{
    multistart, multistart_stateful, solve_opf_with, OpfContext, OpfError, OpfSolution,
};
use gridmtd_powergrid::{dcpf::PfContext, Network};
use rand::Rng;

use crate::{spa, MtdConfig, MtdError};

/// A selected MTD perturbation with its audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdSelection {
    /// Full post-perturbation reactance vector (all branches).
    pub x_post: Vec<f64>,
    /// Achieved subspace angle `γ(H_pre, H_post)`.
    pub gamma: f64,
    /// Requested threshold `γ_th`.
    pub gamma_threshold: f64,
    /// Post-perturbation OPF at `x_post`.
    pub opf: OpfSolution,
}

/// The random-perturbation baseline of [11–13]: each D-FACTS line's
/// reactance is multiplied by `1 + U(−fraction, +fraction)`.
///
/// The paper's comparison uses `fraction = 0.02` (perturbations within 2%
/// of the optimal settings, to keep their cost negligible).
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1)` or `x_base` has the wrong
/// length.
pub fn random_perturbation<R: Rng + ?Sized>(
    net: &Network,
    x_base: &[f64],
    fraction: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "fraction must be in (0,1), got {fraction}"
    );
    assert_eq!(x_base.len(), net.n_branches(), "reactance length mismatch");
    let mut x = x_base.to_vec();
    for l in net.dfacts_branches() {
        x[l] *= 1.0 + rng.gen_range(-fraction..fraction);
    }
    x
}

/// Builds the full reactance vector from a candidate D-FACTS sub-vector.
fn assemble(x_nominal: &[f64], dfacts: &[usize], candidate: &[f64]) -> Vec<f64> {
    let mut x = x_nominal.to_vec();
    for (k, &l) in dfacts.iter().enumerate() {
        x[l] = candidate[k];
    }
    x
}

/// Maximizes `γ(H(x_pre), H(x))` over the D-FACTS box, ignoring cost.
///
/// Returns the maximizing reactance vector and the achieved angle — the
/// feasibility ceiling for any `γ_th` passed to [`select_mtd`].
///
/// # Errors
///
/// Propagates model failures.
pub fn max_achievable_gamma(
    net: &Network,
    x_pre: &[f64],
    cfg: &MtdConfig,
) -> Result<(Vec<f64>, f64), MtdError> {
    let h_pre = net.measurement_matrix(x_pre)?;
    let gamma_basis = spa::GammaBasis::new(&h_pre)?;
    max_achievable_gamma_with(net, x_pre, &gamma_basis, cfg)
}

/// [`max_achievable_gamma`] with a precomputed QR basis of `H(x_pre)` —
/// the hoisted path for callers (the session, the tradeoff sweep) that
/// already hold the basis. The basis is a pure function of `H(x_pre)`,
/// so the result is bit-identical to the self-contained variant.
///
/// # Errors
///
/// Propagates model failures.
pub fn max_achievable_gamma_with(
    net: &Network,
    x_pre: &[f64],
    gamma_basis: &spa::GammaBasis,
    cfg: &MtdConfig,
) -> Result<(Vec<f64>, f64), MtdError> {
    let dfacts = net.dfacts_branches();
    let (lo_full, hi_full) = net.reactance_bounds(cfg.eta_max);
    let lo: Vec<f64> = dfacts.iter().map(|&l| lo_full[l]).collect();
    let hi: Vec<f64> = dfacts.iter().map(|&l| hi_full[l]).collect();
    let x_nominal = net.nominal_reactances();
    let x0: Vec<f64> = dfacts.iter().map(|&l| x_pre[l]).collect();

    let objective = |cand: &[f64]| {
        let x = assemble(&x_nominal, &dfacts, cand);
        match net
            .measurement_matrix(&x)
            .map_err(MtdError::from)
            .and_then(|h| gamma_basis.gamma_to(&h))
        {
            Ok(g) => -g,
            Err(_) => f64::INFINITY,
        }
    };
    let result = multistart(
        objective,
        &x0,
        &lo,
        &hi,
        cfg.n_starts.max(1),
        cfg.seed,
        &cfg.nm_options(),
    );
    let x = assemble(&x_nominal, &dfacts, &result.x);
    Ok((x, -result.f))
}

/// Solves the SPA-constrained OPF of problem (4):
///
/// ```text
/// min_{g', x'}  Σ Cᵢ(G'ᵢ)
/// s.t.          γ(H_t, H'(x')) ≥ γ_th
///               DC-OPF constraints at x'
///               x' within D-FACTS limits
/// ```
///
/// The inner dispatch problem is an exact LP; the outer nonconvex search
/// over `x'` uses multistart Nelder–Mead with an adaptive exterior
/// penalty on the angle constraint.
///
/// # Errors
///
/// * [`MtdError::ThresholdUnreachable`] if no perturbation within the
///   D-FACTS limits attains `γ_th` (use [`max_achievable_gamma`] to find
///   the ceiling).
/// * [`MtdError::Infeasible`] if the OPF is infeasible for every
///   candidate.
pub fn select_mtd(
    net: &Network,
    x_pre: &[f64],
    gamma_th: f64,
    cfg: &MtdConfig,
) -> Result<MtdSelection, MtdError> {
    let h_pre = net.measurement_matrix(x_pre)?;
    let gamma_basis = spa::GammaBasis::new(&h_pre)?;
    select_mtd_with(net, x_pre, &h_pre, &gamma_basis, gamma_th, cfg)
}

/// [`select_mtd`] with a precomputed pre-perturbation matrix and its
/// cached QR basis.
///
/// The timeline tuner evaluates several `γ_th` candidates against the
/// *same* `H(x_pre)` each hour; hoisting the matrix build and the QR
/// factorization out of the candidate loop removes the dominant
/// per-candidate setup cost without changing a single float (the basis
/// is a pure function of `h_pre`).
///
/// # Errors
///
/// See [`select_mtd`].
pub fn select_mtd_with(
    net: &Network,
    x_pre: &[f64],
    h_pre: &gridmtd_linalg::Matrix,
    gamma_basis: &spa::GammaBasis,
    gamma_th: f64,
    cfg: &MtdConfig,
) -> Result<MtdSelection, MtdError> {
    select_mtd_impl(
        net,
        x_pre,
        h_pre,
        gamma_basis,
        gamma_th,
        cfg,
        &PfContext::new(),
    )
}

/// [`select_mtd_with`] additionally seeded with a power-flow context
/// prototype: every OPF context created inside (one per multistart
/// start, plus the pricing and audit solves) starts from a *clone* of
/// `pf_proto`, so a primed prototype (see
/// [`gridmtd_powergrid::dcpf::PfContext::prime`]) shares one symbolic
/// factorization across the whole search. Cloning an unprimed prototype
/// is exactly a fresh context, and a primed clone's solves are pinned
/// bit-identical to cold ones — either way the selection is bit-for-bit
/// the historical one.
pub(crate) fn select_mtd_impl(
    net: &Network,
    x_pre: &[f64],
    h_pre: &gridmtd_linalg::Matrix,
    gamma_basis: &spa::GammaBasis,
    gamma_th: f64,
    cfg: &MtdConfig,
    pf_proto: &PfContext,
) -> Result<MtdSelection, MtdError> {
    let dfacts = net.dfacts_branches();
    let (lo_full, hi_full) = net.reactance_bounds(cfg.eta_max);
    let lo: Vec<f64> = dfacts.iter().map(|&l| lo_full[l]).collect();
    let hi: Vec<f64> = dfacts.iter().map(|&l| hi_full[l]).collect();
    let x_nominal = net.nominal_reactances();
    let x0: Vec<f64> = dfacts.iter().map(|&l| x_pre[l]).collect();
    let opf_opts = cfg.opf_options();

    // Cost scale for the penalty weight: the unperturbed OPF cost.
    let base_cost = match solve_opf_with(
        net,
        x_pre,
        &opf_opts,
        &mut OpfContext::with_pf(pf_proto.clone()),
    ) {
        Ok(s) => s.cost,
        Err(OpfError::Infeasible) => return Err(MtdError::Infeasible),
        Err(e) => return Err(e.into()),
    };

    const INFEASIBLE_COST: f64 = 1e15;
    let mut penalty_weight = 1_000.0 * base_cost.max(1.0);
    // Tie-breaking regularizer: when the cost surface is flat (no
    // congestion), prefer the *least* perturbation that meets the
    // threshold. This keeps the achieved angle tight against γ_th —
    // matching how the paper reports its sweeps. The reported OPF cost
    // is evaluated at the selected point without any penalty terms, so
    // the economics stay exact.
    let proximity_weight = 0.5 * base_cost.max(1.0);
    let tol = 1e-3;

    for round in 0..4 {
        // Each start builds its own objective around a private
        // [`OpfContext`], so the hundreds of DC-OPFs along one
        // Nelder–Mead trajectory warm-start from the previous basis —
        // and the per-start state keeps parallel and serial multistart
        // executions bit-identical. The objectives capture shared data
        // by reference (`&` bindings below) and only own their context.
        let (x_nominal, dfacts, gamma_basis) = (&x_nominal, &dfacts, &gamma_basis);
        let objective_for = |_start: usize| {
            let mut ctx = OpfContext::with_pf(pf_proto.clone());
            move |cand: &[f64]| {
                let x = assemble(x_nominal, dfacts, cand);
                let cost = match solve_opf_with(net, &x, &opf_opts, &mut ctx) {
                    Ok(s) => s.cost,
                    Err(_) => return INFEASIBLE_COST,
                };
                // The conservative fast estimate keeps the penalty honest
                // (never reports more angle than really achieved); the
                // accepted point is re-audited with the exact γ below.
                let g = match net
                    .measurement_matrix(&x)
                    .map_err(MtdError::from)
                    .and_then(|h| gamma_basis.gamma_to_approx(&h))
                {
                    Ok(g) => g,
                    Err(_) => return INFEASIBLE_COST,
                };
                let deficit = (gamma_th - g).max(0.0);
                let overshoot = (g - gamma_th).max(0.0);
                cost + penalty_weight * deficit * deficit + proximity_weight * overshoot * overshoot
            }
        };
        // Calibrated simplex size for the reactance box: large enough to
        // move γ off the warm start's 0, small enough not to leap far
        // past small thresholds.
        let nm = gridmtd_opf::NelderMeadOptions {
            initial_step: 0.12,
            ..cfg.nm_options()
        };
        let result = multistart_stateful(
            objective_for,
            &x0,
            &lo,
            &hi,
            cfg.n_starts.max(1),
            crate::seedstream::domain(cfg.seed, round),
            &nm,
        );
        if result.f >= INFEASIBLE_COST {
            return Err(MtdError::Infeasible);
        }
        let x_post = assemble(x_nominal, dfacts, &result.x);
        let h_post = net.measurement_matrix(&x_post)?;
        let gamma = spa::gamma(h_pre, &h_post)?;
        if gamma + tol >= gamma_th {
            let opf = solve_opf_with(
                net,
                &x_post,
                &opf_opts,
                &mut OpfContext::with_pf(pf_proto.clone()),
            )?;
            return Ok(MtdSelection {
                x_post,
                gamma,
                gamma_threshold: gamma_th,
                opf,
            });
        }
        penalty_weight *= 25.0;
    }

    // Threshold appears unreachable; report the ceiling.
    let (_, ceiling) = max_achievable_gamma_with(net, x_pre, gamma_basis, cfg)?;
    Err(MtdError::ThresholdUnreachable {
        requested: gamma_th,
        achieved: ceiling,
    })
}

/// The paper's pre-perturbation baseline: problem (1) optimized over both
/// dispatch *and* D-FACTS reactances (footnote 1 / Section IV). Returns
/// the optimal reactance vector and its OPF solution.
///
/// With linear costs and light congestion the objective is flat in `x`,
/// so the search warm-starts from `x_start` and stays there unless
/// reactance adjustments genuinely reduce cost.
///
/// # Errors
///
/// Propagates OPF failures.
pub fn baseline_opf(
    net: &Network,
    x_start: &[f64],
    cfg: &MtdConfig,
) -> Result<(Vec<f64>, OpfSolution), MtdError> {
    baseline_opf_impl(net, x_start, cfg, &PfContext::new())
}

/// [`baseline_opf`] seeded with a power-flow context prototype (see
/// [`select_mtd_impl`] for the cloning/bit-identity contract).
pub(crate) fn baseline_opf_impl(
    net: &Network,
    x_start: &[f64],
    cfg: &MtdConfig,
    pf_proto: &PfContext,
) -> Result<(Vec<f64>, OpfSolution), MtdError> {
    let dfacts = net.dfacts_branches();
    let (lo_full, hi_full) = net.reactance_bounds(cfg.eta_max);
    let lo: Vec<f64> = dfacts.iter().map(|&l| lo_full[l]).collect();
    let hi: Vec<f64> = dfacts.iter().map(|&l| hi_full[l]).collect();
    let x_nominal = net.nominal_reactances();
    let x0: Vec<f64> = dfacts.iter().map(|&l| x_start[l]).collect();
    let opf_opts = cfg.opf_options();

    const INFEASIBLE_COST: f64 = 1e15;
    let mut ctx = OpfContext::with_pf(pf_proto.clone());
    let objective = |cand: &[f64]| {
        let x = assemble(&x_nominal, &dfacts, cand);
        match solve_opf_with(net, &x, &opf_opts, &mut ctx) {
            Ok(s) => s.cost,
            Err(_) => INFEASIBLE_COST,
        }
    };
    // Warm-started local search only: a flat objective should not wander.
    let result = gridmtd_opf::nelder_mead(objective, &x0, &lo, &hi, &cfg.nm_options());
    if result.f >= INFEASIBLE_COST {
        return Err(MtdError::Infeasible);
    }
    let x = assemble(&x_nominal, &dfacts, &result.x);
    let opf = solve_opf_with(
        net,
        &x,
        &opf_opts,
        &mut OpfContext::with_pf(pf_proto.clone()),
    )?;
    Ok((x, opf))
}

/// A pre-perturbation D-FACTS setting at a corner of the reactance box,
/// chosen so that the *opposite* corner is as far from it (in subspace
/// angle) as possible.
///
/// Rationale: the paper's pre-perturbation reactances come from solving
/// OPF (1) with `fmincon`/MultiStart over the D-FACTS box. When the cost
/// is flat in `x` (linear costs, light congestion) any box point is an
/// optimal solution, and the paper's reported attainable range
/// (`γ` up to ≈ 0.45 rad on IEEE-14) is only reachable when `x_t` itself
/// sits away from the box centre. This helper deterministically picks
/// such a point so experiments can reproduce the full range; from the
/// nominal (centre) point the ceiling is ≈ 0.26 rad.
///
/// For more than 12 D-FACTS lines the corner search is sampled instead
/// of exhaustive.
///
/// # Panics
///
/// Panics if `eta_max` is not in `(0, 1)`.
pub fn spread_pre_perturbation(net: &Network, eta_max: f64) -> Vec<f64> {
    assert!(
        eta_max > 0.0 && eta_max < 1.0,
        "eta_max must be in (0,1), got {eta_max}"
    );
    let dfacts = net.dfacts_branches();
    let x_nominal = net.nominal_reactances();
    let k = dfacts.len();
    if k == 0 {
        return x_nominal;
    }
    let corner = |pattern: u64| -> Vec<f64> {
        let mut x = x_nominal.clone();
        for (bit, &l) in dfacts.iter().enumerate() {
            let up = pattern >> bit & 1 == 1;
            x[l] *= if up { 1.0 + eta_max } else { 1.0 - eta_max };
        }
        x
    };
    let patterns: Vec<u64> = if k <= 12 {
        (0..(1u64 << k)).collect()
    } else {
        // Deterministic low-discrepancy sample of corners.
        (0..4096u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect()
    };
    let mask = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
    let mut best_pattern = 0u64;
    let mut best_gamma = -1.0;
    for &p in &patterns {
        let p = p & mask;
        let h_a = match net.measurement_matrix(&corner(p)) {
            Ok(h) => h,
            Err(_) => continue,
        };
        let h_b = match net.measurement_matrix(&corner(!p & mask)) {
            Ok(h) => h,
            Err(_) => continue,
        };
        if let Ok(g) = spa::gamma(&h_a, &h_b) {
            if g > best_gamma {
                best_gamma = g;
                best_pattern = p;
            }
        }
    }
    corner(best_pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_perturbation_touches_only_dfacts_lines() {
        let net = cases::case14();
        let x0 = net.nominal_reactances();
        let mut rng = StdRng::seed_from_u64(5);
        let x = random_perturbation(&net, &x0, 0.02, &mut rng);
        let dfacts = net.dfacts_branches();
        for l in 0..net.n_branches() {
            if dfacts.contains(&l) {
                assert!((x[l] / x0[l] - 1.0).abs() <= 0.02 + 1e-12);
            } else {
                assert_eq!(x[l], x0[l]);
            }
        }
    }

    #[test]
    fn max_gamma_is_substantial_for_case14() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let (x, g) = max_achievable_gamma(&net, &x0, &cfg).unwrap();
        // From the nominal point the box-corner ceiling is ≈ 0.259 rad;
        // the paper's full [0, 0.45] range arises when the
        // pre-perturbation reactances themselves sit inside the D-FACTS
        // box (see `pair_of_box_points_reaches_the_papers_range`).
        assert!(g > 0.2, "max gamma {g}");
        // Bounds respected.
        let (lo, hi) = net.reactance_bounds(cfg.eta_max);
        for l in 0..net.n_branches() {
            assert!(x[l] >= lo[l] - 1e-12 && x[l] <= hi[l] + 1e-12);
        }
    }

    #[test]
    fn select_mtd_meets_threshold_with_bounded_cost() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let sel = select_mtd(&net, &x0, 0.15, &cfg).unwrap();
        assert!(sel.gamma >= 0.15 - 1e-3, "gamma {}", sel.gamma);
        assert_eq!(sel.gamma_threshold, 0.15);
        // Cost can only grow relative to the γ_th = 0 relaxation solved
        // by the same optimizer (a fixed-reactance or locally-optimized
        // baseline may converge to a different basin, so those are not
        // valid lower bounds).
        // Both runs are heuristic multistart searches, so allow a small
        // basin-to-basin tolerance.
        let relaxed = select_mtd(&net, &x0, 0.0, &cfg).unwrap();
        assert!(
            sel.opf.cost >= relaxed.opf.cost * 0.99 - 1e-6,
            "{} vs {}",
            sel.opf.cost,
            relaxed.opf.cost
        );
    }

    #[test]
    fn pair_of_box_points_reaches_the_papers_range() {
        // With the pre-perturbation reactances themselves at a D-FACTS
        // box point (a legitimate solution of the cost-flat OPF (1)),
        // the attainable angle matches the paper's ≈ 0.45 rad ceiling.
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x_pre = spread_pre_perturbation(&net, cfg.eta_max);
        let (_, g) = max_achievable_gamma(&net, &x_pre, &cfg).unwrap();
        assert!(g > 0.4, "corner-based ceiling {g}");
    }

    #[test]
    fn zero_threshold_recovers_unconstrained_cost() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let sel = select_mtd(&net, &x0, 0.0, &cfg).unwrap();
        let base = gridmtd_opf::solve_opf(&net, &x0, &cfg.opf_options())
            .unwrap()
            .cost;
        assert!(
            sel.opf.cost <= base * 1.001 + 1e-6,
            "unconstrained selection should not cost more: {} vs {base}",
            sel.opf.cost
        );
        assert!(sel.gamma >= 0.0);
    }

    #[test]
    fn unreachable_threshold_is_reported() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let err = select_mtd(&net, &x0, 1.5, &cfg).unwrap_err();
        match err {
            MtdError::ThresholdUnreachable {
                requested,
                achieved,
            } => {
                assert_eq!(requested, 1.5);
                assert!(achieved < 1.5);
            }
            other => panic!("expected ThresholdUnreachable, got {other:?}"),
        }
    }

    #[test]
    fn baseline_opf_stays_at_warm_start_when_flat() {
        // Lightly-loaded case14: cost is flat in x → baseline keeps x0.
        let net = cases::case14().scale_loads(0.6);
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let (x, opf) = baseline_opf(&net, &x0, &cfg).unwrap();
        let direct = gridmtd_opf::solve_opf(&net, &x0, &cfg.opf_options()).unwrap();
        assert!((opf.cost - direct.cost).abs() < 1e-6);
        // x stays close to the warm start in flat regions.
        for l in 0..net.n_branches() {
            assert!((x[l] - x0[l]).abs() < 0.35 * x0[l] + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0,1)")]
    fn random_perturbation_validates_fraction() {
        let net = cases::case4();
        let x0 = net.nominal_reactances();
        let mut rng = StdRng::seed_from_u64(0);
        random_perturbation(&net, &x0, 0.0, &mut rng);
    }
}
