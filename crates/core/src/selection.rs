//! MTD perturbation selection.
//!
//! Three strategies, in increasing order of sophistication:
//!
//! 1. [`random_perturbation`] — the state-of-the-art baseline of the
//!    papers the authors compare against ([11–13]): pick random reactance
//!    perturbations within a small percentage of the current values. The
//!    paper's Figs. 7–8 show this cannot guarantee effectiveness.
//! 2. [`max_achievable_gamma`] — maximize the subspace angle
//!    `γ(H, H')` irrespective of cost, to find the feasible range of
//!    `γ_th` (used to bound the tradeoff sweep).
//! 3. [`select_mtd`] — the paper's problem (4): minimize OPF cost
//!    subject to `γ(H_t, H'(x')) ≥ γ_th` and the DC-OPF constraints,
//!    with an adaptive exterior penalty on the angle constraint. The
//!    outer minimizer is chosen by [`MtdConfig::selection_method`]:
//!    the default drives each start with projected L-BFGS on **analytic
//!    gradients** — OPF cost differentiated through the LP duals
//!    (envelope theorem), `sin²γ` through the measurement-matrix stamps
//!    and the differentiable subspace-angle state — and falls back to
//!    the derivative-free multistart Nelder–Mead (the equivalent of the
//!    paper's fmincon/MultiStart) if the gradient rounds fail to reach
//!    the threshold.

use gridmtd_opf::{
    multistart, multistart_lbfgs_threads, multistart_stateful, solve_opf_grad_with, solve_opf_with,
    OpfContext, OpfError, OpfOptions, OpfSolution,
};
use gridmtd_powergrid::{dcpf::PfContext, GridError, Network};
use rand::Rng;

use crate::{spa, MtdConfig, MtdError, SelectionMethod};

/// A selected MTD perturbation with its audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct MtdSelection {
    /// Full post-perturbation reactance vector (all branches).
    pub x_post: Vec<f64>,
    /// Achieved subspace angle `γ(H_pre, H_post)`.
    pub gamma: f64,
    /// Requested threshold `γ_th`.
    pub gamma_threshold: f64,
    /// Post-perturbation OPF at `x_post`.
    pub opf: OpfSolution,
}

/// The random-perturbation baseline of [11–13]: each D-FACTS line's
/// reactance is multiplied by `1 + U(−fraction, +fraction)`.
///
/// The paper's comparison uses `fraction = 0.02` (perturbations within 2%
/// of the optimal settings, to keep their cost negligible).
///
/// # Errors
///
/// * [`MtdError::InvalidConfig`] if `fraction` is not in `(0, 1)` —
///   study drivers feed this straight from user-supplied scenario specs,
///   so it must surface as a typed, recoverable error rather than a
///   panic;
/// * [`MtdError::Grid`] if `x_base` has the wrong length.
pub fn random_perturbation<R: Rng + ?Sized>(
    net: &Network,
    x_base: &[f64],
    fraction: f64,
    rng: &mut R,
) -> Result<Vec<f64>, MtdError> {
    if !(fraction > 0.0 && fraction < 1.0) {
        return Err(MtdError::InvalidConfig {
            field: "fraction",
            value: fraction,
        });
    }
    if x_base.len() != net.n_branches() {
        return Err(MtdError::Grid(GridError::DimensionMismatch {
            what: "reactance vector",
            expected: net.n_branches(),
            actual: x_base.len(),
        }));
    }
    let mut x = x_base.to_vec();
    for l in net.dfacts_branches() {
        x[l] *= 1.0 + rng.gen_range(-fraction..fraction);
    }
    Ok(x)
}

/// Builds the full reactance vector from a candidate D-FACTS sub-vector.
fn assemble(x_nominal: &[f64], dfacts: &[usize], candidate: &[f64]) -> Vec<f64> {
    let mut x = x_nominal.to_vec();
    for (k, &l) in dfacts.iter().enumerate() {
        x[l] = candidate[k];
    }
    x
}

/// Maximizes `γ(H(x_pre), H(x))` over the D-FACTS box, ignoring cost.
///
/// Returns the maximizing reactance vector and the achieved angle — the
/// feasibility ceiling for any `γ_th` passed to [`select_mtd`].
///
/// # Errors
///
/// Propagates model failures.
pub fn max_achievable_gamma(
    net: &Network,
    x_pre: &[f64],
    cfg: &MtdConfig,
) -> Result<(Vec<f64>, f64), MtdError> {
    let h_pre = net.measurement_matrix(x_pre)?;
    let gamma_basis = spa::GammaBasis::new(&h_pre)?;
    max_achievable_gamma_with(net, x_pre, &gamma_basis, cfg)
}

/// [`max_achievable_gamma`] with a precomputed QR basis of `H(x_pre)` —
/// the hoisted path for callers (the session, the tradeoff sweep) that
/// already hold the basis. The basis is a pure function of `H(x_pre)`,
/// so the result is bit-identical to the self-contained variant.
///
/// # Errors
///
/// [`MtdError::InvalidConfig`] if `cfg.eta_max` lies outside `(0, 1)`
/// (the reactance box would be inverted or admit non-positive
/// reactances); otherwise propagates model failures.
pub fn max_achievable_gamma_with(
    net: &Network,
    x_pre: &[f64],
    gamma_basis: &spa::GammaBasis,
    cfg: &MtdConfig,
) -> Result<(Vec<f64>, f64), MtdError> {
    if !(cfg.eta_max > 0.0 && cfg.eta_max < 1.0) {
        return Err(MtdError::InvalidConfig {
            field: "eta_max",
            value: cfg.eta_max,
        });
    }
    let dfacts = net.dfacts_branches();
    let (lo_full, hi_full) = net.reactance_bounds(cfg.eta_max);
    let lo: Vec<f64> = dfacts.iter().map(|&l| lo_full[l]).collect();
    let hi: Vec<f64> = dfacts.iter().map(|&l| hi_full[l]).collect();
    let x_nominal = net.nominal_reactances();
    let x0: Vec<f64> = dfacts.iter().map(|&l| x_pre[l]).collect();

    let objective = |cand: &[f64]| {
        let x = assemble(&x_nominal, &dfacts, cand);
        match net
            .measurement_matrix(&x)
            .map_err(MtdError::from)
            .and_then(|h| gamma_basis.gamma_to(&h))
        {
            Ok(g) => -g,
            Err(_) => f64::INFINITY,
        }
    };
    let result = multistart(
        objective,
        &x0,
        &lo,
        &hi,
        cfg.n_starts.max(1),
        cfg.seed,
        &cfg.nm_options(),
    );
    let x = assemble(&x_nominal, &dfacts, &result.x);
    Ok((x, -result.f))
}

/// Solves the SPA-constrained OPF of problem (4):
///
/// ```text
/// min_{g', x'}  Σ Cᵢ(G'ᵢ)
/// s.t.          γ(H_t, H'(x')) ≥ γ_th
///               DC-OPF constraints at x'
///               x' within D-FACTS limits
/// ```
///
/// The inner dispatch problem is an exact LP; the outer nonconvex search
/// over `x'` uses multistart Nelder–Mead with an adaptive exterior
/// penalty on the angle constraint.
///
/// # Errors
///
/// * [`MtdError::ThresholdUnreachable`] if no perturbation within the
///   D-FACTS limits attains `γ_th` (use [`max_achievable_gamma`] to find
///   the ceiling).
/// * [`MtdError::Infeasible`] if the OPF is infeasible for every
///   candidate.
pub fn select_mtd(
    net: &Network,
    x_pre: &[f64],
    gamma_th: f64,
    cfg: &MtdConfig,
) -> Result<MtdSelection, MtdError> {
    let h_pre = net.measurement_matrix(x_pre)?;
    let gamma_basis = spa::GammaBasis::new(&h_pre)?;
    select_mtd_with(net, x_pre, &h_pre, &gamma_basis, gamma_th, cfg)
}

/// [`select_mtd`] with a precomputed pre-perturbation matrix and its
/// cached QR basis.
///
/// The timeline tuner evaluates several `γ_th` candidates against the
/// *same* `H(x_pre)` each hour; hoisting the matrix build and the QR
/// factorization out of the candidate loop removes the dominant
/// per-candidate setup cost without changing a single float (the basis
/// is a pure function of `h_pre`).
///
/// # Errors
///
/// See [`select_mtd`].
pub fn select_mtd_with(
    net: &Network,
    x_pre: &[f64],
    h_pre: &gridmtd_linalg::Matrix,
    gamma_basis: &spa::GammaBasis,
    gamma_th: f64,
    cfg: &MtdConfig,
) -> Result<MtdSelection, MtdError> {
    select_mtd_impl(
        net,
        x_pre,
        h_pre,
        gamma_basis,
        gamma_th,
        cfg,
        &PfContext::new(),
    )
}

/// [`select_mtd_with`] additionally seeded with a power-flow context
/// prototype: every OPF context created inside (one per multistart
/// start, plus the pricing and audit solves) starts from a *clone* of
/// one internal [`OpfContext`] built around `pf_proto`, so a primed
/// prototype (see [`gridmtd_powergrid::dcpf::PfContext::prime`]) shares
/// one symbolic factorization across the whole search and the baseline
/// solve's simplex basis warm-starts every start's first LP. The
/// prototype is rebuilt from `pf_proto` identically on every call, so
/// repeated selections with the same inputs remain bit-identical
/// regardless of how warm the supplied `pf_proto` is.
pub(crate) fn select_mtd_impl(
    net: &Network,
    x_pre: &[f64],
    h_pre: &gridmtd_linalg::Matrix,
    gamma_basis: &spa::GammaBasis,
    gamma_th: f64,
    cfg: &MtdConfig,
    pf_proto: &PfContext,
) -> Result<MtdSelection, MtdError> {
    let baseline = prepare_baseline(net, x_pre, cfg, pf_proto)?;
    select_mtd_seeded(net, x_pre, h_pre, gamma_basis, gamma_th, cfg, &baseline)
}

/// Baseline OPF state at `x_pre`, reusable across selections against the
/// same network, reactances and OPF options.
///
/// Carries the unperturbed cost (the penalty scale of the selection
/// objective) together with the post-solve [`OpfContext`] — the shared
/// power-flow symbolic factorization *plus* the simplex basis the
/// baseline solve certified. [`prepare_baseline`] performs exactly the
/// arithmetic `select_mtd_impl` would, so a selection seeded with a
/// cached baseline is bit-identical to one that recomputes it — the
/// session can therefore hoist the one cold LP solve (hundreds of
/// milliseconds at case118 size) out of every warm `select` call.
#[derive(Debug, Clone)]
pub(crate) struct BaselineState {
    ctx: OpfContext,
    cost: f64,
}

/// Solves the baseline OPF at `x_pre` and captures the warmed context
/// for [`select_mtd_seeded`].
///
/// # Errors
///
/// [`MtdError::Infeasible`] if the unperturbed OPF has no feasible
/// dispatch; otherwise propagates solver failures.
pub(crate) fn prepare_baseline(
    net: &Network,
    x_pre: &[f64],
    cfg: &MtdConfig,
    pf_proto: &PfContext,
) -> Result<BaselineState, MtdError> {
    let mut ctx = OpfContext::with_pf(pf_proto.clone());
    let cost = match solve_opf_with(net, x_pre, &cfg.opf_options(), &mut ctx) {
        Ok(s) => s.cost,
        Err(OpfError::Infeasible) => return Err(MtdError::Infeasible),
        Err(e) => return Err(e.into()),
    };
    Ok(BaselineState { ctx, cost })
}

/// [`select_mtd_impl`] with the baseline solve already done: the search
/// starts from a clone of `baseline`'s warmed context and its cached
/// cost scale.
pub(crate) fn select_mtd_seeded(
    net: &Network,
    x_pre: &[f64],
    h_pre: &gridmtd_linalg::Matrix,
    gamma_basis: &spa::GammaBasis,
    gamma_th: f64,
    cfg: &MtdConfig,
    baseline: &BaselineState,
) -> Result<MtdSelection, MtdError> {
    if !(cfg.eta_max > 0.0 && cfg.eta_max < 1.0) {
        return Err(MtdError::InvalidConfig {
            field: "eta_max",
            value: cfg.eta_max,
        });
    }
    let search = SearchSetup::build(net, x_pre, cfg, baseline);
    match cfg.selection_method {
        SelectionMethod::Gradient => {
            if let Some(sel) = run_gradient(&search, h_pre, gamma_basis, gamma_th)? {
                return Ok(sel);
            }
            // The gradient rounds never met the threshold (e.g. every
            // descent path stalled at a stationary shoulder of sin²γ).
            // The derivative-free search explores more aggressively, so
            // give it the final word before declaring the threshold
            // unreachable.
            run_nelder_mead(&search, h_pre, gamma_basis, gamma_th)
        }
        SelectionMethod::NelderMead => run_nelder_mead(&search, h_pre, gamma_basis, gamma_th),
    }
}

/// Shared setup for both selection strategies: the D-FACTS box, the
/// nominal assembly template and the unperturbed cost scale.
struct SearchSetup<'a> {
    net: &'a Network,
    x_pre: &'a [f64],
    cfg: &'a MtdConfig,
    /// OPF context prototype: carries the shared symbolic power-flow
    /// factorization *and* the simplex basis certified by the baseline
    /// solve at `x_pre`. Every optimizer start and every audit clones
    /// it, so even their first LP solve prices a nearby basis instead of
    /// rerunning the two-phase cold path — on case118 that basis is
    /// ~500 rows and the cold path costs ~100× a warm one.
    opf_proto: OpfContext,
    dfacts: Vec<usize>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    x_nominal: Vec<f64>,
    opf_opts: OpfOptions,
    /// Cost scale for the penalty weight: the unperturbed OPF cost.
    base_cost: f64,
}

impl<'a> SearchSetup<'a> {
    fn build(
        net: &'a Network,
        x_pre: &'a [f64],
        cfg: &'a MtdConfig,
        baseline: &BaselineState,
    ) -> SearchSetup<'a> {
        let dfacts = net.dfacts_branches();
        let (lo_full, hi_full) = net.reactance_bounds(cfg.eta_max);
        let lo: Vec<f64> = dfacts.iter().map(|&l| lo_full[l]).collect();
        let hi: Vec<f64> = dfacts.iter().map(|&l| hi_full[l]).collect();
        SearchSetup {
            net,
            x_pre,
            cfg,
            opf_proto: baseline.ctx.clone(),
            dfacts,
            lo,
            hi,
            x_nominal: net.nominal_reactances(),
            opf_opts: cfg.opf_options(),
            base_cost: baseline.cost,
        }
    }

    /// Audits a candidate with the exact γ and, if it meets the
    /// threshold, prices it with a penalty-free OPF.
    fn audit(
        &self,
        h_pre: &gridmtd_linalg::Matrix,
        gamma_th: f64,
        cand: &[f64],
    ) -> Result<Option<MtdSelection>, MtdError> {
        const TOL: f64 = 1e-3;
        let x_post = assemble(&self.x_nominal, &self.dfacts, cand);
        let h_post = self.net.measurement_matrix(&x_post)?;
        let gamma = spa::gamma(h_pre, &h_post)?;
        if gamma + TOL < gamma_th {
            return Ok(None);
        }
        let opf = solve_opf_with(
            self.net,
            &x_post,
            &self.opf_opts,
            &mut self.opf_proto.clone(),
        )?;
        Ok(Some(MtdSelection {
            x_post,
            gamma,
            gamma_threshold: gamma_th,
            opf,
        }))
    }
}

/// The gradient strategy: multistart projected L-BFGS on the penalized
/// objective, with the penalty expressed in `sin²γ` (the analytically
/// differentiable form of the angle).
///
/// Per evaluation the objective costs one warm DC-OPF plus one
/// generalized eigensolve; the gradient adds one dual recovery on the
/// already-factored LP basis and O(1) stamp work per D-FACTS branch —
/// line-search trials skip both. Returns `Ok(None)` when no penalty
/// round produced a candidate passing the exact-γ audit, so the caller
/// can fall back to the derivative-free search.
fn run_gradient(
    search: &SearchSetup<'_>,
    h_pre: &gridmtd_linalg::Matrix,
    gamma_basis: &spa::GammaBasis,
    gamma_th: f64,
) -> Result<Option<MtdSelection>, MtdError> {
    let SearchSetup {
        net,
        x_pre,
        cfg,
        opf_proto,
        dfacts,
        lo,
        hi,
        x_nominal,
        opf_opts,
        base_cost,
    } = search;
    let net = *net;
    let s_th = gamma_th.sin().powi(2);
    let mut penalty_weight = 1_000.0 * base_cost.max(1.0);
    let proximity_weight = 0.5 * base_cost.max(1.0);

    // `x_pre` itself is useless as a warm start here: γ(H, H) = 0 is a
    // global *minimum* of the smooth surface sin²γ, so its gradient
    // vanishes there and the penalty exerts no pull at all — descent
    // would simply polish the cost and return with γ ≈ 0. Start 0
    // instead nudges the D-FACTS reactances with alternating signs
    // (uniform scaling would stay inside Col(H) and keep γ = 0; sign
    // mixing is what rotates the column space). Starts > 0 draw random
    // interior points exactly like the Nelder–Mead multistart.
    let x0: Vec<f64> = dfacts
        .iter()
        .enumerate()
        .map(|(k, &l)| {
            let dir = if k % 2 == 0 { 1.0 } else { -1.0 };
            (x_pre[l] * (1.0 + dir * 0.5 * cfg.eta_max)).clamp(lo[k], hi[k])
        })
        .collect();

    let threads = gridmtd_opf::parallel::available_threads();
    for round in 0..4 {
        let (x_nominal, dfacts, gamma_basis) = (x_nominal, dfacts, gamma_basis);
        let objective_for = |_start: usize| {
            let mut ctx = opf_proto.clone();
            move |cand: &[f64], grad: Option<&mut [f64]>| -> f64 {
                let x = assemble(x_nominal, dfacts, cand);
                let (cost, cost_grad) = if grad.is_some() {
                    match solve_opf_grad_with(net, &x, opf_opts, &mut ctx) {
                        Ok((sol, g)) => (sol.cost, g),
                        Err(_) => return f64::INFINITY,
                    }
                } else {
                    match solve_opf_with(net, &x, opf_opts, &mut ctx) {
                        Ok(sol) => (sol.cost, Vec::new()),
                        Err(_) => return f64::INFINITY,
                    }
                };
                let state = match net
                    .measurement_matrix(&x)
                    .map_err(MtdError::from)
                    .and_then(|h| gamma_basis.sin_sq_to(&h))
                {
                    Ok(st) => st,
                    Err(_) => return f64::INFINITY,
                };
                let s = state.value();
                let deficit = (s_th - s).max(0.0);
                let overshoot = (s - s_th).max(0.0);
                if let Some(g) = grad {
                    let dpen_ds =
                        -2.0 * penalty_weight * deficit + 2.0 * proximity_weight * overshoot;
                    for (k, &l) in dfacts.iter().enumerate() {
                        let ds = match net.measurement_matrix_derivative(&x, l) {
                            Ok(stamps) => state.gradient_entry(&stamps),
                            Err(_) => return f64::INFINITY,
                        };
                        g[k] = cost_grad[l] + dpen_ds * ds;
                    }
                }
                cost + penalty_weight * deficit * deficit + proximity_weight * overshoot * overshoot
            }
        };
        let result = multistart_lbfgs_threads(
            objective_for,
            &x0,
            lo,
            hi,
            cfg.n_starts.max(1),
            crate::seedstream::domain(cfg.seed, round),
            &cfg.lbfgs_options(),
            threads,
        );
        // Every start diverged or every evaluation failed (an OPF or
        // eigensolve error maps to +∞ in the objective). That is a
        // statement about *this strategy's* trajectory, not about the
        // problem: report "no candidate" so the caller's Nelder–Mead
        // fallback gets its chance before any error is declared.
        if !result.f.is_finite() {
            return Ok(None);
        }
        if let Some(sel) = search.audit(h_pre, gamma_th, &result.x)? {
            return Ok(Some(sel));
        }
        penalty_weight *= 25.0;
    }
    Ok(None)
}

/// The derivative-free strategy: multistart Nelder–Mead on the same
/// penalized objective expressed in γ directly.
fn run_nelder_mead(
    search: &SearchSetup<'_>,
    h_pre: &gridmtd_linalg::Matrix,
    gamma_basis: &spa::GammaBasis,
    gamma_th: f64,
) -> Result<MtdSelection, MtdError> {
    let SearchSetup {
        net,
        x_pre,
        cfg,
        opf_proto,
        dfacts,
        lo,
        hi,
        x_nominal,
        opf_opts,
        base_cost,
    } = search;
    let net = *net;
    let x0: Vec<f64> = dfacts.iter().map(|&l| x_pre[l]).collect();

    const INFEASIBLE_COST: f64 = 1e15;
    let mut penalty_weight = 1_000.0 * base_cost.max(1.0);
    // Tie-breaking regularizer: when the cost surface is flat (no
    // congestion), prefer the *least* perturbation that meets the
    // threshold. This keeps the achieved angle tight against γ_th —
    // matching how the paper reports its sweeps. The reported OPF cost
    // is evaluated at the selected point without any penalty terms, so
    // the economics stay exact.
    let proximity_weight = 0.5 * base_cost.max(1.0);

    for round in 0..4 {
        // Each start builds its own objective around a private
        // [`OpfContext`], so the hundreds of DC-OPFs along one
        // Nelder–Mead trajectory warm-start from the previous basis —
        // and the per-start state keeps parallel and serial multistart
        // executions bit-identical. The objectives capture shared data
        // by reference (`&` bindings below) and only own their context.
        let (x_nominal, dfacts) = (x_nominal, dfacts);
        let objective_for = |_start: usize| {
            let mut ctx = opf_proto.clone();
            move |cand: &[f64]| {
                let x = assemble(x_nominal, dfacts, cand);
                let cost = match solve_opf_with(net, &x, opf_opts, &mut ctx) {
                    Ok(s) => s.cost,
                    Err(_) => return INFEASIBLE_COST,
                };
                // The conservative fast estimate keeps the penalty honest
                // (never reports more angle than really achieved); the
                // accepted point is re-audited with the exact γ below.
                let g = match net
                    .measurement_matrix(&x)
                    .map_err(MtdError::from)
                    .and_then(|h| gamma_basis.gamma_to_approx(&h))
                {
                    Ok(g) => g,
                    Err(_) => return INFEASIBLE_COST,
                };
                let deficit = (gamma_th - g).max(0.0);
                let overshoot = (g - gamma_th).max(0.0);
                cost + penalty_weight * deficit * deficit + proximity_weight * overshoot * overshoot
            }
        };
        // Calibrated simplex size for the reactance box: large enough to
        // move γ off the warm start's 0, small enough not to leap far
        // past small thresholds.
        let nm = gridmtd_opf::NelderMeadOptions {
            initial_step: 0.12,
            ..cfg.nm_options()
        };
        let result = multistart_stateful(
            objective_for,
            &x0,
            lo,
            hi,
            cfg.n_starts.max(1),
            crate::seedstream::domain(cfg.seed, round),
            &nm,
        );
        if result.f >= INFEASIBLE_COST {
            return Err(MtdError::Infeasible);
        }
        if let Some(sel) = search.audit(h_pre, gamma_th, &result.x)? {
            return Ok(sel);
        }
        penalty_weight *= 25.0;
    }

    // Threshold appears unreachable; report the ceiling.
    let (_, ceiling) = max_achievable_gamma_with(net, x_pre, gamma_basis, cfg)?;
    Err(MtdError::ThresholdUnreachable {
        requested: gamma_th,
        achieved: ceiling,
    })
}

/// The paper's pre-perturbation baseline: problem (1) optimized over both
/// dispatch *and* D-FACTS reactances (footnote 1 / Section IV). Returns
/// the optimal reactance vector and its OPF solution.
///
/// With linear costs and light congestion the objective is flat in `x`,
/// so the search warm-starts from `x_start` and stays there unless
/// reactance adjustments genuinely reduce cost.
///
/// # Errors
///
/// Propagates OPF failures.
pub fn baseline_opf(
    net: &Network,
    x_start: &[f64],
    cfg: &MtdConfig,
) -> Result<(Vec<f64>, OpfSolution), MtdError> {
    baseline_opf_impl(net, x_start, cfg, &PfContext::new())
}

/// [`baseline_opf`] seeded with a power-flow context prototype (see
/// [`select_mtd_impl`] for the cloning/bit-identity contract).
pub(crate) fn baseline_opf_impl(
    net: &Network,
    x_start: &[f64],
    cfg: &MtdConfig,
    pf_proto: &PfContext,
) -> Result<(Vec<f64>, OpfSolution), MtdError> {
    let dfacts = net.dfacts_branches();
    let (lo_full, hi_full) = net.reactance_bounds(cfg.eta_max);
    let lo: Vec<f64> = dfacts.iter().map(|&l| lo_full[l]).collect();
    let hi: Vec<f64> = dfacts.iter().map(|&l| hi_full[l]).collect();
    let x_nominal = net.nominal_reactances();
    let x0: Vec<f64> = dfacts.iter().map(|&l| x_start[l]).collect();
    let opf_opts = cfg.opf_options();

    const INFEASIBLE_COST: f64 = 1e15;
    let mut ctx = OpfContext::with_pf(pf_proto.clone());
    let objective = |cand: &[f64]| {
        let x = assemble(&x_nominal, &dfacts, cand);
        match solve_opf_with(net, &x, &opf_opts, &mut ctx) {
            Ok(s) => s.cost,
            Err(_) => INFEASIBLE_COST,
        }
    };
    // Warm-started local search only: a flat objective should not wander.
    let result = gridmtd_opf::nelder_mead(objective, &x0, &lo, &hi, &cfg.nm_options());
    if result.f >= INFEASIBLE_COST {
        return Err(MtdError::Infeasible);
    }
    let x = assemble(&x_nominal, &dfacts, &result.x);
    // Reprice through the search's own context: its basis chain ends at
    // (or next to) the accepted point, so this is a warm no-pivot solve.
    let opf = solve_opf_with(net, &x, &opf_opts, &mut ctx)?;
    Ok((x, opf))
}

/// A pre-perturbation D-FACTS setting at a corner of the reactance box,
/// chosen so that the *opposite* corner is as far from it (in subspace
/// angle) as possible.
///
/// Rationale: the paper's pre-perturbation reactances come from solving
/// OPF (1) with `fmincon`/MultiStart over the D-FACTS box. When the cost
/// is flat in `x` (linear costs, light congestion) any box point is an
/// optimal solution, and the paper's reported attainable range
/// (`γ` up to ≈ 0.45 rad on IEEE-14) is only reachable when `x_t` itself
/// sits away from the box centre. This helper deterministically picks
/// such a point so experiments can reproduce the full range; from the
/// nominal (centre) point the ceiling is ≈ 0.26 rad.
///
/// For more than 12 D-FACTS lines the corner search is sampled instead
/// of exhaustive.
///
/// # Panics
///
/// Panics if `eta_max` is not in `(0, 1)`.
pub fn spread_pre_perturbation(net: &Network, eta_max: f64) -> Vec<f64> {
    assert!(
        eta_max > 0.0 && eta_max < 1.0,
        "eta_max must be in (0,1), got {eta_max}"
    );
    let dfacts = net.dfacts_branches();
    let x_nominal = net.nominal_reactances();
    let k = dfacts.len();
    if k == 0 {
        return x_nominal;
    }
    let corner = |pattern: u64| -> Vec<f64> {
        let mut x = x_nominal.clone();
        for (bit, &l) in dfacts.iter().enumerate() {
            let up = pattern >> bit & 1 == 1;
            x[l] *= if up { 1.0 + eta_max } else { 1.0 - eta_max };
        }
        x
    };
    let patterns: Vec<u64> = if k <= 12 {
        (0..(1u64 << k)).collect()
    } else {
        // Deterministic low-discrepancy sample of corners.
        (0..4096u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect()
    };
    let mask = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
    let mut best_pattern = 0u64;
    let mut best_gamma = -1.0;
    for &p in &patterns {
        let p = p & mask;
        let h_a = match net.measurement_matrix(&corner(p)) {
            Ok(h) => h,
            Err(_) => continue,
        };
        let h_b = match net.measurement_matrix(&corner(!p & mask)) {
            Ok(h) => h,
            Err(_) => continue,
        };
        if let Ok(g) = spa::gamma(&h_a, &h_b) {
            if g > best_gamma {
                best_gamma = g;
                best_pattern = p;
            }
        }
    }
    corner(best_pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_perturbation_touches_only_dfacts_lines() {
        let net = cases::case14();
        let x0 = net.nominal_reactances();
        let mut rng = StdRng::seed_from_u64(5);
        let x = random_perturbation(&net, &x0, 0.02, &mut rng).unwrap();
        let dfacts = net.dfacts_branches();
        for l in 0..net.n_branches() {
            if dfacts.contains(&l) {
                assert!((x[l] / x0[l] - 1.0).abs() <= 0.02 + 1e-12);
            } else {
                assert_eq!(x[l], x0[l]);
            }
        }
    }

    #[test]
    fn max_gamma_is_substantial_for_case14() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let (x, g) = max_achievable_gamma(&net, &x0, &cfg).unwrap();
        // From the nominal point the box-corner ceiling is ≈ 0.259 rad;
        // the paper's full [0, 0.45] range arises when the
        // pre-perturbation reactances themselves sit inside the D-FACTS
        // box (see `pair_of_box_points_reaches_the_papers_range`).
        assert!(g > 0.2, "max gamma {g}");
        // Bounds respected.
        let (lo, hi) = net.reactance_bounds(cfg.eta_max);
        for l in 0..net.n_branches() {
            assert!(x[l] >= lo[l] - 1e-12 && x[l] <= hi[l] + 1e-12);
        }
    }

    #[test]
    fn select_mtd_meets_threshold_with_bounded_cost() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let sel = select_mtd(&net, &x0, 0.15, &cfg).unwrap();
        assert!(sel.gamma >= 0.15 - 1e-3, "gamma {}", sel.gamma);
        assert_eq!(sel.gamma_threshold, 0.15);
        // Cost can only grow relative to the γ_th = 0 relaxation solved
        // by the same optimizer (a fixed-reactance or locally-optimized
        // baseline may converge to a different basin, so those are not
        // valid lower bounds).
        // Both runs are heuristic multistart searches, so allow a small
        // basin-to-basin tolerance.
        let relaxed = select_mtd(&net, &x0, 0.0, &cfg).unwrap();
        assert!(
            sel.opf.cost >= relaxed.opf.cost * 0.99 - 1e-6,
            "{} vs {}",
            sel.opf.cost,
            relaxed.opf.cost
        );
    }

    #[test]
    fn pair_of_box_points_reaches_the_papers_range() {
        // With the pre-perturbation reactances themselves at a D-FACTS
        // box point (a legitimate solution of the cost-flat OPF (1)),
        // the attainable angle matches the paper's ≈ 0.45 rad ceiling.
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x_pre = spread_pre_perturbation(&net, cfg.eta_max);
        let (_, g) = max_achievable_gamma(&net, &x_pre, &cfg).unwrap();
        assert!(g > 0.4, "corner-based ceiling {g}");
    }

    #[test]
    fn zero_threshold_recovers_unconstrained_cost() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let sel = select_mtd(&net, &x0, 0.0, &cfg).unwrap();
        let base = gridmtd_opf::solve_opf(&net, &x0, &cfg.opf_options())
            .unwrap()
            .cost;
        assert!(
            sel.opf.cost <= base * 1.001 + 1e-6,
            "unconstrained selection should not cost more: {} vs {base}",
            sel.opf.cost
        );
        assert!(sel.gamma >= 0.0);
    }

    #[test]
    fn unreachable_threshold_is_reported() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let err = select_mtd(&net, &x0, 1.5, &cfg).unwrap_err();
        match err {
            MtdError::ThresholdUnreachable {
                requested,
                achieved,
            } => {
                assert_eq!(requested, 1.5);
                assert!(achieved < 1.5);
            }
            other => panic!("expected ThresholdUnreachable, got {other:?}"),
        }
    }

    #[test]
    fn baseline_opf_stays_at_warm_start_when_flat() {
        // Lightly-loaded case14: cost is flat in x → baseline keeps x0.
        let net = cases::case14().scale_loads(0.6);
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let (x, opf) = baseline_opf(&net, &x0, &cfg).unwrap();
        let direct = gridmtd_opf::solve_opf(&net, &x0, &cfg.opf_options()).unwrap();
        assert!((opf.cost - direct.cost).abs() < 1e-6);
        // x stays close to the warm start in flat regions.
        for l in 0..net.n_branches() {
            assert!((x[l] - x0[l]).abs() < 0.35 * x0[l] + 1e-9);
        }
    }

    #[test]
    fn random_perturbation_validates_fraction() {
        let net = cases::case4();
        let x0 = net.nominal_reactances();
        let mut rng = StdRng::seed_from_u64(0);
        for bad in [0.0, 1.0, -0.1, f64::NAN] {
            match random_perturbation(&net, &x0, bad, &mut rng).unwrap_err() {
                MtdError::InvalidConfig { field, .. } => assert_eq!(field, "fraction"),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn random_perturbation_validates_reactance_length() {
        let net = cases::case4();
        let mut rng = StdRng::seed_from_u64(0);
        let short = vec![0.1; net.n_branches() - 1];
        match random_perturbation(&net, &short, 0.02, &mut rng).unwrap_err() {
            MtdError::Grid(gridmtd_powergrid::GridError::DimensionMismatch {
                expected,
                actual,
                ..
            }) => {
                assert_eq!(expected, net.n_branches());
                assert_eq!(actual, net.n_branches() - 1);
            }
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_eta_max_is_a_typed_error() {
        let net = cases::case4();
        let x0 = net.nominal_reactances();
        for bad in [0.0, 1.0, -0.5, f64::NAN] {
            let cfg = MtdConfig {
                eta_max: bad,
                ..MtdConfig::fast_test()
            };
            match max_achievable_gamma(&net, &x0, &cfg).unwrap_err() {
                MtdError::InvalidConfig { field, .. } => assert_eq!(field, "eta_max"),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
            match select_mtd(&net, &x0, 0.1, &cfg).unwrap_err() {
                MtdError::InvalidConfig { field, .. } => assert_eq!(field, "eta_max"),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn nelder_mead_method_is_still_selectable() {
        let net = cases::case14();
        let cfg = MtdConfig {
            selection_method: crate::SelectionMethod::NelderMead,
            ..MtdConfig::fast_test()
        };
        let x0 = net.nominal_reactances();
        let sel = select_mtd(&net, &x0, 0.15, &cfg).unwrap();
        assert!(sel.gamma >= 0.15 - 1e-3, "gamma {}", sel.gamma);
    }
}
