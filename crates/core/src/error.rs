use std::error::Error;
use std::fmt;

use gridmtd_estimation::EstimationError;
use gridmtd_linalg::LinalgError;
use gridmtd_opf::OpfError;
use gridmtd_powergrid::GridError;

/// Errors from MTD design and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum MtdError {
    /// The SPA-constrained OPF (problem (4)) found no reactance vector
    /// meeting the requested angle threshold within the D-FACTS limits.
    ThresholdUnreachable {
        /// Requested angle threshold, radians.
        requested: f64,
        /// Best angle achieved by the search.
        achieved: f64,
    },
    /// The OPF under every candidate perturbation was infeasible.
    Infeasible,
    /// An [`crate::MtdConfig`] field failed validation at session build
    /// time (NaN / non-positive threshold, `eta_max` outside `(0, 1)`,
    /// …). Carrying the field name and offending value up front beats
    /// the historical behavior of failing — or silently misbehaving —
    /// deep inside selection.
    InvalidConfig {
        /// Name of the offending configuration field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// [`crate::MtdSession::step_hour`] was called with no day armed —
    /// either [`crate::MtdSession::begin_day`] never ran or the armed
    /// day's hours are exhausted. API misuse must stay a recoverable,
    /// typed error: a long-running service worker routing client
    /// requests into a session cannot afford a panic here.
    DayNotStarted,
    /// A detection probability evaluated to NaN (numerical breakdown in
    /// the noncentral-χ² tail computation); carries the index of the
    /// offending attack so the ensemble entry can be inspected.
    NanDetectionProbability {
        /// Index of the attack whose probability was NaN.
        index: usize,
    },
    /// Underlying grid-model failure.
    Grid(GridError),
    /// Underlying OPF failure.
    Opf(OpfError),
    /// Underlying estimation failure.
    Estimation(EstimationError),
    /// Underlying linear-algebra failure.
    Numerical(LinalgError),
}

impl fmt::Display for MtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtdError::ThresholdUnreachable {
                requested,
                achieved,
            } => write!(
                f,
                "SPA threshold {requested:.3} rad unreachable within D-FACTS limits (best {achieved:.3})"
            ),
            MtdError::Infeasible => write!(f, "no feasible MTD perturbation"),
            MtdError::InvalidConfig { field, value } => {
                write!(f, "invalid MtdConfig: {field} = {value} is not allowed")
            }
            MtdError::DayNotStarted => {
                write!(f, "step_hour called with no armed day (call begin_day first)")
            }
            MtdError::NanDetectionProbability { index } => {
                write!(f, "detection probability of attack {index} is NaN")
            }
            MtdError::Grid(e) => write!(f, "grid error: {e}"),
            MtdError::Opf(e) => write!(f, "OPF error: {e}"),
            MtdError::Estimation(e) => write!(f, "estimation error: {e}"),
            MtdError::Numerical(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl Error for MtdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MtdError::Grid(e) => Some(e),
            MtdError::Opf(e) => Some(e),
            MtdError::Estimation(e) => Some(e),
            MtdError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for MtdError {
    fn from(e: GridError) -> MtdError {
        MtdError::Grid(e)
    }
}

impl From<OpfError> for MtdError {
    fn from(e: OpfError) -> MtdError {
        MtdError::Opf(e)
    }
}

impl From<EstimationError> for MtdError {
    fn from(e: EstimationError) -> MtdError {
        MtdError::Estimation(e)
    }
}

impl From<LinalgError> for MtdError {
    fn from(e: LinalgError) -> MtdError {
        MtdError::Numerical(e)
    }
}
