//! Economic impact of *undetected* FDI attacks — the other side of the
//! paper's insurance argument (Section VII-D).
//!
//! The paper justifies paying the MTD "premium" by comparing it against
//! the damage an undetected attack can do: per its references \[5\], \[20\],
//! a load-redistribution attack on the IEEE 14-bus system can inflate the
//! OPF cost by up to 28%. This module implements that comparator: a
//! stealthy attack `a = Hc` biases the state estimate by `c`, the
//! operator re-dispatches against the falsified loads, and the realized
//! cost of serving the *true* load from that distorted dispatch is
//! compared with the honest optimum.

use gridmtd_opf::{solve_opf, OpfSolution};
use gridmtd_powergrid::{dcpf, Network};

use crate::{MtdConfig, MtdError};

/// Result of an attack-impact evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackImpact {
    /// Honest OPF cost, $/h.
    pub honest_cost: f64,
    /// Cost of the dispatch chosen under falsified loads, $/h, evaluated
    /// with the honest cost model.
    pub attacked_cost: f64,
    /// Relative damage `(attacked − honest)/honest` (≥ 0 for any
    /// feasible distortion of a convex dispatch problem).
    pub relative_damage: f64,
    /// Branch overloads induced on the *true* system by the distorted
    /// dispatch: `(branch, |flow|/limit)` for every branch pushed past
    /// its limit — the trip risk the paper's Section VII-D alludes to.
    pub overloads: Vec<(usize, f64)>,
}

/// Evaluates the impact of an undetected load-redistribution attack.
///
/// `load_bias` is the per-bus additive distortion (MW) the stealthy
/// attack injects into the operator's load picture. Its entries should
/// sum to ≈ 0 (a *redistribution*): the attacker moves apparent load
/// between buses without changing the system total, which keeps the
/// attack consistent with aggregate metering.
///
/// # Errors
///
/// * [`MtdError::Infeasible`] if the honest OPF is infeasible.
/// * Propagates OPF failures on the falsified system (an infeasible
///   falsified OPF means the attack would be noticed operationally; it
///   is also reported as [`MtdError::Infeasible`]).
pub fn load_redistribution_impact(
    net: &Network,
    load_bias: &[f64],
    cfg: &MtdConfig,
) -> Result<AttackImpact, MtdError> {
    if load_bias.len() != net.n_buses() {
        return Err(MtdError::Grid(
            gridmtd_powergrid::GridError::DimensionMismatch {
                what: "load_bias",
                expected: net.n_buses(),
                actual: load_bias.len(),
            },
        ));
    }
    let x = net.nominal_reactances();
    let opts = cfg.opf_options();

    // Honest dispatch.
    let honest: OpfSolution = solve_opf(net, &x, &opts)?;

    // Falsified system: the operator sees distorted loads and dispatches
    // for them (clamped at zero; negative apparent load would be flagged).
    let falsified_loads: Vec<f64> = net
        .loads()
        .iter()
        .zip(load_bias.iter())
        .map(|(l, b)| (l + b).max(0.0))
        .collect();
    let net_falsified = net.with_loads(&falsified_loads)?;
    let fooled = solve_opf(&net_falsified, &x, &opts)?;

    // Realized cost of the fooled dispatch, priced by the honest model.
    // The dispatch under-/over-serves the true load; the slack bus
    // balancing energy is priced at the costliest unit (emergency
    // procurement), which is the standard pessimistic convention.
    let true_total = net.total_load();
    let fooled_total: f64 = fooled.dispatch.iter().sum();
    let deficit = true_total - fooled_total;
    let max_marginal = net
        .gens()
        .iter()
        .map(|g| g.cost.marginal(g.pmax_mw))
        .fold(0.0_f64, f64::max);
    let attacked_cost: f64 = net
        .gens()
        .iter()
        .zip(fooled.dispatch.iter())
        .map(|(g, &d)| g.cost.eval(d))
        .sum::<f64>()
        + deficit.max(0.0) * max_marginal;

    // Physical flows of the fooled dispatch on the TRUE system.
    let pf = dcpf::solve_dispatch(net, &x, &fooled.dispatch)?;
    let mut overloads = Vec::new();
    for (l, br) in net.branches().iter().enumerate() {
        let ratio = pf.flows[l].abs() / br.flow_limit_mw;
        if ratio > 1.0 + 1e-9 {
            overloads.push((l, ratio));
        }
    }

    let relative_damage = ((attacked_cost - honest.cost) / honest.cost).max(0.0);
    Ok(AttackImpact {
        honest_cost: honest.cost,
        attacked_cost,
        relative_damage,
        overloads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;

    #[test]
    fn zero_bias_has_zero_damage() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let impact = load_redistribution_impact(&net, &vec![0.0; net.n_buses()], &cfg).unwrap();
        assert!(impact.relative_damage < 1e-9);
        assert!(impact.overloads.is_empty());
        assert!((impact.honest_cost - impact.attacked_cost).abs() < 1e-6);
    }

    #[test]
    fn redistribution_attack_inflates_cost() {
        // Shift 40 MW of apparent load from the cheap-generation side
        // (bus 3, large load) to bus 14 (remote): the operator
        // re-dispatches suboptimally for the true system.
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let mut bias = vec![0.0; net.n_buses()];
        bias[2] = -40.0;
        bias[13] = 40.0;
        let impact = load_redistribution_impact(&net, &bias, &cfg).unwrap();
        assert!(
            impact.relative_damage > 0.0,
            "damage {} should be positive",
            impact.relative_damage
        );
        assert!(impact.attacked_cost > impact.honest_cost);
    }

    #[test]
    fn damage_grows_with_attack_magnitude() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let mut prev = 0.0;
        for mag in [10.0, 25.0, 40.0] {
            let mut bias = vec![0.0; net.n_buses()];
            bias[2] = -mag;
            bias[13] = mag;
            let impact = load_redistribution_impact(&net, &bias, &cfg).unwrap();
            assert!(
                impact.relative_damage >= prev - 1e-9,
                "damage should grow with magnitude"
            );
            prev = impact.relative_damage;
        }
    }

    #[test]
    fn wrong_bias_length_is_error() {
        let net = cases::case4();
        let cfg = MtdConfig::fast_test();
        assert!(load_redistribution_impact(&net, &[0.0; 2], &cfg).is_err());
    }
}
