//! Experiment configuration shared across MTD evaluation and selection.

use gridmtd_opf::{LbfgsOptions, NelderMeadOptions, OpfOptions};
use serde::{Deserialize, Serialize};

use crate::MtdError;

/// Outer search strategy for the SPA-constrained OPF (problem (4)).
///
/// Both strategies share the exterior-penalty formulation, the adaptive
/// penalty schedule, the multistart seed streams and the exact-γ audit;
/// they differ only in the inner minimizer driving each start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SelectionMethod {
    /// Projected L-BFGS on analytic gradients: OPF cost via LP duals
    /// (envelope theorem) and `sin²γ` via the differentiable
    /// subspace-angle state. Converges in a handful of evaluations and
    /// is the default. Falls back to [`SelectionMethod::NelderMead`]
    /// automatically when the penalty rounds fail to reach `γ_th`.
    #[default]
    Gradient,
    /// Derivative-free multistart Nelder–Mead — the original
    /// fmincon/MultiStart analogue of the paper's Section VII-A. Slower
    /// but independent of the analytic-gradient machinery; kept as a
    /// config-selectable cross-check.
    NelderMead,
}

impl SelectionMethod {
    /// Canonical config-file spelling (`"gradient"` / `"nelder-mead"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SelectionMethod::Gradient => "gradient",
            SelectionMethod::NelderMead => "nelder-mead",
        }
    }

    /// Parses the canonical spelling; `None` for anything else.
    pub fn parse(s: &str) -> Option<SelectionMethod> {
        match s {
            "gradient" => Some(SelectionMethod::Gradient),
            "nelder-mead" => Some(SelectionMethod::NelderMead),
            _ => None,
        }
    }
}

/// Configuration for MTD evaluation and selection.
///
/// Defaults follow the paper's Section VII-A where the paper specifies a
/// value; where it does not (noise σ), `DESIGN.md` documents the
/// calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MtdConfig {
    /// BDD false-positive rate α (paper: `5 × 10⁻⁴`).
    pub alpha: f64,
    /// Measurement-noise standard deviation, MW. The paper does not
    /// report its value; 0.10 MW (0.001 p.u.) reproduces the operating
    /// point of Fig. 6(a) — η'(0.95) ≈ 0.97 at γ ≈ 0.44 (see DESIGN.md).
    pub noise_sigma_mw: f64,
    /// Attack-magnitude scaling `‖a‖₁/‖z‖₁` (paper: ≈ 0.08).
    pub attack_ratio: f64,
    /// Number of random attack vectors per effectiveness evaluation
    /// (paper: 1000).
    pub n_attacks: usize,
    /// D-FACTS adjustment range `η_max` (paper: 0.5).
    pub eta_max: f64,
    /// RNG seed for attack sampling and multistart.
    pub seed: u64,
    /// Multistart count for the SPA-constrained OPF (fmincon/MultiStart
    /// analogue).
    pub n_starts: usize,
    /// Budget of one optimizer run inside the selection search
    /// (objective evaluations, line-search trials included).
    pub max_evals_per_start: usize,
    /// Outer minimizer for the SPA-constrained OPF.
    pub selection_method: SelectionMethod,
    /// Inner DC-OPF options.
    pub opf: OpfOptionsSerde,
}

/// Serializable mirror of [`OpfOptions`] (the OPF crate keeps its options
/// serde-free).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpfOptionsSerde {
    /// Piecewise-linear segments for quadratic costs.
    pub pwl_segments: usize,
}

impl Default for MtdConfig {
    fn default() -> MtdConfig {
        MtdConfig {
            alpha: 5e-4,
            noise_sigma_mw: 0.1,
            attack_ratio: 0.08,
            n_attacks: 1000,
            eta_max: 0.5,
            seed: 1,
            n_starts: 6,
            max_evals_per_start: 400,
            selection_method: SelectionMethod::Gradient,
            opf: OpfOptionsSerde { pwl_segments: 10 },
        }
    }
}

impl MtdConfig {
    /// A reduced-budget configuration for unit tests (fewer attacks and
    /// optimizer evaluations; same statistical structure).
    pub fn fast_test() -> MtdConfig {
        MtdConfig {
            n_attacks: 150,
            n_starts: 2,
            max_evals_per_start: 120,
            ..MtdConfig::default()
        }
    }

    /// Inner-OPF options in the form the OPF crate expects.
    pub fn opf_options(&self) -> OpfOptions {
        OpfOptions {
            pwl_segments: self.opf.pwl_segments,
        }
    }

    /// Nelder–Mead options for one selection start.
    pub fn nm_options(&self) -> NelderMeadOptions {
        NelderMeadOptions {
            max_evals: self.max_evals_per_start,
            ..NelderMeadOptions::default()
        }
    }

    /// Projected L-BFGS options for one selection start (same evaluation
    /// budget as the Nelder–Mead path it replaces).
    pub fn lbfgs_options(&self) -> LbfgsOptions {
        LbfgsOptions {
            max_evals: self.max_evals_per_start,
            ..LbfgsOptions::default()
        }
    }

    /// Validates the numeric fields, rejecting NaN and out-of-range
    /// thresholds with a typed [`MtdError::InvalidConfig`].
    ///
    /// [`crate::MtdSession`] construction runs this up front, so a bad
    /// configuration fails at the session boundary with the field name
    /// attached — instead of deep inside selection as a cryptic
    /// optimizer or χ² failure (or, for a NaN α, not at all).
    ///
    /// # Errors
    ///
    /// [`MtdError::InvalidConfig`] naming the first offending field:
    ///
    /// * `alpha` must be a probability strictly inside `(0, 1)`;
    /// * `noise_sigma_mw` and `attack_ratio` must be finite and `> 0`;
    /// * `eta_max` must lie in `(0, 1)` (a D-FACTS range of 100 % or
    ///   more would allow non-positive reactances).
    pub fn validate(&self) -> Result<(), MtdError> {
        let invalid = |field: &'static str, value: f64| MtdError::InvalidConfig { field, value };
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(invalid("alpha", self.alpha));
        }
        if !(self.noise_sigma_mw.is_finite() && self.noise_sigma_mw > 0.0) {
            return Err(invalid("noise_sigma_mw", self.noise_sigma_mw));
        }
        if !(self.attack_ratio.is_finite() && self.attack_ratio > 0.0) {
            return Err(invalid("attack_ratio", self.attack_ratio));
        }
        if !(self.eta_max > 0.0 && self.eta_max < 1.0) {
            return Err(invalid("eta_max", self.eta_max));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = MtdConfig::default();
        assert_eq!(c.alpha, 5e-4);
        assert_eq!(c.attack_ratio, 0.08);
        assert_eq!(c.n_attacks, 1000);
        assert_eq!(c.eta_max, 0.5);
    }

    #[test]
    fn fast_test_reduces_budgets() {
        let c = MtdConfig::fast_test();
        assert!(c.n_attacks < MtdConfig::default().n_attacks);
        assert!(c.n_starts < MtdConfig::default().n_starts);
        assert_eq!(c.alpha, MtdConfig::default().alpha);
    }

    #[test]
    fn options_conversions() {
        let c = MtdConfig::default();
        assert_eq!(c.opf_options().pwl_segments, 10);
        assert_eq!(c.nm_options().max_evals, 400);
    }

    #[test]
    fn validate_rejects_nan_and_out_of_range_fields() {
        assert!(MtdConfig::default().validate().is_ok());
        assert!(MtdConfig::fast_test().validate().is_ok());
        let defaults = MtdConfig::default;
        let cases = [
            (
                "alpha",
                MtdConfig {
                    alpha: f64::NAN,
                    ..defaults()
                },
            ),
            (
                "alpha",
                MtdConfig {
                    alpha: 1.0,
                    ..defaults()
                },
            ),
            (
                "noise_sigma_mw",
                MtdConfig {
                    noise_sigma_mw: -0.1,
                    ..defaults()
                },
            ),
            (
                "attack_ratio",
                MtdConfig {
                    attack_ratio: 0.0,
                    ..defaults()
                },
            ),
            (
                "eta_max",
                MtdConfig {
                    eta_max: 1.0,
                    ..defaults()
                },
            ),
            (
                "eta_max",
                MtdConfig {
                    eta_max: -0.5,
                    ..defaults()
                },
            ),
        ];
        for (field, cfg) in cases {
            match cfg.validate().unwrap_err() {
                MtdError::InvalidConfig { field: f, .. } => assert_eq!(f, field),
                other => panic!("expected InvalidConfig for {field}, got {other:?}"),
            }
        }
    }
}
