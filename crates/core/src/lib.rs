//! # gridmtd-core — moving-target defense for power-grid state estimation
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Cost-Benefit Analysis of Moving-Target Defense in Power Grids*
//! (Lakshminarayana & Yau, DSN 2018): design criteria for D-FACTS
//! reactance perturbations that invalidate an FDI attacker's knowledge,
//! and the framework that trades the defense's effectiveness against its
//! operational (OPF) cost.
//!
//! The pipeline:
//!
//! 1. [`spa`] — the subspace-angle design metric `γ(H, H')`;
//! 2. [`theory`] — executable Proposition 1 / Theorem 1 (undetectability
//!    and the orthogonality condition);
//! 3. [`effectiveness`] — the metric `η'(δ)`: fraction of stale stealthy
//!    attacks whose post-MTD detection probability exceeds δ (closed-form
//!    noncentral-χ², cross-checked by Monte-Carlo);
//! 4. [`selection`] — perturbation selection: the random baseline of
//!    prior work, max-angle search, and the SPA-constrained OPF
//!    (problem (4)) via exterior penalty driven by multistart projected
//!    L-BFGS on analytic gradients (Nelder–Mead as the derivative-free
//!    fallback and cross-check);
//! 5. [`cost`] / [`tradeoff`] — the operational-cost metric and the
//!    effectiveness-vs-cost sweep (Figs. 6, 9);
//! 6. [`timeline`] — hourly MTD operation over a daily load trace
//!    (Figs. 10–11);
//! 7. [`learning`] — the attacker-relearning timeline behind the
//!    reconfiguration-period argument (Section IV-A).
//!
//! The stateful [`session`] layer ties the pipeline together:
//! [`MtdSession`] owns every warm cache (measurement matrices, QR
//! bases, symbolic factorizations, attack ensembles, baselines) and
//! exposes the whole pipeline as methods, with a typed batch layer
//! ([`session::batch`]) for sweep drivers. The historical free-function
//! entry points ([`tradeoff_sweep`], [`random_keyspace_study`],
//! [`simulate_day`], [`attacker_learning_study`]) remain as thin,
//! bit-identical wrappers that build a throwaway session; the
//! `gridmtd-scenario` crate drives the session from declarative TOML
//! specs.
//!
//! # Quickstart
//!
//! ```
//! use gridmtd_core::{MtdConfig, MtdSession};
//! use gridmtd_powergrid::cases;
//!
//! # fn main() -> Result<(), gridmtd_core::MtdError> {
//! let net = cases::case14();
//! let cfg = MtdConfig { n_attacks: 100, ..MtdConfig::default() };
//! let session = MtdSession::builder(net).config(cfg).build()?;
//! // A sign-mixed ±40% perturbation of the D-FACTS lines:
//! let mut x_post = session.x_pre().to_vec();
//! for (k, l) in session.network().dfacts_branches().into_iter().enumerate() {
//!     x_post[l] *= if k % 2 == 0 { 1.4 } else { 0.6 };
//! }
//! let eval = session.evaluate(&x_post)?;
//! println!("γ = {:.3} rad, η'(0.9) = {:.2}", eval.gamma, eval.effectiveness(0.9));
//! # Ok(())
//! # }
//! ```

mod config;
pub mod cost;
pub mod effectiveness;
mod error;
/// Deterministic fault injection (re-export of [`gridmtd_faults`]).
///
/// Named injection points sit at every fragile boundary of the
/// pipeline; behind the `fault-injection` cargo feature they can be
/// armed with a seeded [`faults::FaultPlan`], and without it every
/// point compiles to a constant `false`. See `docs/ROBUSTNESS.md` for
/// the catalogue of fallback chains each point exercises.
pub use gridmtd_faults as faults;
pub mod impact;
pub mod learning;
pub mod seedstream;
pub mod selection;
pub mod session;
pub mod spa;
pub mod theory;
pub mod timeline;
pub mod tradeoff;

pub use config::{MtdConfig, OpfOptionsSerde, SelectionMethod};
pub use effectiveness::MtdEvaluation;
pub use error::MtdError;
pub use learning::{attacker_learning_study, LearningOptions, LearningPoint};
pub use selection::{spread_pre_perturbation, MtdSelection};
pub use session::{BaselineOutcome, LearningOutcome, MtdSession, MtdSessionBuilder};
pub use timeline::{simulate_day, HourOutcome, TimelineOptions};
pub use tradeoff::{
    random_keyspace_study, tradeoff_sweep, RandomTrial, TradeoffCurve, TradeoffPoint,
};
