//! The MTD operational-cost metric of Section VI.
//!
//! `C_MTD,t' = (C'_OPF,t' − C_OPF,t') / C_OPF,t'` — the relative increase
//! in optimal-dispatch cost caused by holding the SPA constraint, over
//! the cost the system would have achieved at the same hour without MTD.

/// Relative MTD cost `(c_mtd − c_base)/c_base`, clamped at zero
/// (numerical round-off can make an unconstrained optimum appear
/// fractionally cheaper; the true quantity is non-negative by
/// construction, eq. (3) of the paper).
///
/// # Panics
///
/// Panics if `c_base <= 0`.
pub fn relative_cost_increase(c_base: f64, c_mtd: f64) -> f64 {
    assert!(c_base > 0.0, "baseline cost must be positive, got {c_base}");
    ((c_mtd - c_base) / c_base).max(0.0)
}

/// Same as [`relative_cost_increase`] but expressed in percent, matching
/// the y-axes of Figs. 9–10.
pub fn cost_increase_percent(c_base: f64, c_mtd: f64) -> f64 {
    100.0 * relative_cost_increase(c_base, c_mtd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increase_is_relative() {
        assert!((relative_cost_increase(10_000.0, 10_231.0) - 0.0231).abs() < 1e-12);
        assert!((cost_increase_percent(10_000.0, 10_231.0) - 2.31).abs() < 1e-9);
    }

    #[test]
    fn roundoff_negative_clamps_to_zero() {
        assert_eq!(relative_cost_increase(10_000.0, 9_999.999_999), 0.0);
    }

    #[test]
    fn zero_increase_for_identical_costs() {
        assert_eq!(cost_increase_percent(11_500.0, 11_500.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "baseline cost must be positive")]
    fn non_positive_base_panics() {
        relative_cost_increase(0.0, 1.0);
    }
}
