//! Attacker-relearning timeline — the reconfiguration-period analysis
//! of Section IV-A.
//!
//! After an MTD perturbation the eavesdropper starts over: it must
//! re-identify the measurement subspace from post-perturbation snapshots
//! before its attacks become stealthy again (the paper, via its
//! reference \[17\], puts the requirement at 500–1000 informative
//! snapshots — the argument for hourly reconfiguration). This module
//! quantifies that deadline: a [`gridmtd_attack::SubspaceLearner`]
//! accumulates noisy measurement snapshots under jittered loads and
//! dispatch, and at each requested checkpoint we score a batch of probe
//! attacks crafted from the *estimated* subspace against the operator's
//! post-MTD bad-data detector. Detection starts near 1 (the attacker
//! knows nothing) and decays toward the false-positive rate α as the
//! estimate converges; the checkpoint where it crosses the operator's
//! risk tolerance is the re-perturbation deadline.
//!
//! Checkpoints fan out across worker threads; each draws its probes
//! from a stream seeded by its sample count, so the study is a pure
//! function of its arguments for any worker count.

use std::sync::Mutex;

use gridmtd_attack::SubspaceLearner;
use gridmtd_estimation::{EstimatorContext, NoiseModel};
use gridmtd_powergrid::{dcpf, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{session, MtdConfig, MtdError, MtdSession};

/// Parameters of the attacker-relearning study.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningOptions {
    /// Snapshot-count checkpoints at which the attacker's progress is
    /// scored, ascending (the paper's range of interest is 500–1000).
    pub sample_counts: Vec<usize>,
    /// Probe attacks crafted per checkpoint.
    pub n_probe_attacks: usize,
    /// Subspace dimension the attacker estimates; defaults to the true
    /// state dimension `n − 1` when `None`.
    pub subspace_dim: Option<usize>,
    /// Per-bus uniform load jitter `±fraction` between snapshots — the
    /// "information diversity" that makes eavesdropped data useful.
    pub load_jitter: f64,
    /// Detection-probability level δ* used for the stealthy fraction.
    pub target_delta: f64,
}

impl Default for LearningOptions {
    fn default() -> LearningOptions {
        LearningOptions {
            sample_counts: vec![16, 64, 256, 1000],
            n_probe_attacks: 50,
            subspace_dim: None,
            load_jitter: 0.4,
            target_delta: 0.9,
        }
    }
}

/// Attacker progress at one snapshot-count checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningPoint {
    /// Snapshots the attacker has accumulated.
    pub n_samples: usize,
    /// Mean detection probability of the probe attacks under the
    /// operator's post-MTD detector.
    pub mean_detection: f64,
    /// Fraction of probes with detection probability below
    /// [`LearningOptions::target_delta`] — the attacker's success rate.
    pub stealthy_fraction: f64,
}

/// Runs the relearning study in the post-perturbation world `x_post`.
///
/// Snapshot `k` jitters every bus load by `±load_jitter` and splits the
/// dispatch across generators with random weights (maximum information
/// diversity, the premise of the paper's reference \[17\]), solves the
/// power flow and corrupts the measurements with the configured sensor
/// noise. All randomness derives from `cfg.seed`.
///
/// # Errors
///
/// Propagates power-flow and estimation failures, and
/// [`MtdError::Infeasible`] if a checkpoint cannot craft probes (the
/// subspace dimension exceeds the snapshot count).
///
/// # Panics
///
/// Panics if `sample_counts` is empty, `n_probe_attacks` is zero, or
/// `load_jitter` is outside `(0, 1)`.
pub fn attacker_learning_study(
    net: &Network,
    x_post: &[f64],
    opts: &LearningOptions,
    cfg: &MtdConfig,
) -> Result<Vec<LearningPoint>, MtdError> {
    // Thin compatibility wrapper over the session-owned implementation
    // (bit-identical; the session just adds shareable warm contexts).
    MtdSession::builder(net.clone())
        .config(cfg.clone())
        .build()?
        .learning_study(x_post, opts)
}

/// The study body, parameterized over the session's warm contexts: a
/// power-flow prototype for the snapshot solves (numeric-only
/// refactorizations on the sparse path) and the shared gain-symbolic
/// cache for the detector build. Bit-identical to fresh contexts.
pub(crate) fn attacker_learning_study_impl(
    net: &Network,
    x_post: &[f64],
    opts: &LearningOptions,
    cfg: &MtdConfig,
    pf_proto: &dcpf::PfContext,
    est_ctx: &Mutex<EstimatorContext>,
) -> Result<Vec<LearningPoint>, MtdError> {
    assert!(
        !opts.sample_counts.is_empty(),
        "sample_counts must be non-empty"
    );
    assert!(opts.n_probe_attacks > 0, "need at least one probe attack");
    assert!(
        opts.load_jitter > 0.0 && opts.load_jitter < 1.0,
        "load_jitter must be in (0,1), got {}",
        opts.load_jitter
    );
    let dim = opts.subspace_dim.unwrap_or(net.n_states());
    let n_max = *opts
        .sample_counts
        .iter()
        .max()
        .expect("non-empty sample_counts");

    // The operator's world: detector and reference measurements at the
    // post-perturbation reactances.
    let bdd = session::detector_via(est_ctx, net.measurement_matrix(x_post)?, cfg)?;
    let noise = NoiseModel::uniform(net.n_measurements(), cfg.noise_sigma_mw);

    // Eavesdropped snapshots, generated once (sequential stream seeded
    // from the config) and shared by every checkpoint as a prefix.
    let mut rng = StdRng::seed_from_u64(crate::seedstream::domain(cfg.seed, 0xa110));
    let nominal_loads = net.loads();
    let mut snapshots: Vec<Vec<f64>> = Vec::with_capacity(n_max);
    let mut z_ref: Vec<f64> = Vec::new();
    // One warm power-flow context serves every snapshot solve (warm
    // refactorizations are pinned bit-identical to cold solves).
    let mut pf_ctx = pf_proto.clone();
    for k in 0..n_max {
        let loads: Vec<f64> = nominal_loads
            .iter()
            .map(|l| l * (1.0 + rng.gen_range(-opts.load_jitter..opts.load_jitter)))
            .collect();
        let net_k = net.with_loads(&loads)?;
        let weights: Vec<f64> = net_k
            .gens()
            .iter()
            .map(|_| rng.gen_range(0.2..1.0))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let dispatch: Vec<f64> = weights
            .iter()
            .map(|w| w / wsum * net_k.total_load())
            .collect();
        let pf = dcpf::solve_dispatch_with(&net_k, x_post, &dispatch, &mut pf_ctx)?;
        let z = noise.corrupt(&pf.measurement_vector(), &mut rng);
        if k == 0 {
            z_ref = z.clone();
        }
        snapshots.push(z);
    }

    // Checkpoints are independent given the snapshot prefix: fan out,
    // each with a probe stream seeded by its own sample count.
    gridmtd_opf::parallel::par_map(&opts.sample_counts, |_, &n| {
        let mut learner = SubspaceLearner::new(net.n_measurements());
        for z in snapshots.iter().take(n) {
            learner.observe(z);
        }
        // Checkpoint streams derive through the collision-resistant
        // mixer: the historical `(seed + 0xbee5) ^ n` xor scheme shared
        // probe streams between adjacent experiment seeds (the exact
        // failure documented in `seedstream`), correlating learning
        // curves that are reported as independent.
        let mut probe_rng = StdRng::seed_from_u64(crate::seedstream::mix(
            crate::seedstream::domain(cfg.seed, 0xbee5),
            n as u64,
        ));
        let mut probs = Vec::with_capacity(opts.n_probe_attacks);
        for _ in 0..opts.n_probe_attacks {
            let attack = learner
                .craft_attack(dim, &z_ref, cfg.attack_ratio, &mut probe_rng)
                .ok_or(MtdError::Infeasible)?;
            probs.push(bdd.detection_probability(&attack.vector)?);
        }
        Ok(LearningPoint {
            n_samples: n,
            mean_detection: gridmtd_stats::empirical::mean(&probs),
            stealthy_fraction: gridmtd_stats::empirical::fraction_where(&probs, |p| {
                p < opts.target_delta
            }),
        })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;

    fn tiny_cfg() -> MtdConfig {
        MtdConfig {
            n_attacks: 50,
            noise_sigma_mw: 0.1,
            ..MtdConfig::fast_test()
        }
    }

    #[test]
    fn detection_decays_as_the_attacker_accumulates_samples() {
        let net = cases::case14();
        let cfg = tiny_cfg();
        let x = net.nominal_reactances();
        let opts = LearningOptions {
            sample_counts: vec![16, 400],
            n_probe_attacks: 30,
            ..LearningOptions::default()
        };
        let points = attacker_learning_study(&net, &x, &opts, &cfg).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].n_samples, 16);
        assert_eq!(points[1].n_samples, 400);
        // More snapshots → better subspace estimate → lower detection.
        assert!(
            points[1].mean_detection < points[0].mean_detection,
            "learning should reduce detection: {} -> {}",
            points[0].mean_detection,
            points[1].mean_detection
        );
        for p in &points {
            assert!((0.0..=1.0).contains(&p.mean_detection));
            assert!((0.0..=1.0).contains(&p.stealthy_fraction));
        }
    }

    #[test]
    fn study_is_deterministic() {
        let net = cases::case4();
        let cfg = tiny_cfg();
        let x = net.nominal_reactances();
        let opts = LearningOptions {
            sample_counts: vec![8, 32],
            n_probe_attacks: 10,
            ..LearningOptions::default()
        };
        let a = attacker_learning_study(&net, &x, &opts, &cfg).unwrap();
        let b = attacker_learning_study(&net, &x, &opts, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn insufficient_samples_surface_as_infeasible() {
        let net = cases::case4();
        let cfg = tiny_cfg();
        let x = net.nominal_reactances();
        let opts = LearningOptions {
            // Fewer snapshots than the subspace dimension: the basis is
            // not estimable, so probes cannot be crafted.
            sample_counts: vec![1],
            n_probe_attacks: 5,
            ..LearningOptions::default()
        };
        let err = attacker_learning_study(&net, &x, &opts, &cfg).unwrap_err();
        assert_eq!(err, MtdError::Infeasible);
    }

    #[test]
    #[should_panic(expected = "sample_counts must be non-empty")]
    fn empty_checkpoints_panic() {
        let net = cases::case4();
        let opts = LearningOptions {
            sample_counts: vec![],
            ..LearningOptions::default()
        };
        let _ = attacker_learning_study(&net, &net.nominal_reactances(), &opts, &tiny_cfg());
    }
}
