//! Hourly MTD operation over a load trace (Figs. 10–11).
//!
//! At each hour `t'` the operator:
//!
//! 1. solves the no-MTD OPF (problem (1)) for the hour's load — warm
//!    started from the previous hour, matching real re-dispatch practice;
//! 2. assumes the attacker knows the measurement matrix from the
//!    **previous** hour (`H_t`, one hour stale, per Section VII-C);
//! 3. auto-tunes the smallest threshold `γ_th` from a grid that achieves
//!    a target effectiveness `η'(δ*) ≥ η*` (the paper uses
//!    `η'(0.9) ≥ 0.9`), solving problem (4) per candidate;
//! 4. records the operational-cost increase and the three subspace
//!    angles plotted in Fig. 11.

use gridmtd_powergrid::Network;
use gridmtd_traces::LoadTrace;
use serde::{Deserialize, Serialize};

use crate::{MtdConfig, MtdError, MtdSession};

/// Outcome of one simulated hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourOutcome {
    /// Hour of day (0–23).
    pub hour: usize,
    /// Total system load, MW.
    pub total_load_mw: f64,
    /// No-MTD OPF cost, $/h.
    pub cost_no_mtd: f64,
    /// OPF cost with the selected MTD, $/h.
    pub cost_with_mtd: f64,
    /// MTD operational cost, percent (Fig. 10 bottom panel).
    pub cost_increase_percent: f64,
    /// `γ(H_t, H_t')`: drift of the no-MTD matrix between hours
    /// (≈ 0; Fig. 11).
    pub gamma_drift: f64,
    /// `γ(H_t, H'_t')`: angle the defense achieved against the attacker's
    /// stale knowledge (Fig. 11).
    pub gamma_defense: f64,
    /// `γ(H_t', H'_t')`: angle between the hour's no-MTD and MTD
    /// matrices (Fig. 11; ≈ `gamma_defense` because drift is small).
    pub gamma_current: f64,
    /// The tuned threshold `γ_th` used at this hour.
    pub gamma_threshold: f64,
    /// Achieved effectiveness `η'(δ*)` at the target δ.
    pub effectiveness: f64,
    /// Whether the target effectiveness was met within the grid.
    pub target_met: bool,
}

/// Parameters of the daily simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineOptions {
    /// Target detection-probability level δ* (paper: 0.9).
    pub target_delta: f64,
    /// Target effectiveness η* (paper: 0.9).
    pub target_eta: f64,
    /// Ascending grid of candidate `γ_th` values to try each hour.
    pub gamma_grid: Vec<f64>,
}

impl Default for TimelineOptions {
    fn default() -> TimelineOptions {
        TimelineOptions {
            target_delta: 0.9,
            target_eta: 0.9,
            gamma_grid: vec![0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4],
        }
    }
}

/// Simulates one hour of MTD operation per trace entry (24 for a daily
/// trace; tests may pass shorter traces).
///
/// `net` carries the nominal (reference) loads which the trace rescales
/// hour by hour.
///
/// # Errors
///
/// Propagates OPF/selection failures, and [`MtdError::Infeasible`] if
/// even the smallest grid threshold is unreachable at some hour. Hours
/// where the largest reachable `γ_th` misses the effectiveness target
/// are reported with `target_met = false` rather than failing.
pub fn simulate_day(
    net: &Network,
    trace: &LoadTrace,
    opts: &TimelineOptions,
    cfg: &MtdConfig,
) -> Result<Vec<HourOutcome>, MtdError> {
    // The hourly loop lives on the session ([`MtdSession::begin_day`] /
    // [`MtdSession::step_hour`]), which owns the per-hour stale-matrix
    // state this function used to rebuild by hand. Bit-identical to the
    // historical in-place loop.
    MtdSession::builder(net.clone())
        .config(cfg.clone())
        .build()?
        .simulate_day(trace, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;
    use gridmtd_traces::{nyiso_winter_weekday, LoadTrace};

    /// Trimmed budgets so the debug-mode unit tests stay fast; the
    /// paper-scale 24-hour run lives in the bench binaries.
    fn tiny_cfg() -> MtdConfig {
        MtdConfig {
            n_attacks: 60,
            n_starts: 1,
            max_evals_per_start: 120,
            noise_sigma_mw: 0.15,
            ..MtdConfig::default()
        }
    }

    #[test]
    fn short_timeline_has_sane_structure() {
        // 4-bus system, 4-hour trace: fast enough for debug test runs.
        let net = cases::case4();
        let trace = LoadTrace::new(vec![400.0, 450.0, 480.0, 420.0]);
        let opts = TimelineOptions {
            gamma_grid: vec![0.05, 0.1],
            ..TimelineOptions::default()
        };
        let outcomes = simulate_day(&net, &trace, &opts, &tiny_cfg()).unwrap();
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!((o.total_load_mw - trace.total_load_mw(o.hour)).abs() < 1e-6);
            assert!(o.cost_no_mtd > 0.0);
            assert!(o.cost_increase_percent >= 0.0);
            assert!(o.gamma_defense >= o.gamma_threshold - 5e-2);
            // Fig. 11 structure: the defence and current angles nearly
            // coincide because hour-to-hour drift is small.
            assert!((o.gamma_defense - o.gamma_current).abs() < 0.12);
        }
    }

    #[test]
    fn effectiveness_recorded_even_when_target_unmet() {
        // With a huge noise floor no grid value can reach the target; the
        // simulation must still report outcomes with target_met = false.
        let net = cases::case4();
        let trace = LoadTrace::new(vec![400.0, 440.0]);
        let opts = TimelineOptions {
            gamma_grid: vec![0.05],
            ..TimelineOptions::default()
        };
        let cfg = MtdConfig {
            noise_sigma_mw: 50.0,
            ..tiny_cfg()
        };
        let outcomes = simulate_day(&net, &trace, &opts, &cfg).unwrap();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(!o.target_met);
            assert!(o.effectiveness < 0.9);
        }
    }

    #[test]
    #[ignore = "paper-scale run: use --ignored with --release (also see the fig10_11 bench binary)"]
    fn full_day_ieee14() {
        let net = cases::case14();
        let trace = nyiso_winter_weekday();
        let opts = TimelineOptions::default();
        let cfg = MtdConfig {
            n_attacks: 200,
            n_starts: 2,
            max_evals_per_start: 200,
            noise_sigma_mw: 0.15,
            ..MtdConfig::default()
        };
        let outcomes = simulate_day(&net, &trace, &opts, &cfg).unwrap();
        assert_eq!(outcomes.len(), 24);
        for o in &outcomes {
            assert!(o.gamma_drift < 0.05, "drift {}", o.gamma_drift);
            assert!(o.cost_increase_percent >= 0.0);
        }
        // Fig. 10: the evening peak is at least as costly as the trough.
        assert!(outcomes[18].cost_increase_percent >= outcomes[3].cost_increase_percent - 0.05);
    }
}
