//! Hourly MTD operation over a load trace (Figs. 10–11).
//!
//! At each hour `t'` the operator:
//!
//! 1. solves the no-MTD OPF (problem (1)) for the hour's load — warm
//!    started from the previous hour, matching real re-dispatch practice;
//! 2. assumes the attacker knows the measurement matrix from the
//!    **previous** hour (`H_t`, one hour stale, per Section VII-C);
//! 3. auto-tunes the smallest threshold `γ_th` from a grid that achieves
//!    a target effectiveness `η'(δ*) ≥ η*` (the paper uses
//!    `η'(0.9) ≥ 0.9`), solving problem (4) per candidate;
//! 4. records the operational-cost increase and the three subspace
//!    angles plotted in Fig. 11.

use gridmtd_powergrid::Network;
use gridmtd_traces::LoadTrace;
use serde::{Deserialize, Serialize};

use crate::{cost, effectiveness, selection, spa, MtdConfig, MtdError};

/// Outcome of one simulated hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HourOutcome {
    /// Hour of day (0–23).
    pub hour: usize,
    /// Total system load, MW.
    pub total_load_mw: f64,
    /// No-MTD OPF cost, $/h.
    pub cost_no_mtd: f64,
    /// OPF cost with the selected MTD, $/h.
    pub cost_with_mtd: f64,
    /// MTD operational cost, percent (Fig. 10 bottom panel).
    pub cost_increase_percent: f64,
    /// `γ(H_t, H_t')`: drift of the no-MTD matrix between hours
    /// (≈ 0; Fig. 11).
    pub gamma_drift: f64,
    /// `γ(H_t, H'_t')`: angle the defense achieved against the attacker's
    /// stale knowledge (Fig. 11).
    pub gamma_defense: f64,
    /// `γ(H_t', H'_t')`: angle between the hour's no-MTD and MTD
    /// matrices (Fig. 11; ≈ `gamma_defense` because drift is small).
    pub gamma_current: f64,
    /// The tuned threshold `γ_th` used at this hour.
    pub gamma_threshold: f64,
    /// Achieved effectiveness `η'(δ*)` at the target δ.
    pub effectiveness: f64,
    /// Whether the target effectiveness was met within the grid.
    pub target_met: bool,
}

/// Parameters of the daily simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineOptions {
    /// Target detection-probability level δ* (paper: 0.9).
    pub target_delta: f64,
    /// Target effectiveness η* (paper: 0.9).
    pub target_eta: f64,
    /// Ascending grid of candidate `γ_th` values to try each hour.
    pub gamma_grid: Vec<f64>,
}

impl Default for TimelineOptions {
    fn default() -> TimelineOptions {
        TimelineOptions {
            target_delta: 0.9,
            target_eta: 0.9,
            gamma_grid: vec![0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4],
        }
    }
}

/// Simulates one hour of MTD operation per trace entry (24 for a daily
/// trace; tests may pass shorter traces).
///
/// `net` carries the nominal (reference) loads which the trace rescales
/// hour by hour.
///
/// # Errors
///
/// Propagates OPF/selection failures, and [`MtdError::Infeasible`] if
/// even the smallest grid threshold is unreachable at some hour. Hours
/// where the largest reachable `γ_th` misses the effectiveness target
/// are reported with `target_met = false` rather than failing.
pub fn simulate_day(
    net: &Network,
    trace: &LoadTrace,
    opts: &TimelineOptions,
    cfg: &MtdConfig,
) -> Result<Vec<HourOutcome>, MtdError> {
    let nominal_total = net.total_load();
    let n_hours = trace.len();
    let mut outcomes = Vec::with_capacity(n_hours);

    // The hour preceding the trace start initializes the attacker
    // knowledge. Like the static experiments, the D-FACTS settings start
    // from a spread box point (any point of the box solves the cost-flat
    // OPF (1)), which keeps the paper's full γ range reachable.
    let mut x_prev = selection::spread_pre_perturbation(net, cfg.eta_max);
    {
        let net_prev = net.scale_loads(trace.scaling_factor(n_hours - 1, nominal_total));
        let (x, _) = selection::baseline_opf(&net_prev, &x_prev, cfg)?;
        x_prev = x;
    }

    for hour in 0..n_hours {
        let net_now = net.scale_loads(trace.scaling_factor(hour, nominal_total));

        // 1. No-MTD OPF for this hour (warm start from previous hour).
        let (x_now, opf_now) = selection::baseline_opf(&net_now, &x_prev, cfg)?;

        // 2. Attacker's knowledge: last hour's matrix. The measurement
        // matrix depends only on the topology and reactances — never on
        // loads — so `h_stale` (and its QR basis below) is built once
        // per hour and shared by the attack ensemble, every γ-grid
        // candidate's selection run and the effectiveness evaluations,
        // instead of being rebuilt inside each of them.
        let h_stale = net.measurement_matrix(&x_prev)?;
        let h_now = net.measurement_matrix(&x_now)?;
        let stale_basis = spa::GammaBasis::new(&h_stale)?;

        // Attack ensemble against the stale matrix, scaled by the stale
        // operating point (what the attacker eavesdropped).
        let opf_prev_dispatch = {
            let prev_hour = if hour == 0 { n_hours - 1 } else { hour - 1 };
            let net_prev = net.scale_loads(trace.scaling_factor(prev_hour, nominal_total));
            gridmtd_opf::solve_opf(&net_prev, &x_prev, &cfg.opf_options())?.dispatch
        };
        let attacks = effectiveness::build_attack_set_with_h(
            &net_now,
            &h_stale,
            &x_prev,
            &opf_prev_dispatch,
            cfg,
        )?;

        // 3. Tune γ_th on the grid. Candidates are evaluated
        // speculatively in worker-sized chunks and the serial early-exit
        // rule is replayed over the ordered results: take the first
        // candidate meeting the target, else the last reachable one
        // before an unreachable threshold — so the outcome (including
        // which errors can surface) is exactly the serial tuner's. The
        // bounded lookahead keeps the speculation free: with one worker
        // the chunks have length 1 and the loop *is* the serial tuner;
        // with more workers the extra evaluations ride on otherwise idle
        // cores.
        let lookahead = gridmtd_opf::parallel::available_threads().max(1);
        let mut chosen: Option<(f64, selection::MtdSelection, f64)> = None;
        'grid: for candidates in opts.gamma_grid.chunks(lookahead) {
            let evaluations: Vec<Result<(selection::MtdSelection, f64), MtdError>> =
                gridmtd_opf::parallel::par_map(candidates, |_, &gamma_th| {
                    let sel = selection::select_mtd_with(
                        &net_now,
                        &x_prev,
                        &h_stale,
                        &stale_basis,
                        gamma_th,
                        cfg,
                    )?;
                    let eval = effectiveness::evaluate_with_attacks_h(
                        &net_now,
                        &h_stale,
                        &sel.x_post,
                        &attacks,
                        cfg,
                    )?;
                    let eta = eval.effectiveness(opts.target_delta);
                    Ok((sel, eta))
                });
            for (&gamma_th, evaluation) in candidates.iter().zip(evaluations) {
                match evaluation {
                    Ok((sel, eta)) => {
                        let met = eta >= opts.target_eta;
                        chosen = Some((gamma_th, sel, eta));
                        if met {
                            break 'grid;
                        }
                    }
                    Err(MtdError::ThresholdUnreachable { .. }) => break 'grid,
                    Err(e) => return Err(e),
                }
            }
        }
        let (gamma_threshold, sel, eta) = chosen.ok_or(MtdError::Infeasible)?;

        let h_post = net.measurement_matrix(&sel.x_post)?;
        outcomes.push(HourOutcome {
            hour,
            total_load_mw: net_now.total_load(),
            cost_no_mtd: opf_now.cost,
            cost_with_mtd: sel.opf.cost,
            cost_increase_percent: cost::cost_increase_percent(opf_now.cost, sel.opf.cost),
            gamma_drift: spa::gamma(&h_stale, &h_now)?,
            gamma_defense: spa::gamma(&h_stale, &h_post)?,
            gamma_current: spa::gamma(&h_now, &h_post)?,
            gamma_threshold,
            effectiveness: eta,
            target_met: eta >= opts.target_eta,
        });

        x_prev = x_now;
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;
    use gridmtd_traces::{nyiso_winter_weekday, LoadTrace};

    /// Trimmed budgets so the debug-mode unit tests stay fast; the
    /// paper-scale 24-hour run lives in the bench binaries.
    fn tiny_cfg() -> MtdConfig {
        MtdConfig {
            n_attacks: 60,
            n_starts: 1,
            max_evals_per_start: 120,
            noise_sigma_mw: 0.15,
            ..MtdConfig::default()
        }
    }

    #[test]
    fn short_timeline_has_sane_structure() {
        // 4-bus system, 4-hour trace: fast enough for debug test runs.
        let net = cases::case4();
        let trace = LoadTrace::new(vec![400.0, 450.0, 480.0, 420.0]);
        let opts = TimelineOptions {
            gamma_grid: vec![0.05, 0.1],
            ..TimelineOptions::default()
        };
        let outcomes = simulate_day(&net, &trace, &opts, &tiny_cfg()).unwrap();
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!((o.total_load_mw - trace.total_load_mw(o.hour)).abs() < 1e-6);
            assert!(o.cost_no_mtd > 0.0);
            assert!(o.cost_increase_percent >= 0.0);
            assert!(o.gamma_defense >= o.gamma_threshold - 5e-2);
            // Fig. 11 structure: the defence and current angles nearly
            // coincide because hour-to-hour drift is small.
            assert!((o.gamma_defense - o.gamma_current).abs() < 0.12);
        }
    }

    #[test]
    fn effectiveness_recorded_even_when_target_unmet() {
        // With a huge noise floor no grid value can reach the target; the
        // simulation must still report outcomes with target_met = false.
        let net = cases::case4();
        let trace = LoadTrace::new(vec![400.0, 440.0]);
        let opts = TimelineOptions {
            gamma_grid: vec![0.05],
            ..TimelineOptions::default()
        };
        let cfg = MtdConfig {
            noise_sigma_mw: 50.0,
            ..tiny_cfg()
        };
        let outcomes = simulate_day(&net, &trace, &opts, &cfg).unwrap();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(!o.target_met);
            assert!(o.effectiveness < 0.9);
        }
    }

    #[test]
    #[ignore = "paper-scale run: use --ignored with --release (also see the fig10_11 bench binary)"]
    fn full_day_ieee14() {
        let net = cases::case14();
        let trace = nyiso_winter_weekday();
        let opts = TimelineOptions::default();
        let cfg = MtdConfig {
            n_attacks: 200,
            n_starts: 2,
            max_evals_per_start: 200,
            noise_sigma_mw: 0.15,
            ..MtdConfig::default()
        };
        let outcomes = simulate_day(&net, &trace, &opts, &cfg).unwrap();
        assert_eq!(outcomes.len(), 24);
        for o in &outcomes {
            assert!(o.gamma_drift < 0.05, "drift {}", o.gamma_drift);
            assert!(o.cost_increase_percent >= 0.0);
        }
        // Fig. 10: the evening peak is at least as costly as the trough.
        assert!(outcomes[18].cost_increase_percent >= outcomes[3].cost_increase_percent - 0.05);
    }
}
