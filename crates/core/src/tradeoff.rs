//! The effectiveness-vs-cost tradeoff sweep (Figs. 6 and 9).
//!
//! For each threshold `γ_th` in a grid, solve the SPA-constrained OPF
//! (problem (4)), score the selected perturbation against a fixed attack
//! ensemble, and record the operational-cost increase. Different `γ_th`
//! values trace out the spectrum between "free but ineffective" and
//! "effective but costly" (Section VI).
//!
//! The sweep logic lives on [`MtdSession`] (which owns the warm caches
//! it runs on); the free functions here are compatibility wrappers that
//! build a throwaway session, bit-identical to the historical
//! implementations.

use gridmtd_attack::FdiAttack;
use gridmtd_powergrid::Network;
use serde::{Deserialize, Serialize};

use crate::{MtdConfig, MtdError, MtdEvaluation, MtdSession};

/// Looks up `η'(δ)` in a swept `(δ, η'(δ))` grid — the one shared
/// implementation behind [`TradeoffPoint::eta`] and
/// [`RandomTrial::eta`].
fn eta_lookup(effectiveness: &[(f64, f64)], delta: f64) -> Option<f64> {
    effectiveness
        .iter()
        .find(|(d, _)| (d - delta).abs() < 1e-12)
        .map(|&(_, e)| e)
}

/// Materializes the `(δ, η'(δ))` grid of an evaluation for a δ axis.
pub(crate) fn eta_grid(eval: &MtdEvaluation, deltas: &[f64]) -> Vec<(f64, f64)> {
    deltas.iter().map(|&d| (d, eval.effectiveness(d))).collect()
}

/// One point of the tradeoff curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Requested subspace-angle threshold, radians.
    pub gamma_threshold: f64,
    /// Achieved angle of the selected perturbation.
    pub gamma_achieved: f64,
    /// MTD operational cost, percent over the no-MTD OPF cost.
    pub cost_increase_percent: f64,
    /// `(δ, η'(δ))` pairs for the requested δ grid.
    pub effectiveness: Vec<(f64, f64)>,
}

impl TradeoffPoint {
    /// Looks up `η'(δ)` for one of the swept δ values.
    pub fn eta(&self, delta: f64) -> Option<f64> {
        eta_lookup(&self.effectiveness, delta)
    }
}

/// Result of a full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffCurve {
    /// Points for every reachable threshold, in sweep order.
    pub points: Vec<TradeoffPoint>,
    /// Ceiling `γ_max` within the D-FACTS limits (thresholds above this
    /// were skipped).
    pub gamma_ceiling: f64,
    /// No-MTD baseline OPF cost, $/h.
    pub baseline_cost: f64,
}

/// Sweeps the tradeoff curve for a network at its current loads.
///
/// `x_pre` is the pre-perturbation reactance vector (the attacker's
/// knowledge); the attack ensemble is generated once from it and reused
/// across thresholds so points are directly comparable.
///
/// # Errors
///
/// Propagates selection/OPF failures. Thresholds above the achievable
/// ceiling are skipped, not errors.
pub fn tradeoff_sweep(
    net: &Network,
    x_pre: &[f64],
    gamma_thresholds: &[f64],
    deltas: &[f64],
    cfg: &MtdConfig,
) -> Result<TradeoffCurve, MtdError> {
    MtdSession::builder(net.clone())
        .config(cfg.clone())
        .x_pre(x_pre.to_vec())
        .build()?
        .tradeoff_sweep(gamma_thresholds, deltas)
}

/// Scores `n_trials` random baseline perturbations (the keyspace of
/// [11–12]) against the same ensemble, returning each trial's `η'(δ)`
/// curve — the data behind Figs. 7 and 8.
///
/// Trials fan out across worker threads; trial `t` draws its random
/// perturbation from a stream seeded `(seed + 0xfeed) ⊕ t`, so the study
/// is a pure function of its arguments regardless of the worker count
/// (and of any future change to `n_trials`, for the shared prefix).
///
/// # Errors
///
/// Propagates model failures.
pub fn random_keyspace_study(
    net: &Network,
    x_pre: &[f64],
    attacks: &[FdiAttack],
    fraction: f64,
    n_trials: usize,
    deltas: &[f64],
    cfg: &MtdConfig,
) -> Result<Vec<RandomTrial>, MtdError> {
    MtdSession::builder(net.clone())
        .config(cfg.clone())
        .x_pre(x_pre.to_vec())
        .build()?
        .keyspace_study_with_attacks(attacks, fraction, n_trials, deltas)
}

/// One random-keyspace trial (Figs. 7–8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomTrial {
    /// Trial index.
    pub trial: usize,
    /// Subspace angle achieved by the random perturbation.
    pub gamma: f64,
    /// `(δ, η'(δ))` pairs.
    pub effectiveness: Vec<(f64, f64)>,
}

impl RandomTrial {
    /// Looks up `η'(δ)`.
    pub fn eta(&self, delta: f64) -> Option<f64> {
        eta_lookup(&self.effectiveness, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effectiveness;
    use gridmtd_powergrid::cases;

    #[test]
    fn sweep_produces_increasing_gamma_and_cost_trend() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let curve = tradeoff_sweep(&net, &x0, &[0.05, 0.15, 0.22], &[0.5, 0.9], &cfg).unwrap();
        assert!(curve.points.len() >= 2, "{:?}", curve.points.len());
        // Ceiling from the nominal point is ≈ 0.259 rad (see selection
        // tests for the paper's larger corner-to-corner range).
        assert!(curve.gamma_ceiling > 0.2);
        assert!(curve.baseline_cost > 0.0);
        for p in &curve.points {
            assert!(p.gamma_achieved + 1e-3 >= p.gamma_threshold);
            assert!(p.cost_increase_percent >= 0.0);
            let e05 = p.eta(0.5).unwrap();
            let e09 = p.eta(0.9).unwrap();
            assert!(e09 <= e05 + 1e-12, "η monotone in δ");
        }
        // Effectiveness at the largest threshold beats the smallest.
        let first = curve.points.first().unwrap().eta(0.5).unwrap();
        let last = curve.points.last().unwrap().eta(0.5).unwrap();
        assert!(
            last >= first,
            "η should rise along the sweep: {first}->{last}"
        );
    }

    #[test]
    fn unreachable_thresholds_are_skipped() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let curve = tradeoff_sweep(&net, &x0, &[0.1, 1.4], &[0.5], &cfg).unwrap();
        assert_eq!(curve.points.len(), 1);
        assert_eq!(curve.points[0].gamma_threshold, 0.1);
    }

    #[test]
    fn random_keyspace_trials_have_high_variability() {
        let net = cases::case14();
        let mut cfg = MtdConfig::fast_test();
        cfg.n_attacks = 120;
        let x0 = net.nominal_reactances();
        let opf = gridmtd_opf::solve_opf(&net, &x0, &cfg.opf_options()).unwrap();
        let attacks = effectiveness::build_attack_set(&net, &x0, &opf.dispatch, &cfg).unwrap();
        let trials =
            random_keyspace_study(&net, &x0, &attacks, 0.02, 20, &[0.5, 0.9], &cfg).unwrap();
        assert_eq!(trials.len(), 20);
        // 2% random perturbations achieve tiny angles...
        for t in &trials {
            assert!(t.gamma < 0.05, "gamma {}", t.gamma);
        }
        // ...and (per the paper's Fig. 8) almost none achieve η'(0.9)≥0.9.
        let good = trials.iter().filter(|t| t.eta(0.9).unwrap() >= 0.9).count();
        assert!(good <= 2, "random keyspace should rarely be effective");
    }

    #[test]
    fn tradeoff_point_eta_lookup() {
        let p = TradeoffPoint {
            gamma_threshold: 0.1,
            gamma_achieved: 0.12,
            cost_increase_percent: 1.0,
            effectiveness: vec![(0.5, 0.8), (0.9, 0.4)],
        };
        assert_eq!(p.eta(0.9), Some(0.4));
        assert_eq!(p.eta(0.7), None);
    }
}
