//! The effectiveness-vs-cost tradeoff sweep (Figs. 6 and 9).
//!
//! For each threshold `γ_th` in a grid, solve the SPA-constrained OPF
//! (problem (4)), score the selected perturbation against a fixed attack
//! ensemble, and record the operational-cost increase. Different `γ_th`
//! values trace out the spectrum between "free but ineffective" and
//! "effective but costly" (Section VI).

use gridmtd_attack::FdiAttack;
use gridmtd_powergrid::Network;
use serde::{Deserialize, Serialize};

use crate::{cost, effectiveness, selection, spa, MtdConfig, MtdError};

/// One point of the tradeoff curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Requested subspace-angle threshold, radians.
    pub gamma_threshold: f64,
    /// Achieved angle of the selected perturbation.
    pub gamma_achieved: f64,
    /// MTD operational cost, percent over the no-MTD OPF cost.
    pub cost_increase_percent: f64,
    /// `(δ, η'(δ))` pairs for the requested δ grid.
    pub effectiveness: Vec<(f64, f64)>,
}

impl TradeoffPoint {
    /// Looks up `η'(δ)` for one of the swept δ values.
    pub fn eta(&self, delta: f64) -> Option<f64> {
        self.effectiveness
            .iter()
            .find(|(d, _)| (d - delta).abs() < 1e-12)
            .map(|&(_, e)| e)
    }
}

/// Result of a full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffCurve {
    /// Points for every reachable threshold, in sweep order.
    pub points: Vec<TradeoffPoint>,
    /// Ceiling `γ_max` within the D-FACTS limits (thresholds above this
    /// were skipped).
    pub gamma_ceiling: f64,
    /// No-MTD baseline OPF cost, $/h.
    pub baseline_cost: f64,
}

/// Sweeps the tradeoff curve for a network at its current loads.
///
/// `x_pre` is the pre-perturbation reactance vector (the attacker's
/// knowledge); the attack ensemble is generated once from it and reused
/// across thresholds so points are directly comparable.
///
/// # Errors
///
/// Propagates selection/OPF failures. Thresholds above the achievable
/// ceiling are skipped, not errors.
pub fn tradeoff_sweep(
    net: &Network,
    x_pre: &[f64],
    gamma_thresholds: &[f64],
    deltas: &[f64],
    cfg: &MtdConfig,
) -> Result<TradeoffCurve, MtdError> {
    let opf_pre = gridmtd_opf::solve_opf(net, x_pre, &cfg.opf_options())?;
    let attacks = effectiveness::build_attack_set(net, x_pre, &opf_pre.dispatch, cfg)?;
    let (_, gamma_ceiling) = selection::max_achievable_gamma(net, x_pre, cfg)?;
    // Baseline: the cost the operator would pay at this hour without MTD
    // (problem (1), reactances free within D-FACTS limits).
    let (_, baseline) = selection::baseline_opf(net, x_pre, cfg)?;

    // Every threshold's selection + scoring is independent given the
    // shared ensemble, so the sweep fans across worker threads; results
    // come back in grid order, making the curve identical to a serial
    // sweep.
    let in_range: Vec<f64> = gamma_thresholds
        .iter()
        .copied()
        .filter(|&g| g <= gamma_ceiling + 1e-3)
        .collect();
    let swept: Vec<Result<Option<TradeoffPoint>, MtdError>> =
        gridmtd_opf::parallel::par_map(&in_range, |_, &gamma_th| {
            let sel = match selection::select_mtd(net, x_pre, gamma_th, cfg) {
                Ok(s) => s,
                Err(MtdError::ThresholdUnreachable { .. }) => return Ok(None),
                Err(e) => return Err(e),
            };
            let eval =
                effectiveness::evaluate_with_attacks(net, x_pre, &sel.x_post, &attacks, cfg)?;
            let effectiveness_grid: Vec<(f64, f64)> =
                deltas.iter().map(|&d| (d, eval.effectiveness(d))).collect();
            Ok(Some(TradeoffPoint {
                gamma_threshold: gamma_th,
                gamma_achieved: sel.gamma,
                cost_increase_percent: cost::cost_increase_percent(baseline.cost, sel.opf.cost),
                effectiveness: effectiveness_grid,
            }))
        });
    let mut points = Vec::with_capacity(in_range.len());
    for swept_point in swept {
        if let Some(p) = swept_point? {
            points.push(p);
        }
    }
    Ok(TradeoffCurve {
        points,
        gamma_ceiling,
        baseline_cost: baseline.cost,
    })
}

/// Scores `n_trials` random baseline perturbations (the keyspace of
/// [11–12]) against the same ensemble, returning each trial's `η'(δ)`
/// curve — the data behind Figs. 7 and 8.
///
/// Trials fan out across worker threads; trial `t` draws its random
/// perturbation from a stream seeded `(seed + 0xfeed) ⊕ t`, so the study
/// is a pure function of its arguments regardless of the worker count
/// (and of any future change to `n_trials`, for the shared prefix).
///
/// # Errors
///
/// Propagates model failures.
pub fn random_keyspace_study(
    net: &Network,
    x_pre: &[f64],
    attacks: &[FdiAttack],
    fraction: f64,
    n_trials: usize,
    deltas: &[f64],
    cfg: &MtdConfig,
) -> Result<Vec<RandomTrial>, MtdError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let base = cfg.seed.wrapping_add(0xfeed);
    let h_pre = net.measurement_matrix(x_pre)?;
    let trial_ids: Vec<u64> = (0..n_trials as u64).collect();
    gridmtd_opf::parallel::par_map(&trial_ids, |_, &t| {
        let mut rng = StdRng::seed_from_u64(base ^ t);
        let x_post = selection::random_perturbation(net, x_pre, fraction, &mut rng);
        let h_post = net.measurement_matrix(&x_post)?;
        let gamma = spa::gamma(&h_pre, &h_post)?;
        let smallest_angle = spa::smallest_angle(&h_pre, &h_post)?;
        // Angles first so `h_post` can move into the detector unclone'd.
        let bdd = effectiveness::detector_from_h(h_post, cfg)?;
        let probs = gridmtd_attack::detection_probabilities(&bdd, attacks)?;
        let eval = effectiveness::MtdEvaluation {
            gamma,
            smallest_angle,
            detection_probs: probs,
        };
        let eta: Vec<(f64, f64)> = deltas.iter().map(|&d| (d, eval.effectiveness(d))).collect();
        Ok(RandomTrial {
            trial: t as usize,
            gamma: eval.gamma,
            effectiveness: eta,
        })
    })
    .into_iter()
    .collect()
}

/// One random-keyspace trial (Figs. 7–8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomTrial {
    /// Trial index.
    pub trial: usize,
    /// Subspace angle achieved by the random perturbation.
    pub gamma: f64,
    /// `(δ, η'(δ))` pairs.
    pub effectiveness: Vec<(f64, f64)>,
}

impl RandomTrial {
    /// Looks up `η'(δ)`.
    pub fn eta(&self, delta: f64) -> Option<f64> {
        self.effectiveness
            .iter()
            .find(|(d, _)| (d - delta).abs() < 1e-12)
            .map(|&(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;

    #[test]
    fn sweep_produces_increasing_gamma_and_cost_trend() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let curve = tradeoff_sweep(&net, &x0, &[0.05, 0.15, 0.22], &[0.5, 0.9], &cfg).unwrap();
        assert!(curve.points.len() >= 2, "{:?}", curve.points.len());
        // Ceiling from the nominal point is ≈ 0.259 rad (see selection
        // tests for the paper's larger corner-to-corner range).
        assert!(curve.gamma_ceiling > 0.2);
        assert!(curve.baseline_cost > 0.0);
        for p in &curve.points {
            assert!(p.gamma_achieved + 1e-3 >= p.gamma_threshold);
            assert!(p.cost_increase_percent >= 0.0);
            let e05 = p.eta(0.5).unwrap();
            let e09 = p.eta(0.9).unwrap();
            assert!(e09 <= e05 + 1e-12, "η monotone in δ");
        }
        // Effectiveness at the largest threshold beats the smallest.
        let first = curve.points.first().unwrap().eta(0.5).unwrap();
        let last = curve.points.last().unwrap().eta(0.5).unwrap();
        assert!(
            last >= first,
            "η should rise along the sweep: {first}->{last}"
        );
    }

    #[test]
    fn unreachable_thresholds_are_skipped() {
        let net = cases::case14();
        let cfg = MtdConfig::fast_test();
        let x0 = net.nominal_reactances();
        let curve = tradeoff_sweep(&net, &x0, &[0.1, 1.4], &[0.5], &cfg).unwrap();
        assert_eq!(curve.points.len(), 1);
        assert_eq!(curve.points[0].gamma_threshold, 0.1);
    }

    #[test]
    fn random_keyspace_trials_have_high_variability() {
        let net = cases::case14();
        let mut cfg = MtdConfig::fast_test();
        cfg.n_attacks = 120;
        let x0 = net.nominal_reactances();
        let opf = gridmtd_opf::solve_opf(&net, &x0, &cfg.opf_options()).unwrap();
        let attacks = effectiveness::build_attack_set(&net, &x0, &opf.dispatch, &cfg).unwrap();
        let trials =
            random_keyspace_study(&net, &x0, &attacks, 0.02, 20, &[0.5, 0.9], &cfg).unwrap();
        assert_eq!(trials.len(), 20);
        // 2% random perturbations achieve tiny angles...
        for t in &trials {
            assert!(t.gamma < 0.05, "gamma {}", t.gamma);
        }
        // ...and (per the paper's Fig. 8) almost none achieve η'(0.9)≥0.9.
        let good = trials.iter().filter(|t| t.eta(0.9).unwrap() >= 0.9).count();
        assert!(good <= 2, "random keyspace should rarely be effective");
    }

    #[test]
    fn tradeoff_point_eta_lookup() {
        let p = TradeoffPoint {
            gamma_threshold: 0.1,
            gamma_achieved: 0.12,
            cost_increase_percent: 1.0,
            effectiveness: vec![(0.5, 0.8), (0.9, 0.4)],
        };
        assert_eq!(p.eta(0.9), Some(0.4));
        assert_eq!(p.eta(0.7), None);
    }
}
