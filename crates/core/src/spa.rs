//! The subspace-angle design metric `γ(H, H')` of Section V-C.
//!
//! # A note on "smallest" vs operational angle
//!
//! Definition V.1 of the paper defines the *smallest* principal angle
//! (maximizing `|uᵀv|`). However, when fewer than `N − 1` lines carry
//! D-FACTS devices, **the smallest principal angle between `Col(H)` and
//! `Col(H')` is identically zero**: any state offset `c` whose angle
//! differences vanish across every perturbed line satisfies `Hc = H'c`,
//! so the two column spaces always intersect in a subspace of dimension
//! at least `(N − 1) − |L_D|` (for the paper's IEEE 14-bus setup:
//! 13 − 6 = 7). A constraint `γ_smallest ≥ γ_th > 0` would therefore be
//! infeasible for every perturbation, while the paper reports achievable
//! values up to 0.45 rad.
//!
//! The quantity that actually behaves as the paper describes — zero for
//! scaled matrices, increasing with perturbation aggressiveness, governing
//! the `‖r'_a‖ ≤ sin(γ)‖a‖` bound of Appendix C — is the **largest**
//! principal angle, which is also exactly what MATLAB's `subspace(A, B)`
//! (the natural tool in the authors' toolchain) returns. This crate
//! therefore uses the largest principal angle as the operational design
//! metric [`gamma`], and keeps [`smallest_angle`] / [`angles`] available
//! for analysis. `EXPERIMENTS.md` revisits this discrepancy.

use std::sync::atomic::{AtomicU64, Ordering};

use gridmtd_linalg::{diff, subspace, Matrix};

use crate::MtdError;

/// Process-wide count of [`GammaBasis`] constructions (each one is a QR
/// factorization of the full pre-perturbation measurement matrix).
/// Warm paths — [`crate::MtdSession`] above all — cache the basis per
/// `x_pre` and must not rebuild it across repeated selections and
/// evaluations; the regression guards pin that with this counter, in
/// the same style as `gridmtd_powergrid::stats`.
static GAMMA_BASIS_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of [`GammaBasis`] constructions so far (monotone, relaxed
/// atomics; diagnostics only).
pub fn gamma_basis_builds() -> u64 {
    GAMMA_BASIS_BUILDS.load(Ordering::Relaxed)
}

/// A precomputed orthonormal basis of `Col(H_pre)` for repeated
/// `γ(H_pre, ·)` queries.
///
/// The selection optimizer compares one fixed pre-perturbation matrix
/// against hundreds of candidates; caching the fixed side's QR halves
/// the per-candidate angle cost. Produces bit-identical values to
/// [`gamma`].
#[derive(Debug, Clone)]
pub struct GammaBasis {
    basis: subspace::OrthonormalBasis,
}

impl GammaBasis {
    /// Orthonormalizes the pre-perturbation matrix once.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures.
    pub fn new(h_pre: &Matrix) -> Result<GammaBasis, MtdError> {
        GAMMA_BASIS_BUILDS.fetch_add(1, Ordering::Relaxed);
        Ok(GammaBasis {
            basis: subspace::OrthonormalBasis::new(h_pre)?,
        })
    }

    /// `γ(H_pre, h_post)` against the cached basis.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and numerical failures.
    pub fn gamma_to(&self, h_post: &Matrix) -> Result<f64, MtdError> {
        Ok(self.basis.largest_angle_to(h_post)?)
    }

    /// Differentiable `sin²γ` state against the cached basis: the value
    /// plus everything needed to map sparse `∂H/∂x_l` stamps
    /// ([`gridmtd_powergrid::Network::measurement_matrix_derivative`])
    /// to `∂ sin²γ / ∂x_l` in O(1) per branch. The gradient-based
    /// selection path builds one state per candidate and reads the
    /// whole γ-gradient off it.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and numerical failures.
    pub fn sin_sq_to(&self, h_post: &Matrix) -> Result<diff::SinSqState, MtdError> {
        Ok(diff::sin_sq_largest_angle(&self.basis, h_post)?)
    }

    /// Fast conservative γ estimate for optimizer inner loops: never
    /// exceeds [`GammaBasis::gamma_to`] and is typically within 1e-9 of
    /// it, at roughly a tenth of the cost (power iteration instead of a
    /// full SVD). Penalties computed from this estimate therefore err on
    /// the side of *over*-satisfying the threshold — the final audit in
    /// `select_mtd` always re-checks with the exact angle.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and numerical failures.
    pub fn gamma_to_approx(&self, h_post: &Matrix) -> Result<f64, MtdError> {
        Ok(self.basis.largest_angle_to_approx(h_post)?)
    }
}

/// The operational subspace angle `γ(H, H') ∈ [0, π/2]` — the largest
/// principal angle between the two column spaces (see the module docs for
/// why this, and not the literal "smallest", is the metric that
/// reproduces the paper).
///
/// # Errors
///
/// Propagates shape mismatches and numerical failures.
///
/// # Example
///
/// ```
/// use gridmtd_core::spa;
/// use gridmtd_powergrid::cases;
///
/// # fn main() -> Result<(), gridmtd_core::MtdError> {
/// let net = cases::case14();
/// let x = net.nominal_reactances();
/// let h = net.measurement_matrix(&x).unwrap();
/// // Pure scaling leaves the column space unchanged: γ = 0.
/// let g = spa::gamma(&h, &h.scale(1.2))?;
/// assert!(g < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn gamma(h_pre: &Matrix, h_post: &Matrix) -> Result<f64, MtdError> {
    Ok(subspace::largest_principal_angle(h_pre, h_post)?)
}

/// The literal smallest principal angle of Definition V.1 (zero whenever
/// the column spaces intersect, i.e. for every partial-line perturbation).
///
/// # Errors
///
/// Propagates shape mismatches and numerical failures.
pub fn smallest_angle(h_pre: &Matrix, h_post: &Matrix) -> Result<f64, MtdError> {
    Ok(subspace::smallest_principal_angle(h_pre, h_post)?)
}

/// All principal angles (ascending, radians).
///
/// # Errors
///
/// Propagates shape mismatches and numerical failures.
pub fn angles(h_pre: &Matrix, h_post: &Matrix) -> Result<Vec<f64>, MtdError> {
    Ok(subspace::principal_angles(h_pre, h_post)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridmtd_powergrid::cases;
    use std::f64::consts::FRAC_PI_2;

    fn h14(xmod: impl Fn(usize, f64) -> f64) -> (Matrix, Matrix) {
        let net = cases::case14();
        let x = net.nominal_reactances();
        let h_pre = net.measurement_matrix(&x).unwrap();
        let x_post: Vec<f64> = x.iter().enumerate().map(|(l, &v)| xmod(l, v)).collect();
        let h_post = net.measurement_matrix(&x_post).unwrap();
        (h_pre, h_post)
    }

    #[test]
    fn scaled_matrix_has_zero_gamma() {
        // H' = (1+η)H (all reactances scaled the same) keeps Col(H).
        let (h_pre, h_post) = h14(|_, v| v / 1.25);
        assert!(gamma(&h_pre, &h_post).unwrap() < 1e-6);
    }

    #[test]
    fn partial_perturbation_keeps_smallest_angle_zero() {
        // The motivating observation: with only 6 perturbed lines the
        // column spaces intersect, so the literal SPA is 0 while the
        // operational gamma is positive.
        let net = cases::case14();
        let dfacts = net.dfacts_branches();
        let (h_pre, h_post) = h14(|l, v| if dfacts.contains(&l) { v * 1.4 } else { v });
        assert!(smallest_angle(&h_pre, &h_post).unwrap() < 1e-6);
        assert!(gamma(&h_pre, &h_post).unwrap() > 0.01);
    }

    #[test]
    fn gamma_grows_with_perturbation_magnitude() {
        let net = cases::case14();
        let dfacts = net.dfacts_branches();
        let mut prev = 0.0;
        for eta in [0.1, 0.2, 0.3, 0.4, 0.5] {
            let (h_pre, h_post) = h14(|l, v| {
                if dfacts.contains(&l) {
                    // alternate signs for stronger rotation
                    if l % 2 == 0 {
                        v * (1.0 + eta)
                    } else {
                        v * (1.0 - eta)
                    }
                } else {
                    v
                }
            });
            let g = gamma(&h_pre, &h_post).unwrap();
            assert!(g > prev, "γ should grow: {g} after {prev}");
            prev = g;
        }
    }

    #[test]
    fn angles_are_sorted_and_bounded() {
        let net = cases::case14();
        let dfacts = net.dfacts_branches();
        let (h_pre, h_post) = h14(|l, v| if dfacts.contains(&l) { v * 0.6 } else { v });
        let a = angles(&h_pre, &h_post).unwrap();
        assert_eq!(a.len(), net.n_states());
        for w in a.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!(a[0] >= -1e-12 && *a.last().unwrap() <= FRAC_PI_2 + 1e-12);
        // At least 7 of 13 angles are ~0 (shared subspace dimension).
        let zeros = a.iter().filter(|&&t| t < 1e-6).count();
        assert!(zeros >= 7, "expected >= 7 zero angles, got {zeros}");
    }

    #[test]
    fn gamma_basis_matches_gamma() {
        let net = cases::case14();
        let dfacts = net.dfacts_branches();
        let (h_pre, h_post) = h14(|l, v| if dfacts.contains(&l) { v * 1.3 } else { v });
        let basis = GammaBasis::new(&h_pre).unwrap();
        assert_eq!(
            basis.gamma_to(&h_post).unwrap().to_bits(),
            gamma(&h_pre, &h_post).unwrap().to_bits(),
            "cached and direct γ must agree exactly"
        );
    }

    #[test]
    fn gamma_is_symmetric() {
        let net = cases::case14();
        let dfacts = net.dfacts_branches();
        let (h_pre, h_post) = h14(|l, v| if dfacts.contains(&l) { v * 1.3 } else { v });
        let g1 = gamma(&h_pre, &h_post).unwrap();
        let g2 = gamma(&h_post, &h_pre).unwrap();
        assert!((g1 - g2).abs() < 1e-9);
    }
}
