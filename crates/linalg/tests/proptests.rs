//! Property-based tests for the dense linear-algebra kernels.

use gridmtd_linalg::{sparse, subspace, vector, Cholesky, Lu, Matrix, Qr, Svd};
use proptest::prelude::*;
use std::f64::consts::FRAC_PI_2;
use std::sync::Arc;

/// Strategy: a `rows × cols` matrix with ~60 % structural zeros.
fn sparse_pattern_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec((-5.0..5.0f64, 0.0..1.0f64), rows * cols).prop_map(move |cells| {
        let data = cells
            .into_iter()
            .map(|(v, keep)| if keep < 0.4 { v } else { 0.0 })
            .collect();
        Matrix::from_vec(rows, cols, data).expect("sized buffer")
    })
}

/// Strategy: a sparse SPD matrix — sparse AᵀA plus a diagonal shift.
fn sparse_spd_strategy(n: usize) -> impl Strategy<Value = sparse::SparseMatrix> {
    sparse_pattern_strategy(n + 2, n).prop_map(move |a| {
        let g = &a.gram() + &Matrix::identity(n);
        sparse::SparseMatrix::from_dense(&g)
    })
}

/// Strategy: a sparse diagonally-dominant (invertible) matrix.
fn sparse_invertible_strategy(n: usize) -> impl Strategy<Value = sparse::SparseMatrix> {
    sparse_pattern_strategy(n, n).prop_map(move |mut m| {
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        sparse::SparseMatrix::from_dense(&m)
    })
}

/// Strategy: a well-scaled `rows × cols` matrix with entries in [-5, 5].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-5.0..5.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized buffer"))
}

/// Strategy: a diagonally-dominant (hence invertible) n × n matrix.
fn invertible_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |mut m| {
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
            m[(i, j_idx(i))] = row_sum + 1.0;
        }
        m
    })
}

fn j_idx(i: usize) -> usize {
    i
}

/// Strategy: an SPD matrix built as AᵀA + I.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n + 2, n).prop_map(move |a| {
        let g = a.gram();
        &g + &Matrix::identity(n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_then_multiply_roundtrips(a in invertible_strategy(5),
                                         b in proptest::collection::vec(-10.0..10.0f64, 5)) {
        let lu = Lu::factor(&a).expect("diagonally dominant is invertible");
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        prop_assert!(vector::approx_eq(&back, &b, 1e-6));
    }

    #[test]
    fn lu_det_matches_inverse_det_reciprocal(a in invertible_strategy(4)) {
        let lu = Lu::factor(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let lu_inv = Lu::factor(&inv).unwrap();
        prop_assert!((lu.det() * lu_inv.det() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cholesky_solve_agrees_with_lu(a in spd_strategy(4),
                                     b in proptest::collection::vec(-10.0..10.0f64, 4)) {
        let x_c = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_l = Lu::factor(&a).unwrap().solve(&b).unwrap();
        prop_assert!(vector::approx_eq(&x_c, &x_l, 1e-6));
    }

    #[test]
    fn cholesky_reconstructs_spd(a in spd_strategy(5)) {
        // Round-trip fencing for the WLS normal equations: L·Lᵀ must
        // reproduce the SPD input to near machine precision.
        let l = Cholesky::factor(&a).unwrap().l();
        let back = l.matmul(&l.transpose()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn cholesky_inverse_roundtrips(a in spd_strategy(4)) {
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let eye = a.matmul(&inv).unwrap();
        prop_assert!(eye.approx_eq(&Matrix::identity(4), 1e-8));
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal(a in matrix_strategy(7, 4)) {
        let qr = Qr::factor(&a).unwrap();
        let q = qr.q_thin();
        let r = qr.r();
        prop_assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-8));
        let qtq = q.transpose().matmul(&q).unwrap();
        prop_assert!(qtq.approx_eq(&Matrix::identity(4), 1e-8));
    }

    #[test]
    fn svd_reconstructs_input(a in matrix_strategy(6, 4)) {
        let svd = Svd::compute(&a).unwrap();
        let us = Matrix::from_fn(6, 4, |i, j| svd.u()[(i, j)] * svd.singular_values()[j]);
        let back = us.matmul(&svd.v().transpose()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_factors_are_orthonormal(a in matrix_strategy(6, 4)) {
        let svd = Svd::compute(&a).unwrap();
        if svd.rank() == 4 {
            let u = svd.u();
            let utu = u.transpose().matmul(u).unwrap();
            prop_assert!(utu.approx_eq(&Matrix::identity(4), 1e-8));
            let v = svd.v();
            let vtv = v.transpose().matmul(v).unwrap();
            prop_assert!(vtv.approx_eq(&Matrix::identity(4), 1e-8));
        }
    }

    #[test]
    fn svd_reconstructs_spd(a in spd_strategy(5)) {
        // On SPD inputs the SVD coincides with the eigendecomposition;
        // U Σ Vᵀ must round-trip to < 1e-8 like the general case.
        let svd = Svd::compute(&a).unwrap();
        let us = Matrix::from_fn(5, 5, |i, j| svd.u()[(i, j)] * svd.singular_values()[j]);
        let back = us.matmul(&svd.v().transpose()).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn svd_values_nonnegative_sorted(a in matrix_strategy(6, 3)) {
        let svd = Svd::compute(&a).unwrap();
        let s = svd.singular_values();
        prop_assert!(s.iter().all(|&v| v >= 0.0));
        prop_assert!(s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn svd_frobenius_identity(a in matrix_strategy(5, 3)) {
        // ‖A‖_F² = Σ σᵢ²
        let svd = Svd::compute(&a).unwrap();
        let sum_sq: f64 = svd.singular_values().iter().map(|s| s * s).sum();
        prop_assert!((sum_sq - a.frobenius_norm().powi(2)).abs() < 1e-6 * (1.0 + sum_sq));
    }

    #[test]
    fn principal_angles_in_valid_range(a in matrix_strategy(8, 3), b in matrix_strategy(8, 3)) {
        // Guard against accidental rank deficiency (probability ~0 for
        // continuous entries, but be safe).
        if Svd::compute(&a).unwrap().rank() == 3 && Svd::compute(&b).unwrap().rank() == 3 {
            let angles = subspace::principal_angles(&a, &b).unwrap();
            prop_assert_eq!(angles.len(), 3);
            for &t in &angles {
                prop_assert!((-1e-12..=FRAC_PI_2 + 1e-12).contains(&t));
            }
            // symmetry
            let g1 = subspace::smallest_principal_angle(&a, &b).unwrap();
            let g2 = subspace::smallest_principal_angle(&b, &a).unwrap();
            prop_assert!((g1 - g2).abs() < 1e-8);
        }
    }

    #[test]
    fn angle_invariant_under_column_scaling(a in matrix_strategy(8, 3),
                                            b in matrix_strategy(8, 3),
                                            s in 0.1..10.0f64) {
        if Svd::compute(&a).unwrap().rank() == 3 && Svd::compute(&b).unwrap().rank() == 3 {
            let g1 = subspace::smallest_principal_angle(&a, &b).unwrap();
            let g2 = subspace::smallest_principal_angle(&a.scale(s), &b).unwrap();
            prop_assert!((g1 - g2).abs() < 1e-8);
        }
    }

    #[test]
    fn self_angle_is_zero(a in matrix_strategy(8, 3)) {
        if Svd::compute(&a).unwrap().rank() == 3 {
            let g = subspace::smallest_principal_angle(&a, &a).unwrap();
            prop_assert!(g.abs() < 1e-6);
        }
    }

    #[test]
    fn residual_projector_idempotent_and_annihilating(
        a in matrix_strategy(8, 3),
        w in proptest::collection::vec(0.1..10.0f64, 8),
    ) {
        if Svd::compute(&a).unwrap().rank() == 3 {
            let s = subspace::weighted_residual_projector(&a, &w).unwrap();
            prop_assert!(s.matmul(&s).unwrap().approx_eq(&s, 1e-7));
            for j in 0..3 {
                let r = s.matvec(&a.col(j)).unwrap();
                prop_assert!(vector::norm2(&r) < 1e-7);
            }
        }
    }

    #[test]
    fn matmul_is_associative(a in matrix_strategy(3, 4),
                             b in matrix_strategy(4, 2),
                             c in matrix_strategy(2, 5)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn transpose_of_product_is_reversed_product(a in matrix_strategy(3, 4),
                                                b in matrix_strategy(4, 2)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    // ---- sparse backend ------------------------------------------------

    #[test]
    fn sparse_round_trips_through_dense(a in sparse_pattern_strategy(6, 4)) {
        let sp = sparse::SparseMatrix::from_dense(&a);
        prop_assert!(sp.to_dense().approx_eq(&a, 0.0));
    }

    #[test]
    fn sparse_matvec_matches_dense(a in sparse_pattern_strategy(6, 4),
                                   x in proptest::collection::vec(-3.0..3.0f64, 4),
                                   y in proptest::collection::vec(-3.0..3.0f64, 6)) {
        let sp = sparse::SparseMatrix::from_dense(&a);
        prop_assert!(vector::approx_eq(&sp.matvec(&x).unwrap(),
                                       &a.matvec(&x).unwrap(), 1e-10));
        prop_assert!(vector::approx_eq(&sp.matvec_transposed(&y).unwrap(),
                                       &a.matvec_transposed(&y).unwrap(), 1e-10));
    }

    #[test]
    fn sparse_cholesky_agrees_with_dense(a in sparse_spd_strategy(7),
                                         b in proptest::collection::vec(-10.0..10.0f64, 7)) {
        let sym = Arc::new(sparse::SymbolicCholesky::analyze(&a).unwrap());
        let chol = sparse::SparseCholesky::factor(sym, &a).unwrap();
        let xs = chol.solve(&b).unwrap();
        let xd = Cholesky::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        prop_assert!(vector::approx_eq(&xs, &xd, 1e-6));
    }

    #[test]
    fn sparse_cholesky_refactor_matches_cold(a in sparse_spd_strategy(7),
                                             scales in proptest::collection::vec(0.5..2.0f64, 7)) {
        // Value-only rescaling (S A S with S diagonal positive keeps SPD
        // and the pattern): a warm refactor must equal a cold factor.
        let sym = Arc::new(sparse::SymbolicCholesky::analyze(&a).unwrap());
        let mut warm = sparse::SparseCholesky::factor(sym.clone(), &a).unwrap();
        let mut scaled = a.clone();
        {
            let (rows, ptrs) = (scaled.row_indices().to_vec(), scaled.col_ptrs().to_vec());
            let vals = scaled.values_mut();
            for j in 0..7 {
                for p in ptrs[j]..ptrs[j + 1] {
                    vals[p] *= scales[j] * scales[rows[p]];
                }
            }
        }
        warm.refactor(&scaled).unwrap();
        let cold = sparse::SparseCholesky::factor(sym, &scaled).unwrap();
        let b = vec![1.0; 7];
        let xw = warm.solve(&b).unwrap();
        let xc = cold.solve(&b).unwrap();
        for (w, c) in xw.iter().zip(xc.iter()) {
            prop_assert!((w - c).abs() <= 1e-10 * c.abs().max(1.0));
        }
    }

    #[test]
    fn sparse_lu_agrees_with_dense(a in sparse_invertible_strategy(7),
                                   b in proptest::collection::vec(-10.0..10.0f64, 7)) {
        let slu = sparse::SparseLu::factor(&a).unwrap();
        let dense = a.to_dense();
        prop_assert!(vector::approx_eq(&slu.solve(&b).unwrap(),
                                       &Lu::factor(&dense).unwrap().solve(&b).unwrap(), 1e-6));
        prop_assert!(vector::approx_eq(&slu.solve_transposed(&b).unwrap(),
                                       &Lu::factor(&dense).unwrap().solve_transposed(&b).unwrap(),
                                       1e-6));
    }
}
