//! Regression fence for the sparse factorization NaN/zero-pivot audit:
//! poisoned input must be rejected with a typed error at the
//! factorization boundary, never baked into factors that launder NaN
//! into later solves (where it would surface far from the cause, e.g.
//! as a NaN detection probability at the end of the MTD pipeline).

use std::sync::Arc;

use gridmtd_linalg::sparse::{SparseCholesky, SparseLu, SparseMatrix, SymbolicCholesky};
use gridmtd_linalg::LinalgError;

fn spd_triplets(poison: Option<(usize, usize, f64)>) -> SparseMatrix {
    let mut t = vec![
        (0, 0, 4.0),
        (0, 1, 1.0),
        (1, 0, 1.0),
        (1, 1, 3.0),
        (1, 2, 0.5),
        (2, 1, 0.5),
        (2, 2, 5.0),
    ];
    if let Some((i, j, v)) = poison {
        for entry in &mut t {
            if entry.0 == i && entry.1 == j {
                entry.2 = v;
            }
        }
    }
    SparseMatrix::from_triplets(3, 3, &t).unwrap()
}

#[test]
fn sparse_lu_rejects_nan_and_infinity_with_typed_errors() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let a = spd_triplets(Some((1, 1, bad)));
        match SparseLu::factor(&a) {
            Err(LinalgError::NonFinite { op }) => assert_eq!(op, "sparse_lu_factor"),
            // A NaN off the pivot path may first starve a column of
            // acceptable pivots; Singular is equally typed and safe.
            Err(LinalgError::Singular) => {}
            other => panic!("poisoned factor must be rejected, got {other:?}"),
        }
    }
}

#[test]
fn sparse_cholesky_rejects_nan_with_a_typed_error() {
    let a = spd_triplets(Some((1, 1, f64::NAN)));
    let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
    match SparseCholesky::factor(sym, &a) {
        Err(LinalgError::NotPositiveDefinite | LinalgError::NonFinite { .. }) => {}
        other => panic!("NaN pivot must be rejected, got {other:?}"),
    }
}

#[test]
fn clean_matrices_still_factor_and_solve_finite() {
    let a = spd_triplets(None);
    let rhs = vec![1.0, -2.0, 0.5];

    let lu = SparseLu::factor(&a).unwrap();
    let x = lu.solve(&rhs).unwrap();
    assert!(x.iter().all(|v| v.is_finite()));

    let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
    let chol = SparseCholesky::factor(sym, &a).unwrap();
    let y = chol.solve(&rhs).unwrap();
    assert!(y.iter().all(|v| v.is_finite()));
    // Both factorizations agree on the same SPD system.
    for (xa, ya) in x.iter().zip(&y) {
        assert!((xa - ya).abs() < 1e-12, "{xa} vs {ya}");
    }
}
