//! Dense symmetric eigendecomposition via Householder tridiagonalization
//! and the implicit-shift QL iteration.
//!
//! The differentiable subspace-angle state ([`crate::diff`]) needs the
//! dominant eigenpair of a dense symmetric positive-semidefinite matrix
//! once per optimizer evaluation. The one-sided Jacobi [`crate::Svd`]
//! delivers that eigenpair, but pays for full 1e-14 mutual orthogonality
//! of *every* column — two orders of magnitude more work than the
//! classic tridiagonalize-then-QL route at the `~10²` sizes the
//! selection loop sees. This module implements that route:
//!
//! 1. **Householder reduction** (`tred2`): `A = Q T Qᵀ` with `T`
//!    tridiagonal, accumulating `Q` — `O(n³)` with a small constant.
//! 2. **Implicit-shift QL** (`tqli`): Wilkinson-shifted rotations on the
//!    tridiagonal, applied to the accumulated `Q`; converges in `O(1)`
//!    sweeps per eigenvalue.
//!
//! Everything is serial, branch-deterministic arithmetic: identical
//! inputs give identical bits, which the workspace determinism contract
//! requires of anything on the selection path.

use crate::{LinalgError, Matrix};

/// QL iterations allowed per eigenvalue before reporting failure (the
/// classic bound; 4–5 is typical, anything near the cap indicates a
/// malformed input such as NaN entries).
const MAX_QL_ITERS: usize = 50;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix, with
/// eigenvalues sorted in non-increasing order.
///
/// # Example
///
/// ```
/// use gridmtd_linalg::{Matrix, SymmetricEigen};
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let eig = SymmetricEigen::compute(&a)?;
/// assert!((eig.values()[0] - 3.0).abs() < 1e-12);
/// assert!((eig.values()[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    values: Vec<f64>,
    vectors: Matrix,
}

impl SymmetricEigen {
    /// Computes all eigenpairs of a symmetric `n × n` matrix.
    ///
    /// Only the lower triangle is read; the strict upper triangle is
    /// ignored, so callers holding a numerically almost-symmetric matrix
    /// (e.g. the result of a pair of triangular solves) need not
    /// symmetrize first.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] for an empty matrix.
    /// * [`LinalgError::ShapeMismatch`] if the matrix is not square.
    /// * [`LinalgError::NonConvergence`] if the QL iteration exceeds its
    ///   sweep budget (seen only for non-finite inputs).
    pub fn compute(a: &Matrix) -> Result<SymmetricEigen, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m != n {
            return Err(LinalgError::ShapeMismatch {
                op: "symmetric_eigen (requires square)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        // Work on the symmetrized copy: the lower triangle is
        // authoritative.
        let mut z = Matrix::from_fn(n, n, |i, j| if i >= j { a[(i, j)] } else { a[(j, i)] });
        let mut d = vec![0.0_f64; n];
        let mut e = vec![0.0_f64; n];
        tridiagonalize(&mut z, &mut d, &mut e);
        ql_implicit(&mut z, &mut d, &mut e)?;

        // Sort eigenpairs by non-increasing eigenvalue; ties broken by
        // original index so the order (and the bits downstream) is
        // deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&p, &q| {
            d[q].partial_cmp(&d[p])
                .expect("NaN eigenvalue survived QL convergence")
                .then(p.cmp(&q))
        });
        let values: Vec<f64> = order.iter().map(|&j| d[j]).collect();
        let vectors = Matrix::from_fn(n, n, |i, j| z[(i, order[j])]);
        Ok(SymmetricEigen { values, vectors })
    }

    /// Eigenvalues in non-increasing order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Orthonormal eigenvectors as columns, ordered like
    /// [`SymmetricEigen::values`]. Signs are deterministic but otherwise
    /// arbitrary.
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// The eigenvector for `values()[j]` as an owned column.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }
}

/// Householder reduction of the symmetric matrix in `z` to tridiagonal
/// form: on return `d` holds the diagonal, `e[1..]` the subdiagonal
/// (`e[0] = 0`), and `z` the accumulated orthogonal transform `Q` with
/// `A = Q T Qᵀ`.
fn tridiagonalize(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                // Row already tridiagonal: skip the reflection.
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    // Store u/H in column i for the later accumulation.
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        z[(j, k)] -= f * e[k] + g * z[(i, k)];
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the product of the Householder reflections into z.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    z[(k, j)] -= g * z[(k, i)];
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on the tridiagonal `(d, e)` produced by
/// [`tridiagonalize`], rotating the accumulated transform in `z` along;
/// on return `d` holds the (unsorted) eigenvalues and the columns of `z`
/// the matching eigenvectors.
fn ql_implicit(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iters = 0;
        loop {
            // Find the first negligible subdiagonal at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iters += 1;
            if iters > MAX_QL_ITERS || gridmtd_faults::point!("linalg.eigen.ql_nonconvergence") {
                return Err(LinalgError::NonConvergence {
                    op: "symmetric_ql",
                    iterations: iters,
                });
            }
            // Wilkinson shift from the trailing 2×2 of the active block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0_f64, 1.0_f64);
            let mut p = 0.0;
            let mut underflowed = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // A rotation annihilated the subdiagonal early;
                    // restart the sweep on the shrunk block.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflowed = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflowed {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Svd;

    fn lcg_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let raw = Matrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / f64::from(1u32 << 31) - 1.0
        });
        // AᵀA: symmetric PSD, generic spectrum.
        raw.gram()
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_diag(&[3.0, -1.0, 5.0]);
        let eig = SymmetricEigen::compute(&a).unwrap();
        assert_eq!(eig.values().len(), 3);
        assert!((eig.values()[0] - 5.0).abs() < 1e-14);
        assert!((eig.values()[1] - 3.0).abs() < 1e-14);
        assert!((eig.values()[2] + 1.0).abs() < 1e-14);
    }

    #[test]
    fn reconstructs_the_input() {
        for seed in [1u64, 9, 42] {
            let a = lcg_symmetric(8, seed);
            let eig = SymmetricEigen::compute(&a).unwrap();
            let v = eig.vectors();
            let vl = Matrix::from_fn(8, 8, |i, j| v[(i, j)] * eig.values()[j]);
            let back = vl.matmul(&v.transpose()).unwrap();
            assert!(
                back.approx_eq(&a, 1e-10 * a.max_abs().max(1.0)),
                "seed {seed}: V diag(λ) Vᵀ != A"
            );
        }
    }

    #[test]
    fn vectors_are_orthonormal() {
        let a = lcg_symmetric(10, 77);
        let eig = SymmetricEigen::compute(&a).unwrap();
        let vtv = eig.vectors().transpose().matmul(eig.vectors()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(10), 1e-10));
    }

    #[test]
    fn values_match_jacobi_svd_for_psd_input() {
        // For PSD matrices the eigenvalues equal the singular values, so
        // the independent Jacobi SVD cross-checks the QL route.
        for seed in [5u64, 13, 101] {
            let a = lcg_symmetric(12, seed);
            let eig = SymmetricEigen::compute(&a).unwrap();
            let svd = Svd::compute(&a).unwrap();
            for (l, s) in eig.values().iter().zip(svd.singular_values()) {
                assert!(
                    (l - s).abs() <= 1e-10 * s.max(1.0),
                    "seed {seed}: eigenvalue {l} vs singular value {s}"
                );
            }
        }
    }

    #[test]
    fn values_are_sorted_non_increasing() {
        let a = lcg_symmetric(15, 3);
        let eig = SymmetricEigen::compute(&a).unwrap();
        for w in eig.values().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn only_lower_triangle_is_read() {
        let mut a = lcg_symmetric(6, 21);
        let reference = SymmetricEigen::compute(&a).unwrap();
        // Vandalize the strict upper triangle: results must not change.
        for i in 0..6 {
            for j in (i + 1)..6 {
                a[(i, j)] = f64::NAN;
            }
        }
        let eig = SymmetricEigen::compute(&a).unwrap();
        for (x, y) in eig.values().iter().zip(reference.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn repeated_eigenvalues_still_give_an_orthonormal_basis() {
        // 2·I ⊕ a rank-one bump: eigenvalue 2 has multiplicity 3.
        let mut a = Matrix::identity(4).scale(2.0);
        a[(0, 0)] = 5.0;
        let eig = SymmetricEigen::compute(&a).unwrap();
        assert!((eig.values()[0] - 5.0).abs() < 1e-12);
        for j in 1..4 {
            assert!((eig.values()[j] - 2.0).abs() < 1e-12);
        }
        let vtv = eig.vectors().transpose().matmul(eig.vectors()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[-4.5]]).unwrap();
        let eig = SymmetricEigen::compute(&a).unwrap();
        assert_eq!(eig.values(), &[-4.5]);
        assert_eq!(eig.vector(0), vec![1.0]);
    }

    #[test]
    fn deterministic_across_repeats() {
        let a = lcg_symmetric(9, 1234);
        let e1 = SymmetricEigen::compute(&a).unwrap();
        let e2 = SymmetricEigen::compute(&a).unwrap();
        for (x, y) in e1.values().iter().zip(e2.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(
                    e1.vectors()[(i, j)].to_bits(),
                    e2.vectors()[(i, j)].to_bits()
                );
            }
        }
    }

    #[test]
    fn non_square_is_rejected() {
        assert!(SymmetricEigen::compute(&Matrix::zeros(3, 2)).is_err());
        assert!(SymmetricEigen::compute(&Matrix::zeros(0, 0)).is_err());
    }
}
