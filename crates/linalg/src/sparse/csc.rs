//! Compressed-sparse-column matrix storage.

use crate::{LinalgError, Matrix};

/// A sparse matrix in compressed-sparse-column (CSC) format.
///
/// Within each column the row indices are strictly ascending and
/// duplicate-free; construction through [`SparseMatrix::from_triplets`]
/// sums duplicates, so callers can emit contributions in any order (the
/// natural fit for assembling susceptance and gain matrices from branch
/// and measurement stamps).
///
/// Values can be rewritten in place through
/// [`SparseMatrix::values_mut`] while the pattern stays fixed — the
/// contract the symbolic/numeric factorization split relies on: an MTD
/// reactance perturbation changes matrix *values*, never the sparsity
/// *pattern*.
///
/// # Example
///
/// ```
/// use gridmtd_linalg::sparse::SparseMatrix;
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0), (0, 0, 1.0)])?;
/// assert_eq!(a.nnz(), 2); // duplicates summed
/// assert_eq!(a.matvec(&[1.0, 1.0])?, vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a matrix from `(row, col, value)` triplets; duplicate
    /// coordinates are summed. Explicit zeros are kept (they are part of
    /// the pattern, which matters for factorization reuse).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if a triplet indexes out of
    /// bounds.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<SparseMatrix, LinalgError> {
        for &(i, j, _) in triplets {
            if i >= nrows || j >= ncols {
                return Err(LinalgError::ShapeMismatch {
                    op: "sparse_from_triplets",
                    lhs: (nrows, ncols),
                    rhs: (i, j),
                });
            }
        }
        // Bucket by column, then sort each column by row and merge
        // duplicates.
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        for &(i, j, v) in triplets {
            cols[j].push((i, v));
        }
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        col_ptr.push(0);
        for col in cols.iter_mut() {
            col.sort_unstable_by_key(|&(i, _)| i);
            let mut iter = col.iter().copied();
            if let Some((mut cur_row, mut cur_val)) = iter.next() {
                for (i, v) in iter {
                    if i == cur_row {
                        cur_val += v;
                    } else {
                        row_idx.push(cur_row);
                        values.push(cur_val);
                        cur_row = i;
                        cur_val = v;
                    }
                }
                row_idx.push(cur_row);
                values.push(cur_val);
            }
            col_ptr.push(row_idx.len());
        }
        Ok(SparseMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Converts a dense matrix, keeping every entry with `|v| > 0`.
    pub fn from_dense(a: &Matrix) -> SparseMatrix {
        let (nrows, ncols) = a.shape();
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for j in 0..ncols {
            for i in 0..nrows {
                let v = a[(i, j)];
                if v != 0.0 {
                    row_idx.push(i);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        SparseMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Dense copy of the matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for p in self.col_range(j) {
                out[(self.row_idx[p], j)] = self.values[p];
            }
        }
        out
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Index range of column `j`'s entries into
    /// [`SparseMatrix::row_indices`] / [`SparseMatrix::values`].
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        self.col_ptr[j]..self.col_ptr[j + 1]
    }

    /// Column pointers (length `ncols + 1`).
    pub fn col_ptrs(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row indices, concatenated per column.
    pub fn row_indices(&self) -> &[usize] {
        &self.row_idx
    }

    /// Stored values, concatenated per column.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (the pattern is immutable):
    /// the in-place update hook for numeric refactorization.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Entry lookup by coordinate (binary search within the column).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let r = self.col_range(j);
        match self.row_idx[r.clone()].binary_search(&i) {
            Ok(p) => self.values[r.start + p],
            Err(_) => 0.0,
        }
    }

    /// Position of entry `(i, j)` in the value array, if present in the
    /// pattern — used to precompute scatter maps for repeated numeric
    /// refills.
    pub fn position(&self, i: usize, j: usize) -> Option<usize> {
        let r = self.col_range(j);
        self.row_idx[r.clone()]
            .binary_search(&i)
            .ok()
            .map(|p| r.start + p)
    }

    /// Largest absolute stored value (0 for an empty pattern).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// `y = A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_matvec",
                lhs: (self.nrows, self.ncols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                for p in self.col_range(j) {
                    y[self.row_idx[p]] += self.values[p] * xj;
                }
            }
        }
        Ok(y)
    }

    /// `y = Aᵀ x` (a dot product per column — no transpose materialized).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != nrows`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.nrows {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_matvec_transposed",
                lhs: (self.ncols, self.nrows),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.ncols];
        for (j, yj) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for p in self.col_range(j) {
                acc += self.values[p] * x[self.row_idx[p]];
            }
            *yj = acc;
        }
        Ok(y)
    }

    /// Transposed copy (CSC of `Aᵀ` = CSR of `A`).
    pub fn transpose(&self) -> SparseMatrix {
        let mut counts = vec![0usize; self.nrows + 1];
        for &i in &self.row_idx {
            counts[i + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut col_ptr = counts.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for j in 0..self.ncols {
            for p in self.col_range(j) {
                let i = self.row_idx[p];
                let q = col_ptr[i];
                col_ptr[i] += 1;
                row_idx[q] = j;
                values[q] = self.values[p];
            }
        }
        SparseMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            col_ptr: counts,
            row_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> SparseMatrix {
        // [[1, 0, 2], [0, 3, 0], [4, 0, 5]]
        SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (2, 0, 4.0),
                (1, 1, 3.0),
                (0, 2, 2.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn triplets_round_trip_through_dense() {
        let a = example();
        assert_eq!(a.nnz(), 5);
        let d = a.to_dense();
        assert_eq!(d[(0, 2)], 2.0);
        assert_eq!(d[(1, 0)], 0.0);
        let back = SparseMatrix::from_dense(&d);
        assert_eq!(a, back);
    }

    #[test]
    fn duplicates_are_summed_and_sorted() {
        let a =
            SparseMatrix::from_triplets(2, 1, &[(1, 0, 1.0), (0, 0, 2.0), (1, 0, 0.5)]).unwrap();
        assert_eq!(a.row_indices(), &[0, 1]);
        assert_eq!(a.values(), &[2.0, 1.5]);
    }

    #[test]
    fn out_of_bounds_triplet_is_rejected() {
        assert!(SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(SparseMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let x = [1.0, -2.0, 3.0];
        assert_eq!(a.matvec(&x).unwrap(), a.to_dense().matvec(&x).unwrap());
        assert_eq!(
            a.matvec_transposed(&x).unwrap(),
            a.to_dense().matvec_transposed(&x).unwrap()
        );
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn transpose_matches_dense() {
        let a = example();
        assert_eq!(a.transpose().to_dense(), a.to_dense().transpose());
        // Double transpose is the identity.
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn get_and_position_agree() {
        let a = example();
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 0), 0.0);
        let p = a.position(2, 2).unwrap();
        assert_eq!(a.values()[p], 5.0);
        assert!(a.position(1, 2).is_none());
    }

    #[test]
    fn values_mut_keeps_pattern() {
        let mut a = example();
        a.values_mut()[0] = 9.0;
        assert_eq!(a.get(0, 0), 9.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn explicit_zeros_stay_in_the_pattern() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 1, 1.0)]).unwrap();
        assert_eq!(a.nnz(), 2);
        assert!(a.position(0, 0).is_some());
    }
}
