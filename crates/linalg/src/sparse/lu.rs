//! Sparse LU factorization `P A = L U` (Gilbert–Peierls, left-looking,
//! partial pivoting).
//!
//! The consumer is the warm-started simplex engine: an LP basis matrix
//! for the DC-OPF has a handful of nonzeros per column, so factoring it
//! densely costs `O(m³)` on mostly-zero arithmetic — the dominant cost
//! of a warm `dc_opf` resolve at 118-bus scale. Gilbert–Peierls runs in
//! time proportional to the arithmetic actually performed (symbolic
//! reachability per column via depth-first search, then a sparse
//! triangular solve), with row pivoting for the same numerical safety as
//! the dense [`crate::Lu`].

use super::SparseMatrix;
use crate::LinalgError;

/// Absent-entry sentinel for the inverse row permutation.
const NONE: usize = usize::MAX;

/// Pivot tolerance relative to the matrix scale (matches [`crate::Lu`]).
const PIVOT_TOL: f64 = 1e-13;

/// Sparse LU factors `P A = L U` with partial (row) pivoting.
///
/// `L` is unit lower triangular and `U` upper triangular, both stored
/// column-compressed in pivot-order row indices.
///
/// # Example
///
/// ```
/// use gridmtd_linalg::sparse::{SparseLu, SparseMatrix};
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 3.0), (1, 0, 6.0), (1, 1, 3.0)])?;
/// let lu = SparseLu::factor(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    l_colptr: Vec<usize>,
    l_rowidx: Vec<usize>,
    l_vals: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rowidx: Vec<usize>,
    u_vals: Vec<f64>,
    /// `perm[k]` = original row index pivoted to position `k`.
    perm: Vec<usize>,
}

impl SparseLu {
    /// Factors a square sparse matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square.
    /// * [`LinalgError::Empty`] for a 0×0 matrix.
    /// * [`LinalgError::Singular`] if no acceptable pivot exists in some
    ///   column (structurally or numerically singular).
    /// * [`LinalgError::NonFinite`] if a NaN/infinite value reaches the
    ///   factorization — poisoned input is rejected here rather than
    ///   silently baked into the factors.
    pub fn factor(a: &SparseMatrix) -> Result<SparseLu, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_lu_factor",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.nrows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let scale = a.max_abs().max(1.0);

        // During factorization L's row indices are *original* rows (the
        // pivot order of later rows is not yet known); they are remapped
        // to pivot positions at the end.
        let mut l_colptr = Vec::with_capacity(n + 1);
        let mut l_rowidx: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_colptr = Vec::with_capacity(n + 1);
        let mut u_rowidx: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        l_colptr.push(0);
        u_colptr.push(0);

        let mut pinv = vec![NONE; n]; // original row -> pivot position
        let mut perm = vec![0usize; n];
        let mut x = vec![0.0f64; n]; // dense accumulator, original rows
        let mut stamp = vec![NONE; n]; // DFS visit marker per column
        let mut pattern: Vec<usize> = Vec::with_capacity(n); // DFS postorder
        let mut dfs_node: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_child: Vec<usize> = Vec::with_capacity(n);

        #[allow(clippy::needless_range_loop)] // k drives far more than `perm`
        for k in 0..n {
            // Symbolic step: reachability of A(:,k)'s rows in the graph
            // of already-computed L columns (depth-first, postorder).
            pattern.clear();
            for p in a.col_range(k) {
                let start = a.row_indices()[p];
                if stamp[start] == k {
                    continue;
                }
                dfs_node.push(start);
                dfs_child.push(0);
                stamp[start] = k;
                while let Some(&node) = dfs_node.last() {
                    let jcol = pinv[node];
                    let mut advanced = false;
                    if jcol != NONE {
                        // Children: below-diagonal rows of L column jcol.
                        let lo = l_colptr[jcol] + 1;
                        let hi = l_colptr[jcol + 1];
                        let depth = dfs_node.len() - 1;
                        while lo + dfs_child[depth] < hi {
                            let child = l_rowidx[lo + dfs_child[depth]];
                            dfs_child[depth] += 1;
                            if stamp[child] != k {
                                stamp[child] = k;
                                dfs_node.push(child);
                                dfs_child.push(0);
                                advanced = true;
                                break;
                            }
                        }
                    }
                    if !advanced {
                        pattern.push(node);
                        dfs_node.pop();
                        dfs_child.pop();
                    }
                }
            }

            // Numeric step: x = L \ A(:,k), visiting pivotal nodes in
            // reverse postorder (each before everything it updates).
            for p in a.col_range(k) {
                x[a.row_indices()[p]] = a.values()[p];
            }
            for &node in pattern.iter().rev() {
                let jcol = pinv[node];
                if jcol == NONE {
                    continue;
                }
                let xj = x[node];
                if xj != 0.0 {
                    for p in (l_colptr[jcol] + 1)..l_colptr[jcol + 1] {
                        x[l_rowidx[p]] -= l_vals[p] * xj;
                    }
                }
            }

            // Partial pivoting over the not-yet-pivotal candidate rows
            // (ties broken by smallest original row index).
            let mut ipiv = NONE;
            let mut best = -1.0f64;
            for &i in &pattern {
                if pinv[i] == NONE {
                    let v = x[i].abs();
                    if v > best || (v == best && i < ipiv) {
                        best = v;
                        ipiv = i;
                    }
                }
            }
            if ipiv == NONE || best <= PIVOT_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if gridmtd_faults::point!("linalg.sparse_lu.zero_pivot") {
                return Err(LinalgError::Singular);
            }
            let pivot = x[ipiv];
            if !pivot.is_finite() {
                return Err(LinalgError::NonFinite {
                    op: "sparse_lu_factor",
                });
            }
            pinv[ipiv] = k;
            perm[k] = ipiv;

            // Split the solved column: pivotal rows → U, the rest → L
            // (scaled by the pivot). Diagonals are stored first.
            u_rowidx.push(k);
            u_vals.push(pivot);
            l_rowidx.push(ipiv);
            l_vals.push(1.0);
            for &i in &pattern {
                if i == ipiv {
                    x[i] = 0.0;
                    continue;
                }
                // NaN in a *non-pivot* entry would sail through the
                // pivot test (NaN loses every `>` comparison, so it is
                // never the pivot) and poison L/U silently; refuse it
                // with a typed error at the source instead.
                if !x[i].is_finite() {
                    return Err(LinalgError::NonFinite {
                        op: "sparse_lu_factor",
                    });
                }
                let pos = pinv[i];
                if pos != NONE {
                    u_rowidx.push(pos);
                    u_vals.push(x[i]);
                } else {
                    l_rowidx.push(i);
                    l_vals.push(x[i] / pivot);
                }
                x[i] = 0.0;
            }
            l_colptr.push(l_rowidx.len());
            u_colptr.push(u_rowidx.len());
        }

        // Remap L's rows from original indices to pivot positions.
        for r in l_rowidx.iter_mut() {
            *r = pinv[*r];
        }

        Ok(SparseLu {
            n,
            l_colptr,
            l_rowidx,
            l_vals,
            u_colptr,
            u_rowidx,
            u_vals,
            perm,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries across both factors.
    pub fn nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // x = P b, then L y = x (unit diagonal), then U x = y.
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                for p in (self.l_colptr[j] + 1)..self.l_colptr[j + 1] {
                    x[self.l_rowidx[p]] -= self.l_vals[p] * xj;
                }
            }
        }
        for j in (0..n).rev() {
            let range = self.u_colptr[j]..self.u_colptr[j + 1];
            let xj = x[j] / self.u_vals[range.start];
            x[j] = xj;
            if xj != 0.0 {
                for p in (range.start + 1)..range.end {
                    x[self.u_rowidx[p]] -= self.u_vals[p] * xj;
                }
            }
        }
        Ok(x)
    }

    /// Solves `Aᵀ x = b` from the same factorization
    /// (`Aᵀ = Uᵀ Lᵀ P`) — the simplex dual solve.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_lu_solve_transposed",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Uᵀ w = b: Uᵀ is lower triangular; column j of U is row j of Uᵀ,
        // so each step is a sparse dot product.
        let mut w = b.to_vec();
        for j in 0..n {
            let range = self.u_colptr[j]..self.u_colptr[j + 1];
            let mut acc = w[j];
            for p in (range.start + 1)..range.end {
                acc -= self.u_vals[p] * w[self.u_rowidx[p]];
            }
            w[j] = acc / self.u_vals[range.start];
        }
        // Lᵀ z = w (unit diagonal).
        for j in (0..n).rev() {
            let mut acc = w[j];
            for p in (self.l_colptr[j] + 1)..self.l_colptr[j + 1] {
                acc -= self.l_vals[p] * w[self.l_rowidx[p]];
            }
            w[j] = acc;
        }
        // Undo the row permutation.
        let mut x = vec![0.0; n];
        for (i, &pi) in self.perm.iter().enumerate() {
            x[pi] = w[i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lu, vector, Matrix};

    fn unsymmetric(n: usize) -> SparseMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 3.0 + (i % 4) as f64));
            if i + 1 < n {
                t.push((i, i + 1, -1.0 - (i % 3) as f64 * 0.5));
                t.push((i + 1, i, 0.75));
            }
            if i + 5 < n {
                t.push((i + 5, i, -0.3));
            }
        }
        SparseMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn solve_matches_dense_lu() {
        for n in [1, 2, 3, 8, 25, 60] {
            let a = unsymmetric(n);
            let slu = SparseLu::factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
            let x = slu.solve(&b).unwrap();
            let xd = lu::solve(&a.to_dense(), &b).unwrap();
            assert!(vector::approx_eq(&x, &xd, 1e-9), "n = {n}");
            let xt = slu.solve_transposed(&b).unwrap();
            let xtd = lu::solve(&a.to_dense().transpose(), &b).unwrap();
            assert!(vector::approx_eq(&xt, &xtd, 1e-9), "transposed n = {n}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let x = SparseLu::factor(&a).unwrap().solve(&[2.0, 3.0]).unwrap();
        assert!(vector::approx_eq(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn residual_is_small_for_a_tough_column_ordering() {
        // Dense-ish block requiring genuine pivoting decisions.
        let a = Matrix::from_rows(&[
            &[1e-8, 1.0, 0.0, 2.0],
            &[1.0, 0.0, 3.0, 0.0],
            &[0.0, 2.0, 1.0, 1.0],
            &[4.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        let sa = SparseMatrix::from_dense(&a);
        let slu = SparseLu::factor(&sa).unwrap();
        let b = [1.0, -2.0, 0.5, 3.0];
        let x = slu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        assert!(vector::approx_eq(&back, &b, 1e-9));
    }

    #[test]
    fn singular_matrices_are_detected() {
        // Structurally singular: empty column.
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(SparseLu::factor(&a).unwrap_err(), LinalgError::Singular);
        // Numerically singular: duplicated row.
        let a = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0), (1, 1, 2.0)],
        )
        .unwrap();
        assert_eq!(SparseLu::factor(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = SparseMatrix::from_triplets(2, 3, &[]).unwrap();
        assert!(SparseLu::factor(&a).is_err());
        let empty = SparseMatrix::from_triplets(0, 0, &[]).unwrap();
        assert!(matches!(SparseLu::factor(&empty), Err(LinalgError::Empty)));
        let ok = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let lu = SparseLu::factor(&ok).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_transposed(&[1.0]).is_err());
    }
}
