//! Sparse linear algebra: CSC storage, fill-reducing ordering, and
//! factorizations with a split symbolic/numeric phase.
//!
//! Real grids produce extremely sparse operators — the reduced
//! susceptance matrix `B̃` and the WLS gain matrix `HᵀWH` have a handful
//! of nonzeros per row — and MTD reactance perturbations change only
//! matrix *values*, never the sparsity *pattern*. This module exploits
//! both facts:
//!
//! * [`SparseMatrix`] — compressed-sparse-column storage with in-place
//!   value rewrites ([`SparseMatrix::values_mut`]) under a fixed pattern;
//! * [`ordering::reverse_cuthill_mckee`] — a fill-reducing ordering for
//!   the network-graph-structured symmetric matrices;
//! * [`SymbolicCholesky`] / [`SparseCholesky`] — sparse Cholesky with
//!   the symbolic phase (elimination tree, pattern of `L`, scatter plan)
//!   computed **once per topology** and the numeric phase re-run per
//!   perturbation ([`SparseCholesky::refactor`]), plus multi-RHS
//!   triangular solves ([`SparseCholesky::solve_matrix`]);
//! * [`SparseLu`] — Gilbert–Peierls LU with partial pivoting for the
//!   unsymmetric simplex basis matrices of the DC-OPF warm path.
//!
//! Consumers keep the dense kernels below a size crossover (the dense
//! path has no index overhead and is byte-stable with the original
//! implementation); see `gridmtd_powergrid::dcpf`,
//! `gridmtd_estimation::wls` and `gridmtd_opf::lp` for the selection
//! policies.

mod cholesky;
mod csc;
mod lu;
pub mod ordering;

pub use cholesky::{SparseCholesky, SymbolicCholesky};
pub use csc::SparseMatrix;
pub use lu::SparseLu;
