//! Fill-reducing orderings for sparse symmetric factorizations.
//!
//! Reduced susceptance and WLS gain matrices are graph Laplacian-like:
//! their adjacency structure *is* the grid topology. Reverse
//! Cuthill–McKee produces a small-bandwidth permutation for such meshed
//! network graphs, which keeps the Cholesky fill-in low without the
//! complexity of a full minimum-degree implementation.

use super::SparseMatrix;

/// Reverse Cuthill–McKee ordering of a square matrix's symmetrized
/// pattern.
///
/// Returns a permutation `perm` with `perm[k] = original index of the
/// k-th row/column` of the reordered matrix. Disconnected components are
/// ordered one after another, so the permutation is always complete.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn reverse_cuthill_mckee(a: &SparseMatrix) -> Vec<usize> {
    assert!(a.is_square(), "RCM needs a square matrix");
    let n = a.nrows();
    if n == 0 {
        return Vec::new();
    }

    // Symmetrized adjacency (pattern of A + Aᵀ, diagonal dropped).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for p in a.col_range(j) {
            let i = a.row_indices()[p];
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for list in adj.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut neighbors = Vec::new();

    // BFS from `start`, pushing nodes into `order`; neighbors are
    // visited in ascending degree (ties by index — deterministic).
    let mut bfs = |start: usize, order: &mut Vec<usize>, visited: &mut Vec<bool>| {
        queue.clear();
        queue.push_back(start);
        visited[start] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbors.clear();
            neighbors.extend(adj[u].iter().copied().filter(|&v| !visited[v]));
            neighbors.sort_unstable_by_key(|&v| (degree[v], v));
            for &v in &neighbors {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    };

    while order.len() < n {
        // Root for the next component: unvisited node of minimum degree,
        // then pushed toward the periphery by one BFS sweep (a cheap
        // pseudo-peripheral heuristic: the last level's lowest-degree
        // node is far from the start).
        let root = (0..n)
            .filter(|&v| !visited[v])
            .min_by_key(|&v| (degree[v], v))
            .expect("unvisited node exists");
        let probe_start = order.len();
        bfs(root, &mut order, &mut visited);
        let component: Vec<usize> = order.drain(probe_start..).collect();
        let far = *component.last().expect("component is non-empty");
        for &v in &component {
            visited[v] = false;
        }
        let start = if degree[far] <= degree[root] {
            far
        } else {
            root
        };
        bfs(start, &mut order, &mut visited);
    }

    order.reverse();
    order
}

/// Checks that `perm` is a permutation of `0..n` (used by debug asserts
/// and property tests).
pub fn is_permutation(perm: &[usize]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    perm.iter().all(|&p| {
        if p >= n || seen[p] {
            false
        } else {
            seen[p] = true;
            true
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> SparseMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
        }
        for i in 0..n - 1 {
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        SparseMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = path_graph(12);
        let perm = reverse_cuthill_mckee(&a);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn rcm_on_a_path_has_unit_bandwidth() {
        // A path graph relabelled by RCM must remain banded with
        // bandwidth 1 (consecutive labels along the path).
        let a = path_graph(16);
        let perm = reverse_cuthill_mckee(&a);
        let mut iperm = [0usize; 16];
        for (k, &p) in perm.iter().enumerate() {
            iperm[p] = k;
        }
        for i in 0..15 {
            assert_eq!(
                iperm[i].abs_diff(iperm[i + 1]),
                1,
                "path neighbors must stay adjacent"
            );
        }
    }

    #[test]
    fn disconnected_components_are_all_ordered() {
        // Two disjoint 2-cliques + an isolated node.
        let a = SparseMatrix::from_triplets(
            5,
            5,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (4, 4, 1.0),
            ],
        )
        .unwrap();
        let perm = reverse_cuthill_mckee(&a);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn empty_matrix_gets_empty_permutation() {
        let a = SparseMatrix::from_triplets(0, 0, &[]).unwrap();
        assert!(reverse_cuthill_mckee(&a).is_empty());
    }

    #[test]
    fn is_permutation_rejects_bad_inputs() {
        assert!(is_permutation(&[1, 0, 2]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
    }
}
