//! Sparse Cholesky `P A Pᵀ = L Lᵀ` with a split symbolic/numeric
//! factorization.
//!
//! The split is the point: MTD reactance perturbations change the
//! *values* of the reduced susceptance matrix `B̃` and the WLS gain
//! matrix `HᵀWH` but never their sparsity *pattern* (which is fixed by
//! the grid topology). [`SymbolicCholesky::analyze`] does the
//! graph work — fill-reducing ordering, elimination tree, nonzero
//! pattern of `L`, scatter plan — once per topology;
//! [`SparseCholesky::refactor`] then re-runs only the `O(flops(L))`
//! numeric phase for each new value assignment, and
//! [`SparseCholesky::solve`] performs sparse triangular solves against
//! the cached factor.
//!
//! The numeric phase is an up-looking factorization: row `k` of `L` is
//! obtained by a sparse triangular solve against the already-computed
//! leading submatrix, visiting exactly the nonzero positions recorded by
//! the symbolic phase (no searching, no allocation).

use std::sync::Arc;

use super::{ordering, SparseMatrix};
use crate::LinalgError;

/// No-parent sentinel in the elimination tree.
const NONE: usize = usize::MAX;

/// Symbolic Cholesky analysis of a sparse symmetric matrix: everything
/// that depends only on the pattern.
///
/// Computed once per topology and shared (it is immutable) by any number
/// of numeric factorizations.
#[derive(Debug, Clone)]
pub struct SymbolicCholesky {
    n: usize,
    /// Fill-reducing permutation: `perm[k]` = original index at position `k`.
    perm: Vec<usize>,
    /// Pattern the analysis was built for (refactor guard): the scatter
    /// plan indexes `a.values()` positionally, so a refactor input must
    /// match coordinate for coordinate, not just in shape and count.
    a_colptr: Vec<usize>,
    a_rowidx: Vec<usize>,
    /// Column pointers of `L` (CSC, permuted indices).
    l_colptr: Vec<usize>,
    /// Row-wise pattern of `L`: for each permuted row `k`, the columns
    /// `j < k` with `L(k,j) ≠ 0`, in the topological (elimination-tree)
    /// order the numeric pass must visit them.
    rowpat_ptr: Vec<usize>,
    rowpat_idx: Vec<usize>,
    /// Scatter plan: for each permuted column `k`, the `A`-value indices
    /// and their permuted destinations (`dst == k` is the diagonal).
    scatter_ptr: Vec<usize>,
    scatter_src: Vec<usize>,
    scatter_dst: Vec<usize>,
}

impl SymbolicCholesky {
    /// Analyzes the pattern of a symmetric matrix, choosing a reverse
    /// Cuthill–McKee ordering.
    ///
    /// Only the symmetric part of the pattern matters; values are
    /// ignored. Both triangles may be stored (they are for the stamped
    /// grid matrices).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square.
    /// * [`LinalgError::Empty`] for a 0×0 matrix.
    pub fn analyze(a: &SparseMatrix) -> Result<SymbolicCholesky, LinalgError> {
        let perm = {
            if !a.is_square() {
                return Err(LinalgError::ShapeMismatch {
                    op: "sparse_cholesky_analyze",
                    lhs: a.shape(),
                    rhs: a.shape(),
                });
            }
            ordering::reverse_cuthill_mckee(a)
        };
        SymbolicCholesky::analyze_with_perm(a, perm)
    }

    /// Analyzes with a caller-supplied ordering (`perm[k]` = original
    /// index at position `k`). The natural order is `(0..n).collect()`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square or `perm`
    ///   has the wrong length / is not a permutation.
    /// * [`LinalgError::Empty`] for a 0×0 matrix.
    pub fn analyze_with_perm(
        a: &SparseMatrix,
        perm: Vec<usize>,
    ) -> Result<SymbolicCholesky, LinalgError> {
        let n = a.nrows();
        if !a.is_square() || perm.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_cholesky_analyze",
                lhs: a.shape(),
                rhs: (perm.len(), perm.len()),
            });
        }
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if !ordering::is_permutation(&perm) {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_cholesky_perm",
                lhs: (n, n),
                rhs: (perm.len(), perm.len()),
            });
        }
        let mut iperm = vec![0usize; n];
        for (k, &p) in perm.iter().enumerate() {
            iperm[p] = k;
        }

        // Scatter plan and permuted upper-triangle pattern. Every stored
        // entry (i, j) of A routes to permuted coordinates
        // (min(pi,pj), max(pi,pj)) — both triangle copies land on the
        // same slot, so symmetric inputs scatter consistently.
        let mut scatter_cols: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (src, dst)
        for j in 0..n {
            let pj = iperm[j];
            for p in a.col_range(j) {
                let pi = iperm[a.row_indices()[p]];
                let (lo, hi) = if pi <= pj { (pi, pj) } else { (pj, pi) };
                scatter_cols[hi].push((p, lo));
            }
        }
        let mut scatter_ptr = Vec::with_capacity(n + 1);
        let mut scatter_src = Vec::with_capacity(a.nnz());
        let mut scatter_dst = Vec::with_capacity(a.nnz());
        scatter_ptr.push(0);
        // Strict upper pattern per permuted column (deduplicated).
        let mut upper: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, col) in scatter_cols.iter().enumerate() {
            for &(src, dst) in col {
                scatter_src.push(src);
                scatter_dst.push(dst);
                if dst < k {
                    upper[k].push(dst);
                }
            }
            scatter_ptr.push(scatter_src.len());
            upper[k].sort_unstable();
            upper[k].dedup();
        }

        // Elimination tree (Liu's algorithm with path compression).
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        for (k, up) in upper.iter().enumerate() {
            for &i in up {
                let mut j = i;
                while j != NONE && j < k {
                    let next = ancestor[j];
                    ancestor[j] = k;
                    if next == NONE {
                        parent[j] = k;
                    }
                    j = next;
                }
            }
        }

        // Row patterns of L via the elimination-tree reach of each row:
        // walking from every nonzero A(i, k), i < k, toward the root
        // until a node already reached for this k is met. The order the
        // walk produces (each node before its recorded ancestors) is
        // exactly the order the numeric triangular solve needs.
        let mut rowpat_ptr = Vec::with_capacity(n + 1);
        let mut rowpat_idx = Vec::new();
        rowpat_ptr.push(0);
        let mut stamp = vec![NONE; n];
        let mut stack = vec![0usize; n];
        let mut path = vec![0usize; n];
        let mut colcount = vec![1usize; n]; // diagonal
        for (k, up) in upper.iter().enumerate() {
            stamp[k] = k;
            let mut top = n;
            for &i in up {
                let mut j = i;
                let mut len = 0;
                while stamp[j] != k {
                    path[len] = j;
                    len += 1;
                    stamp[j] = k;
                    j = parent[j];
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    stack[top] = path[len];
                }
            }
            for &j in &stack[top..n] {
                rowpat_idx.push(j);
                colcount[j] += 1;
            }
            rowpat_ptr.push(rowpat_idx.len());
        }

        let mut l_colptr = Vec::with_capacity(n + 1);
        l_colptr.push(0);
        for &c in &colcount {
            l_colptr.push(l_colptr.last().unwrap() + c);
        }

        Ok(SymbolicCholesky {
            n,
            perm,
            a_colptr: a.col_ptrs().to_vec(),
            a_rowidx: a.row_indices().to_vec(),
            l_colptr,
            rowpat_ptr,
            rowpat_idx,
            scatter_ptr,
            scatter_src,
            scatter_dst,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Nonzero count of the factor `L` (including the diagonal).
    pub fn nnz_l(&self) -> usize {
        *self.l_colptr.last().expect("colptr is non-empty")
    }

    /// The fill-reducing permutation (`perm[k]` = original index).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }
}

/// Numeric sparse Cholesky factor bound to a [`SymbolicCholesky`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use gridmtd_linalg::sparse::{SparseMatrix, SymbolicCholesky, SparseCholesky};
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// // A small SPD tridiagonal system.
/// let mut a = SparseMatrix::from_triplets(
///     3,
///     3,
///     &[(0, 0, 4.0), (1, 1, 4.0), (2, 2, 4.0), (0, 1, -1.0), (1, 0, -1.0), (1, 2, -1.0), (2, 1, -1.0)],
/// )?;
/// let sym = Arc::new(SymbolicCholesky::analyze(&a)?);
/// let mut chol = SparseCholesky::factor(sym, &a)?;
/// let x = chol.solve(&[1.0, 0.0, 0.0])?;
/// // Change values (same pattern) and refactor: only the numeric phase runs.
/// for v in a.values_mut() {
///     *v *= 2.0;
/// }
/// chol.refactor(&a)?;
/// let x2 = chol.solve(&[1.0, 0.0, 0.0])?;
/// assert!((x[0] - 2.0 * x2[0]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    sym: Arc<SymbolicCholesky>,
    l_rowidx: Vec<usize>,
    l_vals: Vec<f64>,
    /// Dense workspace for the up-looking solve and the triangular
    /// solves (kept across refactorizations to avoid reallocation).
    work: Vec<f64>,
    /// Next free slot per column of `L` during a numeric pass.
    next: Vec<usize>,
}

impl SparseCholesky {
    /// Runs the numeric factorization of `a` against a symbolic
    /// analysis.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` does not match the
    ///   analyzed pattern.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly
    ///   positive relative to the matrix scale.
    pub fn factor(
        sym: Arc<SymbolicCholesky>,
        a: &SparseMatrix,
    ) -> Result<SparseCholesky, LinalgError> {
        let n = sym.n;
        let nnz_l = sym.nnz_l();
        let mut chol = SparseCholesky {
            sym,
            l_rowidx: vec![0; nnz_l],
            l_vals: vec![0.0; nnz_l],
            work: vec![0.0; n],
            next: vec![0; n],
        };
        chol.refactor(a)?;
        Ok(chol)
    }

    /// Re-runs the numeric phase for a matrix with the *same pattern*
    /// as the one analyzed (typically the same [`SparseMatrix`] after a
    /// [`SparseMatrix::values_mut`] update).
    ///
    /// # Errors
    ///
    /// Same contract as [`SparseCholesky::factor`]. On error the factor
    /// is left in an unusable intermediate state; refactor again before
    /// solving.
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<(), LinalgError> {
        let SparseCholesky {
            sym,
            l_rowidx,
            l_vals,
            work: x,
            next,
        } = self;
        let sym = &**sym;
        let n = sym.n;
        if a.shape() != (n, n) || a.col_ptrs() != sym.a_colptr || a.row_indices() != sym.a_rowidx {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_cholesky_refactor",
                lhs: (n, n),
                rhs: a.shape(),
            });
        }
        let tol = 1e-13 * a.max_abs().max(1.0);
        let a_vals = a.values();
        for k in 0..n {
            // Scatter the permuted upper column k of A.
            let mut d = 0.0;
            for s in sym.scatter_ptr[k]..sym.scatter_ptr[k + 1] {
                let dst = sym.scatter_dst[s];
                let v = a_vals[sym.scatter_src[s]];
                if dst == k {
                    d = v;
                } else {
                    x[dst] = v;
                }
            }
            // Sparse triangular solve along the recorded row pattern.
            for r in sym.rowpat_ptr[k]..sym.rowpat_ptr[k + 1] {
                let j = sym.rowpat_idx[r];
                let diag = l_vals[sym.l_colptr[j]];
                let lkj = x[j] / diag;
                x[j] = 0.0;
                for p in (sym.l_colptr[j] + 1)..next[j] {
                    x[l_rowidx[p]] -= l_vals[p] * lkj;
                }
                let slot = next[j];
                l_rowidx[slot] = k;
                l_vals[slot] = lkj;
                next[j] += 1;
                d -= lkj * lkj;
            }
            // `d <= tol` also rejects NaN-poisoned input (NaN fails the
            // comparison the other way in `d.sqrt()`-land otherwise).
            if d.is_nan() || d <= tol {
                return Err(LinalgError::NotPositiveDefinite);
            }
            if gridmtd_faults::point!("linalg.sparse_cholesky.zero_pivot") {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let diag_slot = sym.l_colptr[k];
            l_rowidx[diag_slot] = k;
            l_vals[diag_slot] = d.sqrt();
            next[k] = diag_slot + 1;
        }
        Ok(())
    }

    /// The symbolic analysis this factor is bound to.
    pub fn symbolic(&self) -> &Arc<SymbolicCholesky> {
        &self.sym
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// Solves `A x = b` via permuted forward/backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.sym.n;
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut w: Vec<f64> = self.sym.perm.iter().map(|&p| b[p]).collect();
        self.solve_permuted_in_place(&mut w);
        let mut out = vec![0.0; n];
        for (k, &p) in self.sym.perm.iter().enumerate() {
            out[p] = w[k];
        }
        Ok(out)
    }

    /// Multi-right-hand-side solve `A X = B`, streaming the factor once
    /// per column with a single shared workspace. Each column undergoes
    /// exactly the arithmetic of a standalone [`SparseCholesky::solve`],
    /// so batched and per-vector results are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != dim()`.
    pub fn solve_matrix(&self, b: &crate::Matrix) -> Result<crate::Matrix, LinalgError> {
        let n = self.sym.n;
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_cholesky_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = crate::Matrix::zeros(n, b.cols());
        let mut w = vec![0.0; n];
        for c in 0..b.cols() {
            for (k, &p) in self.sym.perm.iter().enumerate() {
                w[k] = b[(p, c)];
            }
            self.solve_permuted_in_place(&mut w);
            for (k, &p) in self.sym.perm.iter().enumerate() {
                out[(p, c)] = w[k];
            }
        }
        Ok(out)
    }

    /// `L (Lᵀ w) = w` in the permuted basis, in place.
    fn solve_permuted_in_place(&self, w: &mut [f64]) {
        let sym = &*self.sym;
        let n = sym.n;
        // Forward: L y = w (diagonal first in each column).
        for j in 0..n {
            let range = sym.l_colptr[j]..sym.l_colptr[j + 1];
            let yj = w[j] / self.l_vals[range.start];
            w[j] = yj;
            for p in (range.start + 1)..range.end {
                w[self.l_rowidx[p]] -= self.l_vals[p] * yj;
            }
        }
        // Backward: Lᵀ x = y.
        for j in (0..n).rev() {
            let range = sym.l_colptr[j]..sym.l_colptr[j + 1];
            let mut acc = w[j];
            for p in (range.start + 1)..range.end {
                acc -= self.l_vals[p] * w[self.l_rowidx[p]];
            }
            w[j] = acc / self.l_vals[range.start];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vector, Cholesky, Matrix};

    /// An SPD "grid-like" test matrix: Laplacian of a meshed graph plus
    /// a diagonal shift.
    fn meshed_spd(n: usize) -> SparseMatrix {
        let mut t = Vec::new();
        let edge = |t: &mut Vec<(usize, usize, f64)>, i: usize, j: usize, w: f64| {
            t.push((i, i, w));
            t.push((j, j, w));
            t.push((i, j, -w));
            t.push((j, i, -w));
        };
        for i in 0..n - 1 {
            edge(&mut t, i, i + 1, 1.0 + i as f64 * 0.1);
        }
        for i in 0..n.saturating_sub(4) {
            if i % 3 == 0 {
                edge(&mut t, i, i + 4, 0.5);
            }
        }
        for i in 0..n {
            t.push((i, i, 0.75));
        }
        SparseMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn solve_matches_dense_cholesky() {
        for n in [1, 2, 5, 12, 40] {
            let a = meshed_spd(n);
            let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
            let chol = SparseCholesky::factor(sym, &a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 1.0).collect();
            let x = chol.solve(&b).unwrap();
            let dense = Cholesky::factor(&a.to_dense()).unwrap();
            let xd = dense.solve(&b).unwrap();
            assert!(vector::approx_eq(&x, &xd, 1e-9), "n = {n}");
        }
    }

    #[test]
    fn refactor_matches_cold_factorization() {
        let mut a = meshed_spd(25);
        let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
        let mut chol = SparseCholesky::factor(sym.clone(), &a).unwrap();
        // Perturb values only (pattern untouched), refactor, compare with
        // a cold factor of the same data.
        for (k, v) in a.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 0.01 * ((k % 7) as f64);
        }
        chol.refactor(&a).unwrap();
        let cold = SparseCholesky::factor(sym, &a).unwrap();
        let b: Vec<f64> = (0..25).map(|i| i as f64 - 9.0).collect();
        let warm_x = chol.solve(&b).unwrap();
        let cold_x = cold.solve(&b).unwrap();
        // Identical numeric pass → identical bits.
        assert_eq!(warm_x, cold_x);
    }

    #[test]
    fn natural_order_analysis_also_solves() {
        let a = meshed_spd(10);
        let sym = Arc::new(SymbolicCholesky::analyze_with_perm(&a, (0..10).collect()).unwrap());
        let chol = SparseCholesky::factor(sym, &a).unwrap();
        let b = vec![1.0; 10];
        let x = chol.solve(&b).unwrap();
        let xd = Cholesky::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        assert!(vector::approx_eq(&x, &xd, 1e-9));
    }

    #[test]
    fn rcm_reduces_fill_on_an_arrow_matrix() {
        // Hub-and-spoke graph: eliminating the hub first (natural order)
        // fills the factor completely; RCM pushes the hub to the end,
        // keeping L as sparse as A.
        let n = 30;
        let mut t = vec![(0usize, 0usize, n as f64)];
        for i in 1..n {
            t.push((i, i, 2.0));
            t.push((0, i, -1.0));
            t.push((i, 0, -1.0));
        }
        let a = SparseMatrix::from_triplets(n, n, &t).unwrap();
        let natural = SymbolicCholesky::analyze_with_perm(&a, (0..n).collect()).unwrap();
        let rcm = SymbolicCholesky::analyze(&a).unwrap();
        assert_eq!(natural.nnz_l(), n * (n + 1) / 2, "hub-first fills L");
        assert_eq!(rcm.nnz_l(), 2 * n - 1, "hub-last keeps L as sparse as A");
        // Both still solve correctly.
        let chol = SparseCholesky::factor(Arc::new(rcm), &a).unwrap();
        let b = vec![1.0; n];
        let x = chol.solve(&b).unwrap();
        let xd = Cholesky::factor(&a.to_dense()).unwrap().solve(&b).unwrap();
        assert!(vector::approx_eq(&x, &xd, 1e-9));
    }

    #[test]
    fn solve_matrix_is_bit_identical_to_column_solves() {
        let a = meshed_spd(15);
        let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
        let chol = SparseCholesky::factor(sym, &a).unwrap();
        let b = Matrix::from_fn(15, 4, |i, j| ((i * 3 + j) as f64 * 0.31).cos());
        let batched = chol.solve_matrix(&b).unwrap();
        for j in 0..4 {
            let single = chol.solve(&b.col(j)).unwrap();
            for i in 0..15 {
                assert_eq!(batched[(i, j)].to_bits(), single[i].to_bits());
            }
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (1, 1, 1.0), (0, 1, 2.0), (1, 0, 2.0)],
        )
        .unwrap();
        let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
        assert_eq!(
            SparseCholesky::factor(sym, &a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn missing_diagonal_is_not_positive_definite() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
        assert_eq!(
            SparseCholesky::factor(sym, &a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn shape_and_pattern_mismatches_are_rejected() {
        let a = meshed_spd(6);
        let sym = Arc::new(SymbolicCholesky::analyze(&a).unwrap());
        let mut chol = SparseCholesky::factor(sym, &a).unwrap();
        let other = meshed_spd(7);
        assert!(matches!(
            chol.refactor(&other),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        // Same shape and nnz but a different pattern must be rejected
        // too (the scatter plan is positional in the value array).
        let a6 = meshed_spd(6);
        let shifted = {
            let dense = a6.to_dense();
            let mut moved = crate::Matrix::zeros(6, 6);
            // Transpose-and-reflect keeps shape and nnz, moves entries.
            for i in 0..6 {
                for j in 0..6 {
                    moved[(5 - i, 5 - j)] = dense[(i, j)];
                }
            }
            SparseMatrix::from_dense(&moved)
        };
        if shifted.col_ptrs() != a6.col_ptrs() || shifted.row_indices() != a6.row_indices() {
            assert!(matches!(
                chol.refactor(&shifted),
                Err(LinalgError::ShapeMismatch { .. })
            ));
        }
        assert!(chol.solve(&[1.0]).is_err());
        assert!(
            SymbolicCholesky::analyze(&SparseMatrix::from_triplets(2, 3, &[]).unwrap()).is_err()
        );
        assert!(matches!(
            SymbolicCholesky::analyze(&SparseMatrix::from_triplets(0, 0, &[]).unwrap()),
            Err(LinalgError::Empty)
        ));
        assert!(SymbolicCholesky::analyze_with_perm(&a, vec![0, 0, 1, 2, 3, 4]).is_err());
    }
}
