use crate::{LinalgError, Matrix, RANK_TOL};

/// Singular value decomposition `A = U Σ Vᵀ` via the one-sided Jacobi
/// method.
///
/// One-sided Jacobi applies Givens rotations from the right until the
/// columns of the working matrix are mutually orthogonal; the column norms
/// are then the singular values. It is simple, numerically robust and very
/// accurate for small singular values — exactly what the principal-angle
/// computation needs (the cosines of principal angles are singular values
/// of `Q₁ᵀQ₂`, all of them in `[0, 1]`).
///
/// # Example
///
/// ```
/// use gridmtd_linalg::{Matrix, Svd};
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]])?;
/// let svd = Svd::compute(&a)?;
/// assert!((svd.singular_values()[0] - 3.0).abs() < 1e-12);
/// assert!((svd.singular_values()[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: Matrix,
    sigma: Vec<f64>,
    v: Matrix,
}

/// Maximum number of Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 60;

/// Off-diagonal tolerance for declaring two columns orthogonal.
const ORTHO_TOL: f64 = 1e-14;

impl Svd {
    /// Computes the thin SVD of an `m × n` matrix with `m ≥ n`.
    ///
    /// For wide matrices compute the SVD of the transpose and swap `U`/`V`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] for an empty matrix.
    /// * [`LinalgError::ShapeMismatch`] if `m < n`.
    /// * [`LinalgError::NonConvergence`] if Jacobi sweeps fail to converge
    ///   (not observed in practice for the sizes used here).
    pub fn compute(a: &Matrix) -> Result<Svd, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "svd (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        // Work on columns of U (initialized to A); V accumulates rotations.
        let mut u = a.clone();
        let mut v = Matrix::identity(n);
        let scale = a.max_abs();
        if scale == 0.0 {
            // Zero matrix: U = first n columns of identity, sigma = 0.
            let mut u0 = Matrix::zeros(m, n);
            for j in 0..n {
                u0[(j, j)] = 1.0;
            }
            return Ok(Svd {
                u: u0,
                sigma: vec![0.0; n],
                v,
            });
        }

        let mut converged = false;
        let mut sweeps = 0;
        while !converged && sweeps < MAX_SWEEPS {
            converged = true;
            sweeps += 1;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Compute the 2x2 Gram block of columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        app += up * up;
                        aqq += uq * uq;
                        apq += up * uq;
                    }
                    if apq.abs() <= ORTHO_TOL * (app * aqq).sqrt().max(f64::MIN_POSITIVE) {
                        continue;
                    }
                    converged = false;
                    // Jacobi rotation that annihilates the off-diagonal.
                    let zeta = (aqq - app) / (2.0 * apq);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        u[(i, p)] = c * up - s * uq;
                        u[(i, q)] = s * up + c * uq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
        }
        if !converged {
            return Err(LinalgError::NonConvergence {
                op: "jacobi_svd",
                iterations: sweeps,
            });
        }

        // Column norms are the singular values; normalize U's columns.
        let mut order: Vec<usize> = (0..n).collect();
        let mut sigma = vec![0.0; n];
        for j in 0..n {
            let mut norm_sq = 0.0;
            for i in 0..m {
                norm_sq += u[(i, j)] * u[(i, j)];
            }
            sigma[j] = norm_sq.sqrt();
        }
        order.sort_by(|&a, &b| sigma[b].partial_cmp(&sigma[a]).expect("NaN singular value"));

        let mut u_sorted = Matrix::zeros(m, n);
        let mut v_sorted = Matrix::zeros(n, n);
        let mut sigma_sorted = vec![0.0; n];
        for (dst, &src) in order.iter().enumerate() {
            sigma_sorted[dst] = sigma[src];
            if sigma[src] > 0.0 {
                for i in 0..m {
                    u_sorted[(i, dst)] = u[(i, src)] / sigma[src];
                }
            } else {
                // Zero singular value: leave a zero column (caller should
                // not rely on U columns past the rank).
                u_sorted[(src.min(m - 1), dst)] = 0.0;
            }
            for i in 0..n {
                v_sorted[(i, dst)] = v[(i, src)];
            }
        }
        Ok(Svd {
            u: u_sorted,
            sigma: sigma_sorted,
            v: v_sorted,
        })
    }

    /// Left singular vectors (thin, `m × n`). Columns past the numerical
    /// rank are zero.
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Singular values in non-increasing order.
    pub fn singular_values(&self) -> &[f64] {
        &self.sigma
    }

    /// Right singular vectors (`n × n`).
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Numerical rank: number of singular values above
    /// [`RANK_TOL`]` * σ_max`.
    pub fn rank(&self) -> usize {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.sigma.iter().filter(|&&s| s > RANK_TOL * smax).count()
    }

    /// Spectral (2-) norm, `σ_max`.
    pub fn norm2(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }

    /// 2-norm condition number `σ_max / σ_min`; `f64::INFINITY` when rank
    /// deficient.
    pub fn condition_number(&self) -> f64 {
        let smax = self.sigma.first().copied().unwrap_or(0.0);
        let smin = self.sigma.last().copied().unwrap_or(0.0);
        if smin == 0.0 {
            f64::INFINITY
        } else {
            smax / smin
        }
    }
}

/// Numerical rank of an arbitrary (tall or wide) matrix via SVD.
///
/// # Errors
///
/// See [`Svd::compute`].
pub fn rank(a: &Matrix) -> Result<usize, LinalgError> {
    let tall = if a.rows() >= a.cols() {
        a.clone()
    } else {
        a.transpose()
    };
    Ok(Svd::compute(&tall)?.rank())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_rows(&[&[0.0, 5.0], &[1.0, 0.0], &[0.0, 0.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.singular_values()[0] - 5.0).abs() < 1e-12);
        assert!((svd.singular_values()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_u_sigma_vt() {
        let a = Matrix::from_rows(&[
            &[2.0, 1.0, 0.0],
            &[-1.0, 3.0, 1.0],
            &[0.5, 0.0, 2.0],
            &[1.0, 1.0, 1.0],
        ])
        .unwrap();
        let svd = Svd::compute(&a).unwrap();
        let us = Matrix::from_fn(4, 3, |i, j| svd.u()[(i, j)] * svd.singular_values()[j]);
        let back = us.matmul(&svd.v().transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn u_and_v_are_orthonormal() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        let utu = svd.u().transpose().matmul(svd.u()).unwrap();
        assert!(utu.approx_eq(&Matrix::identity(2), 1e-10));
        let vtv = svd.v().transpose().matmul(svd.v()).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn singular_values_are_sorted_descending() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let svd = Svd::compute(&a).unwrap();
        let s = svd.singular_values();
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rank_of_rank_deficient_matrix() {
        // Column 2 = 2 * column 0.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[2.0, 1.0, 4.0],
            &[3.0, -1.0, 6.0],
            &[0.0, 1.0, 0.0],
        ])
        .unwrap();
        assert_eq!(Svd::compute(&a).unwrap().rank(), 2);
    }

    #[test]
    fn rank_of_wide_matrix_via_helper() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]]).unwrap();
        assert_eq!(rank(&a).unwrap(), 1);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let a = Matrix::zeros(3, 2);
        let svd = Svd::compute(&a).unwrap();
        assert_eq!(svd.rank(), 0);
        assert_eq!(svd.singular_values(), &[0.0, 0.0]);
    }

    #[test]
    fn spectral_norm_and_condition_number() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]).unwrap();
        let svd = Svd::compute(&a).unwrap();
        assert!((svd.norm2() - 3.0).abs() < 1e-12);
        assert!((svd.condition_number() - 3.0).abs() < 1e-12);
        let singular = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(
            Svd::compute(&singular).unwrap().condition_number(),
            f64::INFINITY
        );
    }

    #[test]
    fn wide_matrix_is_rejected_by_compute() {
        assert!(Svd::compute(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram() {
        // For A with known Gram spectrum: A = [[2,0],[0,0],[0,3]] has
        // AᵀA = diag(4, 9) so singular values are 3, 2.
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 0.0], &[0.0, 3.0]]).unwrap();
        let s = Svd::compute(&a).unwrap();
        assert!((s.singular_values()[0] - 3.0).abs() < 1e-12);
        assert!((s.singular_values()[1] - 2.0).abs() < 1e-12);
    }
}
