use crate::{LinalgError, Matrix};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// The weighted-least-squares state estimator solves the normal equations
/// `(HᵀWH) θ̂ = HᵀWz`; the Gram matrix `HᵀWH` is SPD for a full-column-rank
/// `H`, making Cholesky the natural (and fastest) solver.
///
/// # Example
///
/// ```
/// use gridmtd_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (upper triangle is garbage and never read).
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (the Gram matrices built in this workspace
    /// are symmetric by construction).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is not
    ///   strictly positive (relative to the matrix scale).
    pub fn factor(a: &Matrix) -> Result<Cholesky, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let scale = a.max_abs().max(1.0);
        let tol = 1e-13 * scale;
        let mut l = a.clone();
        for j in 0..n {
            let mut d = l[(j, j)];
            for k in 0..j {
                let ljk = l[(j, k)];
                d -= ljk * ljk;
            }
            if d <= tol {
                return Err(LinalgError::NotPositiveDefinite);
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut v = l[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Lower-triangular factor `L` (upper triangle zeroed).
    pub fn l(&self) -> Matrix {
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| if j <= i { self.l[(i, j)] } else { 0.0 })
    }

    /// Solves `A x = b` via forward/backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x = b.to_vec();
        // L y = b
        for i in 0..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.l[(i, j)] * xj;
            }
            x[i] = acc / self.l[(i, i)];
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.l[(j, i)] * xj;
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let c = Cholesky::factor(&a).unwrap();
        let l = c.l();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_agrees_with_lu() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x_chol = Cholesky::factor(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!(vector::approx_eq(&x_chol, &x_lu, 1e-10));
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn semidefinite_matrix_is_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn non_square_is_rejected() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        assert!(a
            .matmul(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let c = Cholesky::factor(&Matrix::identity(3)).unwrap();
        assert!(c.solve(&[1.0]).is_err());
    }
}
