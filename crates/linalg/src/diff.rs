//! Differentiable subspace-angle machinery for gradient-based MTD
//! selection.
//!
//! The selection objective constrains the *largest* principal angle γ
//! between the pre-perturbation measurement space `span(Q₁)` and a
//! candidate space `span(H)`. The SVD route in [`crate::subspace`] gives
//! the angle but no derivative; this module instead works with
//! `s = sin²γ`, which is a generalized Rayleigh quotient and therefore
//! analytically differentiable in the entries of `H`.
//!
//! With `T = Q₁ᵀH`, `A = TᵀT` and `B = HᵀH`, the squared cosines of the
//! principal angles are the eigenvalues of the pencil `A c = λ B c`, so
//! `s = sin²γ` is the **largest** eigenvalue of
//!
//! ```text
//! (B − A) c = s B c,      B − A = ((I − P₁)H)ᵀ((I − P₁)H) ⪰ 0
//! ```
//!
//! solved here by a dense symmetric eigensolve: with the Cholesky factor
//! `B = LLᵀ`, the pencil is congruent to the PSD matrix
//! `M = L⁻¹(B − A)L⁻ᵀ`, whose leading eigenpair comes from the
//! tridiagonalize-then-QL solver ([`crate::SymmetricEigen`]) and maps
//! back through `c = L⁻ᵀw`. Fully
//! deterministic — no iteration start or sweep budget — and immune to
//! the failure mode of a power iteration on this pencil: structured
//! start vectors can sit almost entirely inside a small-`s` eigenspace
//! (e.g. the uniform coefficient vector, for which `Hc` has support only
//! on slack-adjacent rows), where a residual test happily accepts a
//! non-dominant eigenpair. Differentiating the Rayleigh quotient at the
//! eigenvector `c` gives, for any direction `∂H` (write `d = ∂H·c`,
//! `v = Hc`, `u = P₁Hc`):
//!
//! ```text
//! ∂s = 2 · ((1 − s)·v − u) · d / (cᵀBc)
//! ```
//!
//! which is O(nnz(∂H)) per direction once the state is assembled — the
//! measurement-matrix stamps of one branch have ≤ 8 nonzeros, so a full
//! γ-gradient over all D-FACTS branches costs a handful of flops per
//! branch on top of one eigensolve.

use crate::eigen::SymmetricEigen;
use crate::subspace::OrthonormalBasis;
use crate::{vector, Cholesky, LinalgError, Matrix};

/// Converged differentiable state of `sin²γ` between a cached basis and
/// the column space of a perturbed matrix `H`.
///
/// Built by [`sin_sq_largest_angle`]; [`SinSqState::gradient_entry`]
/// then maps any sparse direction `∂H` to the directional derivative of
/// `sin²γ`.
#[derive(Debug, Clone)]
pub struct SinSqState {
    /// `sin²γ`, clamped to `[0, 1]`.
    value: f64,
    /// Generalized eigenvector `c` of `(B − A) c = s B c` (unit 2-norm).
    coeffs: Vec<f64>,
    /// Row sensitivities `w = (1 − s)·Hc − P₁Hc`.
    weights: Vec<f64>,
    /// Normalization `cᵀ B c` (guarded away from zero).
    denom: f64,
}

impl SinSqState {
    /// `sin²γ` of the largest principal angle.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The largest principal angle γ itself (radians, `[0, π/2]`).
    pub fn angle(&self) -> f64 {
        self.value.sqrt().clamp(0.0, 1.0).asin()
    }

    /// Directional derivative `∂ sin²γ` for a sparse matrix direction
    /// `∂H` given as `(row, col, value)` triplets (rows in measurement
    /// space, cols in the reduced state space of `H`).
    ///
    /// Out-of-range triplets are ignored rather than panicking: callers
    /// assemble stamps against the same `H` they passed to
    /// [`sin_sq_largest_angle`], and a mismatched stamp contributes a
    /// meaningless but finite term either way.
    pub fn gradient_entry(&self, dh_triplets: &[(usize, usize, f64)]) -> f64 {
        let mut acc = 0.0;
        for &(row, col, val) in dh_triplets {
            if row < self.weights.len() && col < self.coeffs.len() {
                acc += val * self.coeffs[col] * self.weights[row];
            }
        }
        2.0 * acc / self.denom
    }
}

/// Solves the lower-triangular system `L X = rhs` column by column
/// (plain forward substitution; `L` comes from a Cholesky factor, so its
/// diagonal is strictly positive).
fn forward_solve_matrix(l: &Matrix, rhs: &Matrix) -> Matrix {
    let n = l.rows();
    let cols = rhs.cols();
    let mut x = rhs.clone();
    for j in 0..cols {
        for i in 0..n {
            let mut acc = x[(i, j)];
            for p in 0..i {
                acc -= l[(i, p)] * x[(p, j)];
            }
            x[(i, j)] = acc / l[(i, i)];
        }
    }
    x
}

/// Solves the upper-triangular system `Lᵀ x = rhs` (back substitution
/// against the transpose of the Cholesky factor).
fn backward_solve_transposed(l: &Matrix, rhs: &[f64]) -> Vec<f64> {
    let n = l.rows();
    let mut x = rhs.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        for p in (i + 1)..n {
            acc -= l[(p, i)] * x[p];
        }
        x[i] = acc / l[(i, i)];
    }
    x
}

/// Computes the differentiable `sin²γ` state between `q1` (orthonormal
/// basis of the reference space) and the column space of `h`.
///
/// Deterministic: one Cholesky factorization, one dense SVD, serial
/// arithmetic — repeated calls on identical inputs are bit-identical.
///
/// # Errors
///
/// [`LinalgError`] if the shapes are incompatible or `HᵀH` is not
/// positive definite (rank-deficient `h`).
pub fn sin_sq_largest_angle(q1: &OrthonormalBasis, h: &Matrix) -> Result<SinSqState, LinalgError> {
    let q = q1.q();
    if q.rows() != h.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "sin_sq_largest_angle",
            lhs: q.shape(),
            rhs: h.shape(),
        });
    }
    // T = Q₁ᵀH, computed as (HᵀQ₁)ᵀ so the zero-skipping matmul streams
    // over H's sparse rows (a measurement matrix has a handful of
    // nonzeros per row) instead of Q₁'s dense ones — same products in
    // the same summation order, so the result is unchanged.
    let t = h.transpose().matmul(q)?.transpose(); // k₁×k₂
    let b = h.gram(); // HᵀH
    let a = t.gram(); // HᵀP₁H
    let c_mat = b.try_sub(&a)?; // ((I−P₁)H)ᵀ((I−P₁)H)
    let chol = Cholesky::factor(&b)?;

    // Congruence to an ordinary symmetric PSD eigenproblem: with
    // B = LLᵀ, the pencil (B−A)c = sBc becomes M w = s w for
    // M = L⁻¹(B−A)L⁻ᵀ and w = Lᵀc. The symmetric eigensolver reads only
    // the lower triangle, absorbing the roundoff asymmetry the two
    // triangular solves introduce; its leading eigenpair is the largest
    // principal-angle pair.
    let l = chol.l();
    let w_half = forward_solve_matrix(&l, &c_mat); // L⁻¹(B−A)
    let m = forward_solve_matrix(&l, &w_half.transpose()); // L⁻¹(B−A)ᵀL⁻ᵀ = M
    let eig = SymmetricEigen::compute(&m)?;
    let s = eig.values().first().copied().unwrap_or(0.0);
    let s = s.clamp(0.0, 1.0);
    let w = eig.vector(0);
    let mut z = backward_solve_transposed(&l, &w); // c = L⁻ᵀw
    let z_norm = vector::norm2(&z).max(1e-300);
    for v in &mut z {
        *v /= z_norm;
    }

    let v = h.matvec(&z)?; // Hc
    let tc = t.matvec(&z)?;
    let u = q.matvec(&tc)?; // P₁Hc = Q₁(Q₁ᵀH)c
    let bz = b.matvec(&z)?;
    let denom = vector::dot(&z, &bz).max(1e-300);
    let weights: Vec<f64> = v
        .iter()
        .zip(u.iter())
        .map(|(&vi, &ui)| (1.0 - s) * vi - ui)
        .collect();
    Ok(SinSqState {
        value: s,
        coeffs: z,
        weights,
        denom,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subspace;

    /// Deterministic pseudo-random matrix from a linear congruential
    /// stream — test-only, keeps the crate free of RNG dependencies.
    fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / f64::from(1u32 << 31) - 1.0
        })
    }

    #[test]
    fn value_matches_svd_largest_angle() {
        for seed in [3u64, 17, 91] {
            let h1 = lcg_matrix(12, 4, seed);
            let h2 = lcg_matrix(12, 4, seed ^ 0xabcd);
            let q1 = OrthonormalBasis::new(&h1).unwrap();
            let state = sin_sq_largest_angle(&q1, &h2).unwrap();
            let gamma = subspace::largest_principal_angle(&h1, &h2).unwrap();
            assert!(
                (state.angle() - gamma).abs() < 1e-9,
                "seed {seed}: power-iteration angle {} vs SVD angle {gamma}",
                state.angle()
            );
        }
    }

    #[test]
    fn zero_when_spaces_coincide() {
        let h = lcg_matrix(10, 3, 7);
        let q1 = OrthonormalBasis::new(&h).unwrap();
        let state = sin_sq_largest_angle(&q1, &h).unwrap();
        assert!(state.value() < 1e-12, "sin²γ = {}", state.value());
        assert!(state.gradient_entry(&[(0, 0, 1.0)]).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_central_differences() {
        let h1 = lcg_matrix(14, 5, 11);
        let q1 = OrthonormalBasis::new(&h1).unwrap();
        let h2 = lcg_matrix(14, 5, 23);
        let state = sin_sq_largest_angle(&q1, &h2).unwrap();
        let eps = 1e-6;
        for &(row, col) in &[(0usize, 0usize), (3, 2), (13, 4), (7, 1)] {
            let analytic = state.gradient_entry(&[(row, col, 1.0)]);
            let mut hp = h2.clone();
            hp[(row, col)] += eps;
            let mut hm = h2.clone();
            hm[(row, col)] -= eps;
            let sp = sin_sq_largest_angle(&q1, &hp).unwrap().value();
            let sm = sin_sq_largest_angle(&q1, &hm).unwrap().value();
            let fd = (sp - sm) / (2.0 * eps);
            assert!(
                (analytic - fd).abs() <= 1e-6 * fd.abs().max(1e-3),
                "entry ({row},{col}): analytic {analytic} vs fd {fd}"
            );
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let h1 = lcg_matrix(10, 3, 1);
        let q1 = OrthonormalBasis::new(&h1).unwrap();
        let h2 = lcg_matrix(9, 3, 2);
        assert!(sin_sq_largest_angle(&q1, &h2).is_err());
    }
}
