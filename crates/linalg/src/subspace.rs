//! Column-space geometry: orthonormal bases, projectors and principal
//! angles between subspaces.
//!
//! The MTD design criterion of the paper (Section V-C) is the **smallest
//! principal angle** `γ(H, H')` between the column spaces of the
//! pre-perturbation and post-perturbation measurement matrices. Angles are
//! computed with the Björck–Golub method: if `Q₁`, `Q₂` are orthonormal
//! bases of the two subspaces, the cosines of the principal angles are the
//! singular values of `Q₁ᵀQ₂`.
//!
//! Definition V.1 of the paper defines the *smallest* principal angle as
//! the one maximizing `|uᵀv|`, i.e. `cos γ = σ_max(Q₁ᵀQ₂)`, so
//! `γ ∈ [0, π/2]` with `γ = 0` for intersecting subspaces and `γ = π/2`
//! for orthogonal ones.

use crate::{qr, LinalgError, Matrix, Svd};

/// All principal angles (radians, non-decreasing) between `Col(a)` and
/// `Col(b)`.
///
/// Both inputs must be tall full-column-rank matrices with the same number
/// of rows; the number of angles returned is `min(a.cols(), b.cols())`.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if the row counts differ.
/// * Propagates QR/SVD failures for degenerate inputs.
pub fn principal_angles(a: &Matrix, b: &Matrix) -> Result<Vec<f64>, LinalgError> {
    OrthonormalBasis::new(a)?.angles_to(b)
}

/// A precomputed orthonormal basis of one column space, for computing
/// principal angles against many other subspaces.
///
/// The Björck–Golub method orthonormalizes *both* matrices per angle
/// query; when one side is fixed (the pre-perturbation measurement
/// matrix inside a selection sweep, compared against hundreds of
/// candidates), caching its `Q` halves the per-query QR work.
#[derive(Debug, Clone)]
pub struct OrthonormalBasis {
    q: Matrix,
}

impl OrthonormalBasis {
    /// Orthonormalizes `Col(a)` once.
    ///
    /// # Errors
    ///
    /// Propagates QR failures for degenerate inputs.
    pub fn new(a: &Matrix) -> Result<OrthonormalBasis, LinalgError> {
        Ok(OrthonormalBasis {
            q: qr::orthonormal_basis(a)?,
        })
    }

    /// The cached orthonormal basis `Q`.
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// All principal angles (radians, non-decreasing) between the cached
    /// subspace and `Col(b)`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if the row counts differ.
    /// * Propagates QR/SVD failures for degenerate inputs.
    pub fn angles_to(&self, b: &Matrix) -> Result<Vec<f64>, LinalgError> {
        if self.q.rows() != b.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "principal_angles",
                lhs: self.q.shape(),
                rhs: b.shape(),
            });
        }
        let q2 = qr::orthonormal_basis(b)?;
        let m = self.q.transpose().matmul(&q2)?;
        // SVD needs rows >= cols.
        let tall = if m.rows() >= m.cols() {
            m
        } else {
            m.transpose()
        };
        let svd = Svd::compute(&tall)?;
        // Clamp to [0, 1]: roundoff can push cosines slightly above 1.
        let mut angles: Vec<f64> = svd
            .singular_values()
            .iter()
            .map(|&c| c.clamp(0.0, 1.0).acos())
            .collect();
        // Singular values are sorted descending => angles ascending
        // already, but make the contract explicit.
        angles.sort_by(|x, y| x.partial_cmp(y).expect("NaN angle"));
        Ok(angles)
    }

    /// The largest principal angle between the cached subspace and
    /// `Col(b)`.
    ///
    /// # Errors
    ///
    /// See [`OrthonormalBasis::angles_to`].
    pub fn largest_angle_to(&self, b: &Matrix) -> Result<f64, LinalgError> {
        Ok(*self
            .angles_to(b)?
            .last()
            .expect("at least one angle for non-empty inputs"))
    }

    /// Fast deterministic estimate of the largest principal angle,
    /// for penalty/objective evaluation in optimization inner loops.
    ///
    /// Uses the sine characterization: the singular values of
    /// `(I − Q₁Q₁ᵀ)Q₂` are the sines of the principal angles, and the
    /// largest one is extracted by power iteration on the small Gram
    /// matrix — avoiding the full SVD entirely. The Rayleigh-quotient
    /// estimate converges from below, so the returned angle **never
    /// exceeds** the exact [`OrthonormalBasis::largest_angle_to`]; after
    /// convergence (relative change `< 1e-13`, at most 200 sweeps) the
    /// gap is far below any tolerance used by the optimizers. The
    /// iteration count is value-driven but deterministic: identical
    /// inputs give identical bits.
    ///
    /// # Errors
    ///
    /// See [`OrthonormalBasis::angles_to`].
    pub fn largest_angle_to_approx(&self, b: &Matrix) -> Result<f64, LinalgError> {
        if self.q.rows() != b.rows() {
            return Err(LinalgError::ShapeMismatch {
                op: "principal_angles",
                lhs: self.q.shape(),
                rhs: b.shape(),
            });
        }
        let q2 = qr::orthonormal_basis(b)?;
        // M = Q₂ − Q₁(Q₁ᵀQ₂): columns of Q₂ minus their projection.
        let proj = self.q.matmul(&self.q.transpose().matmul(&q2)?)?;
        let m = &q2 - &proj;
        // G = MᵀM is k×k symmetric PSD; its largest eigenvalue is
        // sin²(γ_max).
        let g = m.gram();
        let k = g.rows();
        // Deterministic start vector: uniform direction (never exactly
        // orthogonal to the dominant eigenvector in float arithmetic for
        // the matrices seen here; a zero G short-circuits to γ = 0).
        let mut v = vec![1.0 / (k as f64).sqrt(); k];
        let mut lambda = 0.0_f64;
        for _ in 0..200 {
            let w = g.matvec(&v)?;
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm <= 1e-300 {
                return Ok(0.0); // G ≈ 0: subspaces coincide
            }
            let next: f64 = v.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
            for (vi, wi) in v.iter_mut().zip(w.iter()) {
                *vi = wi / norm;
            }
            if (next - lambda).abs() <= 1e-13 * next.abs() {
                lambda = next;
                break;
            }
            lambda = next;
        }
        Ok(lambda.max(0.0).sqrt().clamp(0.0, 1.0).asin())
    }
}

/// The smallest principal angle `γ(a, b) ∈ [0, π/2]` (Definition V.1).
///
/// `γ = 0` when the subspaces intersect nontrivially; `γ = π/2` when they
/// are mutually orthogonal.
///
/// # Errors
///
/// See [`principal_angles`].
pub fn smallest_principal_angle(a: &Matrix, b: &Matrix) -> Result<f64, LinalgError> {
    Ok(principal_angles(a, b)?[0])
}

/// The largest principal angle between the two column spaces.
///
/// # Errors
///
/// See [`principal_angles`].
pub fn largest_principal_angle(a: &Matrix, b: &Matrix) -> Result<f64, LinalgError> {
    Ok(*principal_angles(a, b)?
        .last()
        .expect("at least one angle for non-empty inputs"))
}

/// Orthogonal projector `P = Q Qᵀ` onto `Col(a)`.
///
/// # Errors
///
/// See [`qr::orthonormal_basis`].
pub fn projector(a: &Matrix) -> Result<Matrix, LinalgError> {
    let q = qr::orthonormal_basis(a)?;
    q.matmul(&q.transpose())
}

/// Orthogonal projector `I − Q Qᵀ` onto the orthogonal complement of
/// `Col(a)`.
///
/// This is the residual operator of an (unweighted) least-squares fit: the
/// BDD residual under measurement matrix `H` is `‖(I − P_H) z‖`.
///
/// # Errors
///
/// See [`projector`].
pub fn complement_projector(a: &Matrix) -> Result<Matrix, LinalgError> {
    let p = projector(a)?;
    Ok(&Matrix::identity(p.rows()) - &p)
}

/// Weighted oblique residual projector `S = I − H (HᵀWH)⁻¹ HᵀW` for a
/// diagonal weight vector `w` (entries of `W`).
///
/// This is exactly the operator of Appendix A of the paper: the BDD
/// residual under attack is `r' = S(n + a)`. `S` is idempotent
/// (`S² = S`) and annihilates `Col(H)`.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] if `w.len() != h.rows()`.
/// * [`LinalgError::NotPositiveDefinite`] if `H` is column-rank deficient.
pub fn weighted_residual_projector(h: &Matrix, w: &[f64]) -> Result<Matrix, LinalgError> {
    let (m, _n) = h.shape();
    if w.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op: "weighted_residual_projector",
            lhs: h.shape(),
            rhs: (w.len(), 1),
        });
    }
    // WH: scale rows of H by w.
    let mut wh = h.clone();
    for (i, &wi) in w.iter().enumerate().take(m) {
        for v in wh.row_mut(i) {
            *v *= wi;
        }
    }
    // G = HᵀWH (SPD for full-column-rank H).
    let g = h.transpose().matmul(&wh)?;
    let ginv = crate::Cholesky::factor(&g)?.inverse()?;
    // K = H G⁻¹ HᵀW  (the hat matrix).
    let hginv = h.matmul(&ginv)?;
    let hat = hginv.matmul(&wh.transpose())?;
    Ok(&Matrix::identity(m) - &hat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn identical_subspaces_have_zero_angle() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let gamma = smallest_principal_angle(&a, &a.scale(2.5)).unwrap();
        assert!(gamma.abs() < 1e-7, "gamma = {gamma}");
    }

    #[test]
    fn orthogonal_subspaces_have_right_angle() {
        let a = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0], &[0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let gamma = smallest_principal_angle(&a, &b).unwrap();
        assert!((gamma - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn known_angle_between_planes() {
        // Col(a) = span{e1}; Col(b) = span{cos t e1 + sin t e2}.
        let t = 0.3_f64;
        let a = Matrix::from_rows(&[&[1.0], &[0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[t.cos()], &[t.sin()]]).unwrap();
        let gamma = smallest_principal_angle(&a, &b).unwrap();
        assert!((gamma - t).abs() < 1e-12);
    }

    #[test]
    fn shared_direction_gives_zero_smallest_angle() {
        // Both subspaces contain e1, so the smallest angle is 0 even though
        // the other directions differ.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0], &[0.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let angles = principal_angles(&a, &b).unwrap();
        assert!(angles[0].abs() < 1e-7);
        assert!((angles[1] - FRAC_PI_2).abs() < 1e-7);
    }

    #[test]
    fn angles_are_symmetric_in_arguments() {
        let a = Matrix::from_rows(&[&[1.0, 0.3], &[0.2, 1.0], &[0.5, -0.4], &[0.0, 0.8]]).unwrap();
        let b = Matrix::from_rows(&[&[0.9, -0.1], &[0.1, 0.7], &[0.3, 0.3], &[-0.2, 0.5]]).unwrap();
        let g_ab = smallest_principal_angle(&a, &b).unwrap();
        let g_ba = smallest_principal_angle(&b, &a).unwrap();
        assert!((g_ab - g_ba).abs() < 1e-10);
    }

    #[test]
    fn mismatched_rows_is_error() {
        let a = Matrix::zeros(3, 1);
        let b = Matrix::zeros(4, 1);
        assert!(principal_angles(&a, &b).is_err());
        let basis = OrthonormalBasis::new(&Matrix::identity(3)).unwrap();
        assert!(basis.angles_to(&b).is_err());
    }

    #[test]
    fn approx_largest_angle_tracks_exact_from_below() {
        let a = Matrix::from_rows(&[&[1.0, 0.3], &[0.2, 1.0], &[0.5, -0.4], &[0.0, 0.8]]).unwrap();
        let basis = OrthonormalBasis::new(&a).unwrap();
        for t in [0.0_f64, 0.05, 0.4, 1.1, 1.5] {
            let b = Matrix::from_rows(&[
                &[t.cos(), 0.3],
                &[0.2, 1.0],
                &[0.5 + t.sin(), -0.4],
                &[t.sin(), 0.8],
            ])
            .unwrap();
            let exact = basis.largest_angle_to(&b).unwrap();
            let approx = basis.largest_angle_to_approx(&b).unwrap();
            assert!(
                approx <= exact + 1e-10,
                "estimate must not exceed exact: {approx} vs {exact}"
            );
            assert!(
                (exact - approx).abs() < 1e-7,
                "estimate should be tight: {approx} vs {exact}"
            );
        }
        // Identical subspaces short-circuit to zero.
        assert!(basis.largest_angle_to_approx(&a.scale(3.0)).unwrap() < 1e-7);
    }

    #[test]
    fn cached_basis_matches_direct_computation() {
        let a = Matrix::from_rows(&[&[1.0, 0.3], &[0.2, 1.0], &[0.5, -0.4], &[0.0, 0.8]]).unwrap();
        let b = Matrix::from_rows(&[&[0.9, -0.1], &[0.1, 0.7], &[0.3, 0.3], &[-0.2, 0.5]]).unwrap();
        let basis = OrthonormalBasis::new(&a).unwrap();
        let direct = principal_angles(&a, &b).unwrap();
        let cached = basis.angles_to(&b).unwrap();
        assert_eq!(direct, cached, "same algorithm, same bits");
        assert_eq!(
            basis.largest_angle_to(&b).unwrap(),
            largest_principal_angle(&a, &b).unwrap()
        );
    }

    #[test]
    fn projector_is_idempotent_and_fixes_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 0.0], &[2.0, 1.0]]).unwrap();
        let p = projector(&a).unwrap();
        assert!(p.matmul(&p).unwrap().approx_eq(&p, 1e-10));
        for j in 0..a.cols() {
            let col = a.col(j);
            let proj = p.matvec(&col).unwrap();
            assert!(vector::approx_eq(&proj, &col, 1e-10));
        }
    }

    #[test]
    fn complement_projector_annihilates_columns() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]).unwrap();
        let pc = complement_projector(&a).unwrap();
        for j in 0..a.cols() {
            let r = pc.matvec(&a.col(j)).unwrap();
            assert!(vector::norm2(&r) < 1e-10);
        }
    }

    #[test]
    fn weighted_projector_idempotent_and_annihilates_col_h() {
        let h = Matrix::from_rows(&[&[1.0, 0.0], &[0.5, 1.0], &[-1.0, 2.0], &[0.0, 1.0]]).unwrap();
        let w = [1.0, 4.0, 0.25, 2.0];
        let s = weighted_residual_projector(&h, &w).unwrap();
        assert!(s.matmul(&s).unwrap().approx_eq(&s, 1e-10));
        for j in 0..h.cols() {
            let r = s.matvec(&h.col(j)).unwrap();
            assert!(vector::norm2(&r) < 1e-10, "S should annihilate Col(H)");
        }
    }

    #[test]
    fn weighted_projector_with_unit_weights_is_orthogonal_projector() {
        let h = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let s = weighted_residual_projector(&h, &[1.0, 1.0, 1.0]).unwrap();
        let pc = complement_projector(&h).unwrap();
        assert!(s.approx_eq(&pc, 1e-10));
    }

    #[test]
    fn weighted_projector_rejects_bad_weight_length() {
        let h = Matrix::zeros(3, 1);
        assert!(weighted_residual_projector(&h, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn rank_deficient_h_is_reported() {
        let h = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert!(matches!(
            weighted_residual_projector(&h, &[1.0, 1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }
}
