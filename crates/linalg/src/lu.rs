use crate::{LinalgError, Matrix};

/// LU factorization with partial (row) pivoting: `P A = L U`.
///
/// Used for solving the DC power-flow equations `B̃ θ = p̃` and for general
/// square solves. The factorization is computed once and can then solve any
/// number of right-hand sides.
///
/// # Example
///
/// ```
/// use gridmtd_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of A.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    perm_sign: f64,
}

/// Pivot tolerance: a pivot with absolute value below this is treated as
/// zero, i.e. the matrix is reported singular.
const PIVOT_TOL: f64 = 1e-13;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot underflows the tolerance
    ///   (relative to the largest entry of `a`).
    pub fn factor(a: &Matrix) -> Result<Lu, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_factor",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let scale = a.max_abs().max(1.0);
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // find pivot row
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= PIVOT_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if p != k {
                perm.swap(p, k);
                perm_sign = -perm_sign;
                // swap rows p and k in-place
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m != 0.0 {
                    for j in (k + 1)..n {
                        let u = lu[(k, j)];
                        lu[(i, j)] -= m * u;
                    }
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // apply permutation
        let mut x: Vec<f64> = self.perm.iter().map(|&pi| b[pi]).collect();
        // forward substitution (unit lower triangular)
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // back substitution
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `Aᵀ x = b` using the same factorization (`PA = LU` gives
    /// `Aᵀ = UᵀLᵀP`), so one factorization serves both the primal solve
    /// and the dual (transposed) solve — the simplex warm-start computes
    /// basic values and dual multipliers from a single LU.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_transposed",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Uᵀ w = b: forward substitution (Uᵀ lower triangular).
        let mut w = b.to_vec();
        for i in 0..n {
            let mut acc = w[i];
            for (j, &wj) in w.iter().enumerate().take(i) {
                acc -= self.lu[(j, i)] * wj;
            }
            w[i] = acc / self.lu[(i, i)];
        }
        // Lᵀ z = w: back substitution (Lᵀ unit upper triangular).
        for i in (0..n).rev() {
            let mut acc = w[i];
            for (j, &wj) in w.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(j, i)] * wj;
            }
            w[i] = acc;
        }
        // Undo the row permutation: x[perm[i]] = z[i].
        let mut x = vec![0.0; n];
        for (i, &pi) in self.perm.iter().enumerate() {
            x[pi] = w[i];
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix of matching dimension).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Convenience wrapper: factors `a` and solves `a x = b` in one call.
///
/// # Errors
///
/// See [`Lu::factor`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn solves_known_system() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let b = [5.0, -2.0, 9.0];
        let x = solve(&a, &b).unwrap();
        let back = a.matvec(&x).unwrap();
        assert!(vector::approx_eq(&back, &b, 1e-10));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(vector::approx_eq(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(Lu::factor(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn determinant_of_triangular_matrix() {
        let a = Matrix::from_rows(&[&[2.0, 5.0], &[0.0, 3.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_tracks_permutation_sign() {
        // swap of identity rows has determinant -1
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 6.0], &[2.0, 4.0]]).unwrap();
        let x = Lu::factor(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(x.approx_eq(
            &Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let b = [5.0, -2.0, 9.0];
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve_transposed(&b).unwrap();
        let direct = solve(&a.transpose(), &b).unwrap();
        assert!(vector::approx_eq(&x, &direct, 1e-10));
        let back = a.transpose().matvec(&x).unwrap();
        assert!(vector::approx_eq(&back, &b, 1e-10));
        assert!(lu.solve_transposed(&[1.0]).is_err());
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
