//! Free functions on `&[f64]` vectors.
//!
//! Power-system state, measurement and attack vectors are plain `Vec<f64>`
//! throughout the workspace; this module provides the handful of BLAS-1
//! style kernels they need.

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (ℓ₂) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// ℓ₁ norm (sum of absolute values).
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// ℓ∞ norm (largest absolute value).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Weighted squared norm `Σ wᵢ aᵢ²`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn weighted_norm_sq(a: &[f64], w: &[f64]) -> f64 {
    assert_eq!(a.len(), w.len(), "weighted_norm_sq: length mismatch");
    a.iter().zip(w.iter()).map(|(x, wi)| wi * x * x).sum()
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Elementwise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Elementwise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Scaled copy `alpha * a`.
pub fn scale(alpha: f64, a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| alpha * x).collect()
}

/// Normalizes `a` to unit ℓ₂ norm; returns `None` when `‖a‖ == 0`.
pub fn normalized(a: &[f64]) -> Option<Vec<f64>> {
    let n = norm2(a);
    if n == 0.0 {
        None
    } else {
        Some(scale(1.0 / n, a))
    }
}

/// Returns `true` when `‖a − b‖∞ ≤ tol`.
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| (x - y).abs() <= tol)
}

/// Sum of all entries.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, -4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
    }

    #[test]
    fn weighted_norm_uses_weights() {
        let a = [1.0, 2.0];
        let w = [4.0, 0.25];
        assert_eq!(weighted_norm_sq(&a, &w), 4.0 + 1.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        assert_eq!(add(&a, &b), vec![4.0, 7.0]);
        assert_eq!(sub(&b, &a), vec![2.0, 3.0]);
        assert_eq!(scale(2.0, &a), vec![2.0, 4.0]);
    }

    #[test]
    fn normalized_unit_norm_or_none() {
        let v = normalized(&[3.0, 4.0]).unwrap();
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        assert!(normalized(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-3));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sum_adds_entries() {
        assert_eq!(sum(&[1.0, 2.0, 3.5]), 6.5);
    }
}
