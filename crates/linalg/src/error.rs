use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the failing operation.
        op: &'static str,
        /// Shape of the left / primary operand.
        lhs: (usize, usize),
        /// Shape of the right / secondary operand.
        rhs: (usize, usize),
    },
    /// The matrix is (numerically) singular and cannot be factorized/solved.
    Singular,
    /// A Cholesky factorization was requested for a matrix that is not
    /// symmetric positive definite.
    NotPositiveDefinite,
    /// An iterative kernel (Jacobi SVD) failed to converge.
    NonConvergence {
        /// The kernel that failed.
        op: &'static str,
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// The operation requires a non-empty matrix.
    Empty,
    /// A NaN or infinity reached a factorization. Rejecting it here
    /// keeps poisoned factors from laundering NaN into later solves,
    /// where they would surface far from the cause (e.g. as a NaN
    /// detection probability at the end of the MTD pipeline).
    NonFinite {
        /// The kernel that received the non-finite value.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::NonConvergence { op, iterations } => {
                write!(f, "{op} failed to converge after {iterations} iterations")
            }
            LinalgError::Empty => write!(f, "operation requires a non-empty matrix"),
            LinalgError::NonFinite { op } => {
                write!(f, "{op} received a non-finite (NaN/inf) value")
            }
        }
    }
}

impl Error for LinalgError {}
