//! Linear algebra substrate for the `gridmtd` workspace: dense kernels
//! plus a sparse backend with symbolic-factorization reuse.
//!
//! The moving-target-defense analysis of Lakshminarayana & Yau (DSN 2018)
//! relies on a small but non-trivial set of numerical kernels:
//!
//! * weighted least squares for state estimation (normal equations via
//!   [`Cholesky`], or QR for better conditioning),
//! * residual projectors `I − H(HᵀWH)⁻¹HᵀW`,
//! * column-space geometry: orthonormal bases ([`Qr`]), ranks and
//!   **principal angles between subspaces** ([`subspace::principal_angles`],
//!   [`subspace::smallest_principal_angle`]) computed with the
//!   Björck–Golub SVD method,
//! * a singular value decomposition ([`Svd`], one-sided Jacobi).
//!
//! The dense kernels operate on a row-major [`Matrix`] type and remain
//! the right tool below a few dozen states (no index overhead, byte
//! stable against the original implementation). Above that, the grid
//! operators are dominated by zeros — a 118-bus susceptance matrix is
//! ≈ 97 % empty — so the [`sparse`] module provides CSC storage, a
//! fill-reducing ordering, a sparse Cholesky whose **symbolic phase is
//! computed once per topology** and reused across MTD value
//! perturbations ([`sparse::SparseCholesky::refactor`]), and a sparse LU
//! for the simplex basis matrices of the DC-OPF. Consumers pick a
//! backend per problem size and fall back to dense below the crossover.
//!
//! # Example
//!
//! ```
//! use gridmtd_linalg::{Matrix, subspace};
//!
//! # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
//! let h = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]])?;
//! let h2 = Matrix::from_rows(&[&[1.0], &[1.0], &[0.0]])?;
//! let gamma = subspace::smallest_principal_angle(&h, &h2)?;
//! assert!((gamma - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod error;
mod matrix;

pub mod diff;
pub mod eigen;
pub mod lu;
pub mod qr;
pub mod sparse;
pub mod subspace;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use svd::Svd;

/// Relative tolerance used for rank decisions throughout the crate.
///
/// A singular value `s` is treated as zero when `s <= RANK_TOL * s_max`.
pub const RANK_TOL: f64 = 1e-10;
