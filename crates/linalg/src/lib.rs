//! Dense linear algebra substrate for the `gridmtd` workspace.
//!
//! The moving-target-defense analysis of Lakshminarayana & Yau (DSN 2018)
//! relies on a small but non-trivial set of numerical kernels:
//!
//! * weighted least squares for state estimation (normal equations via
//!   [`Cholesky`], or QR for better conditioning),
//! * residual projectors `I − H(HᵀWH)⁻¹HᵀW`,
//! * column-space geometry: orthonormal bases ([`Qr`]), ranks and
//!   **principal angles between subspaces** ([`subspace::principal_angles`],
//!   [`subspace::smallest_principal_angle`]) computed with the
//!   Björck–Golub SVD method,
//! * a singular value decomposition ([`Svd`], one-sided Jacobi).
//!
//! Everything is implemented from scratch on a dense row-major [`Matrix`]
//! type; the grids in this workspace (4–200 buses) produce matrices of at
//! most a few hundred rows, for which dense kernels are both simpler and
//! faster than sparse ones.
//!
//! # Example
//!
//! ```
//! use gridmtd_linalg::{Matrix, subspace};
//!
//! # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
//! let h = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]])?;
//! let h2 = Matrix::from_rows(&[&[1.0], &[1.0], &[0.0]])?;
//! let gamma = subspace::smallest_principal_angle(&h, &h2)?;
//! assert!((gamma - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod error;
mod matrix;

pub mod lu;
pub mod qr;
pub mod subspace;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;
pub use svd::Svd;

/// Relative tolerance used for rank decisions throughout the crate.
///
/// A singular value `s` is treated as zero when `s <= RANK_TOL * s_max`.
pub const RANK_TOL: f64 = 1e-10;
