use crate::{LinalgError, Matrix, RANK_TOL};

/// Householder QR factorization `A = Q R` of an `m × n` matrix with
/// `m ≥ n`.
///
/// The thin orthonormal factor `Q₁ ∈ R^{m×n}` is the orthonormal basis of
/// `Col(A)` used by the Björck–Golub principal-angle computation
/// ([`crate::subspace`]), and QR least squares backs the state estimator
/// when the normal equations are ill-conditioned.
///
/// # Example
///
/// ```
/// use gridmtd_linalg::{Matrix, Qr};
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let qr = Qr::factor(&a)?;
/// let q = qr.q_thin();
/// // Columns of Q are orthonormal.
/// let qtq = q.transpose().matmul(&q)?;
/// assert!(qtq.approx_eq(&Matrix::identity(2), 1e-12));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal; R on and above it.
    qr: Matrix,
    /// Scalar factors of the elementary reflectors.
    tau: Vec<f64>,
}

impl Qr {
    /// Factors an `m × n` matrix with `m ≥ n`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] for an empty matrix.
    /// * [`LinalgError::ShapeMismatch`] if `m < n` (factor the transpose or
    ///   pad instead; the workspace only needs tall matrices).
    pub fn factor(a: &Matrix) -> Result<Qr, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_factor (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm_sq = 0.0;
            for i in k..m {
                let v = qr[(i, k)];
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha e1, stored with v[k] implicit after normalization
            let v0 = qr[(k, k)] - alpha;
            // tau = 2 / (vᵀv) scaled so that H = I - tau v vᵀ with v[k] = 1
            let vtv = norm_sq - 2.0 * qr[(k, k)] * alpha + alpha * alpha;
            if vtv == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            // normalize v so v[k] = 1
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            tau[k] = 2.0 * v0 * v0 / vtv;
            qr[(k, k)] = alpha;

            // Apply H to the trailing columns.
            for j in (k + 1)..n {
                let mut dot = qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let t = tau[k] * dot;
                qr[(k, j)] -= t;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= t * vik;
                }
            }
        }
        Ok(Qr { qr, tau })
    }

    /// Row count of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Column count of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Upper-triangular factor `R ∈ R^{n×n}`.
    pub fn r(&self) -> Matrix {
        let n = self.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Thin orthonormal factor `Q₁ ∈ R^{m×n}`.
    pub fn q_thin(&self) -> Matrix {
        let (m, n) = self.qr.shape();
        // Accumulate Q = H_0 H_1 ... H_{n-1} applied to the first n columns
        // of the identity, working backwards.
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        for k in (0..n).rev() {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..n {
                let mut dot = q[(k, j)];
                for i in (k + 1)..m {
                    dot += self.qr[(i, k)] * q[(i, j)];
                }
                let t = self.tau[k] * dot;
                q[(k, j)] -= t;
                for i in (k + 1)..m {
                    let vik = self.qr[(i, k)];
                    q[(i, j)] -= t * vik;
                }
            }
        }
        q
    }

    /// Applies `Qᵀ` to a vector of length `m`, returning length `m`.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let n = self.qr.cols();
        let mut y = b.to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for (i, &yi) in y.iter().enumerate().skip(k + 1) {
                dot += self.qr[(i, k)] * yi;
            }
            let t = self.tau[k] * dot;
            y[k] -= t;
            for (i, yi) in y.iter_mut().enumerate().skip(k + 1) {
                *yi -= t * self.qr[(i, k)];
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len() != self.rows()`.
    /// * [`LinalgError::Singular`] if `R` is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr_lstsq",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let y = self.apply_qt(b);
        // back substitution on R
        let mut x = vec![0.0; n];
        let scale = self.qr.max_abs().max(1.0);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.qr[(i, j)] * xj;
            }
            let rii = self.qr[(i, i)];
            if rii.abs() <= RANK_TOL * scale {
                return Err(LinalgError::Singular);
            }
            x[i] = acc / rii;
        }
        Ok(x)
    }

    /// Numerical rank of the factored matrix, judged from the diagonal of
    /// `R` with relative tolerance [`RANK_TOL`].
    ///
    /// Note: QR without column pivoting can over- or under-estimate rank in
    /// pathological cases; the grids in this workspace are far from those.
    /// Use [`crate::Svd::rank`] for a robust rank.
    pub fn rank_estimate(&self) -> usize {
        let n = self.cols();
        let mut max_diag = 0.0_f64;
        for i in 0..n {
            max_diag = max_diag.max(self.qr[(i, i)].abs());
        }
        if max_diag == 0.0 {
            return 0;
        }
        (0..n)
            .filter(|&i| self.qr[(i, i)].abs() > RANK_TOL * max_diag)
            .count()
    }
}

/// Orthonormal basis of `Col(A)` for a full-column-rank tall matrix, i.e.
/// the thin-Q factor.
///
/// # Errors
///
/// See [`Qr::factor`].
pub fn orthonormal_basis(a: &Matrix) -> Result<Matrix, LinalgError> {
    Ok(Qr::factor(a)?.q_thin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn example_tall() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, -1.0, 4.0],
            &[1.0, 4.0, -2.0],
            &[1.0, 4.0, 2.0],
            &[1.0, -1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn q_is_orthonormal_and_qr_reconstructs() {
        let a = example_tall();
        let qr = Qr::factor(&a).unwrap();
        let q = qr.q_thin();
        let r = qr.r();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-12));
        let back = q.matmul(&r).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = Qr::factor(&example_tall()).unwrap();
        let r = qr.r();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = example_tall();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        // Normal equations solution for cross-check.
        let g = a.gram();
        let atb = a.matvec_transposed(&b).unwrap();
        let x_ne = crate::Cholesky::factor(&g).unwrap().solve(&atb).unwrap();
        assert!(vector::approx_eq(&x, &x_ne, 1e-9));
    }

    #[test]
    fn exact_system_is_solved_exactly() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]).unwrap();
        let x = Qr::factor(&a)
            .unwrap()
            .solve_least_squares(&[4.0, 9.0, 0.0])
            .unwrap();
        assert!(vector::approx_eq(&x, &[2.0, 3.0], 1e-12));
    }

    #[test]
    fn wide_matrix_is_rejected() {
        assert!(Qr::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rank_estimate_full_and_deficient() {
        assert_eq!(Qr::factor(&example_tall()).unwrap().rank_estimate(), 3);
        // Third column = first + second: rank 2.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 2.0],
            &[2.0, -1.0, 1.0],
        ])
        .unwrap();
        assert_eq!(Qr::factor(&a).unwrap().rank_estimate(), 2);
    }

    #[test]
    fn rank_deficient_least_squares_is_singular_error() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn orthonormal_basis_spans_input_columns() {
        let a = example_tall();
        let q = orthonormal_basis(&a).unwrap();
        // Every column of A must be reproduced by Q Qᵀ a_j.
        for j in 0..a.cols() {
            let col = a.col(j);
            let proj = q.matvec(&q.matvec_transposed(&col).unwrap()).unwrap();
            assert!(vector::approx_eq(&proj, &col, 1e-10));
        }
    }
}
