use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse type of the workspace: measurement matrices,
/// susceptance matrices, projectors and orthonormal bases are all `Matrix`
/// values. The type deliberately keeps a small, predictable API surface —
/// explicit constructors, checked (`try_*`/`Result`) structural operations
/// and panicking indexed access — following the conventions of the Rust API
/// guidelines.
///
/// # Example
///
/// ```
/// use gridmtd_linalg::Matrix;
///
/// # fn main() -> Result<(), gridmtd_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Matrix {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty row list and
    /// [`LinalgError::ShapeMismatch`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Matrix, LinalgError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(LinalgError::Empty);
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(LinalgError::ShapeMismatch {
                    op: "from_rows",
                    lhs: (nrows, ncols),
                    rhs: (1, row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec",
                lhs: (rows, cols),
                rhs: (1, data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a single-column matrix from a vector.
    pub fn column(v: &[f64]) -> Matrix {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams through `rhs` rows, cache friendly for
        // row-major storage.
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, out_i) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            *out_i = acc;
        }
        Ok(out)
    }

    /// Transposed matrix–vector product `selfᵀ * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.rows() != v.len()`.
    pub fn matvec_transposed(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transposed",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &a) in out.iter_mut().zip(row.iter()) {
                *o += vi * a;
            }
        }
        Ok(out)
    }

    /// Gram product `selfᵀ * self` (always square, symmetric PSD).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = &self.data[r * n..(r + 1) * n];
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for (j, &rj) in row.iter().enumerate().skip(i) {
                    g.data[i * n + j] += ri * rj;
                }
            }
        }
        // mirror the upper triangle
        for i in 0..n {
            for j in (i + 1)..n {
                g.data[j * n + i] = g.data[i * n + j];
            }
        }
        g
    }

    /// Elementwise scaling by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Checked elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Checked elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn try_sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        })
    }

    /// Vertical concatenation `[self; other]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Horizontal concatenation `[self other]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Returns a copy with column `j` removed.
    ///
    /// Used to drop the slack-bus column from incidence/measurement
    /// matrices.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn without_col(&self, j: usize) -> Matrix {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        let mut data = Vec::with_capacity(self.rows * (self.cols - 1));
        for i in 0..self.rows {
            let row = self.row(i);
            data.extend_from_slice(&row[..j]);
            data.extend_from_slice(&row[j + 1..]);
        }
        Matrix {
            rows: self.rows,
            cols: self.cols - 1,
            data,
        }
    }

    /// Returns a copy with row `i` removed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn without_row(&self, i: usize) -> Matrix {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        let mut data = Vec::with_capacity((self.rows - 1) * self.cols);
        data.extend_from_slice(&self.data[..i * self.cols]);
        data.extend_from_slice(&self.data[(i + 1) * self.cols..]);
        Matrix {
            rows: self.rows - 1,
            cols: self.cols,
            data,
        }
    }

    /// Extracts the contiguous submatrix with rows `r0..r1` and columns
    /// `c0..c1` (half-open ranges).
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds or inverted.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "bad row range {r0}..{r1}");
        assert!(c0 <= c1 && c1 <= self.cols, "bad col range {c0}..{c1}");
        let mut data = Vec::with_capacity((r1 - r0) * (c1 - c0));
        for i in r0..r1 {
            data.extend_from_slice(&self.row(i)[c0..c1]);
        }
        Matrix {
            rows: r1 - r0,
            cols: c1 - c0,
            data,
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (∞-norm of the vectorized matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Returns `true` when every entry of `self` is within `tol` of the
    /// corresponding entry of `other` (and shapes match).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns `true` when the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.data[i * self.cols + j] - self.data[j * self.cols + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Consumes the matrix, returning the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes differ; use [`Matrix::try_add`] for a checked
    /// version.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.try_add(rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if shapes differ; use [`Matrix::try_sub`] for a checked
    /// version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.try_sub(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if inner dimensions differ; use [`Matrix::matmul`] for a
    /// checked version.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix product shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(10) {
                write!(f, "{:10.4}", self.data[i * self.cols + j])?;
                if j + 1 < self.cols.min(10) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 10 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty_input() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_transposed_agree_with_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]).unwrap();
        let v = [2.0, 1.0, -1.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![1.0 * 2.0 - 2.0 - 0.5, 3.0 - 1.0]);

        let w = [1.0, -1.0];
        let got_t = a.matvec_transposed(&w).unwrap();
        assert_eq!(got_t, vec![1.0, -5.0, -0.5]);
    }

    #[test]
    fn gram_is_transpose_times_self() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&expected, 1e-12));
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v[(1, 0)], 3.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h[(0, 3)], 4.0);
    }

    #[test]
    fn without_col_drops_the_right_column() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let d = m.without_col(1);
        assert_eq!(d.shape(), (2, 2));
        assert_eq!(d.row(0), &[1.0, 3.0]);
        assert_eq!(d.row(1), &[4.0, 6.0]);
    }

    #[test]
    fn without_row_drops_the_right_row() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let d = m.without_row(0);
        assert_eq!(d.shape(), (2, 2));
        assert_eq!(d.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[6.0, 7.0]);
        assert_eq!(s.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn frobenius_norm_of_known_matrix() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn operators_add_sub_mul_neg() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        assert_eq!((&a + &b)[(0, 0)], 2.0);
        assert_eq!((&a - &b)[(1, 1)], 3.0);
        assert_eq!((&a * &b), a);
        assert_eq!((&a * 2.0)[(1, 0)], 6.0);
        assert_eq!((-&a)[(0, 1)], -2.0);
    }

    #[test]
    fn symmetric_detection() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn debug_format_is_nonempty() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x2"));
    }
}
