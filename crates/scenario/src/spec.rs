//! The typed scenario specification and its TOML (de)serialization.
//!
//! A spec is four tables:
//!
//! * `[scenario]` — `name`, `kind` (`tradeoff` | `keyspace` |
//!   `timeline` | `learning`), and a free-form `description`;
//! * `[grid]` — the benchmark case (including the synthetic
//!   case57/case118 rungs), the pre-perturbation reactance policy, and
//!   an optional operating point (uniform `load_scale`, or a named
//!   `trace` pinned to an `hour`, optionally with a staler
//!   `attacker_hour` knowledge point);
//! * `[config]` — overrides over [`MtdConfig::default`];
//! * `[sweep]` — the kind-specific axes. Grids (`gamma_thresholds`,
//!   `gamma_grid`) are written either as explicit arrays or as
//!   `{ start, stop, steps }` subtables compiled to a linspace.
//!
//! Unknown keys anywhere are **errors**, so typos fail loudly with the
//! offending line instead of silently running the default.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use gridmtd_core::{MtdConfig, SelectionMethod};

use crate::error::ScenarioError;
use crate::toml::{self, Entry, Table, Value};

/// A fully validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name; also names the run directory (letters, digits,
    /// `_`, `-`).
    pub name: String,
    /// Free-form description (shown by `gridmtd list`).
    pub description: String,
    /// Grid case and operating point.
    pub grid: GridSpec,
    /// Experiment configuration (defaults filled in).
    pub config: MtdConfig,
    /// The sweep to execute.
    pub sweep: SweepSpec,
}

/// Which benchmark network to build.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseId {
    /// The paper's 4-bus example (Fig. 3).
    Case4,
    /// IEEE 14-bus with the paper's overrides.
    Case14,
    /// IEEE 30-bus.
    Case30,
    /// Pinned-seed synthetic network at IEEE-57 scale.
    Case57,
    /// Pinned-seed synthetic network at IEEE-118 scale.
    Case118,
    /// Pinned-seed synthetic network at IEEE-300 scale (sparse-backend
    /// stress rung).
    Case300,
    /// Freely parameterized synthetic network.
    Synthetic {
        /// Number of buses (≥ 2).
        buses: usize,
        /// Generation seed.
        seed: u64,
    },
}

impl CaseId {
    /// Canonical spelling used in specs and results.
    pub fn name(&self) -> String {
        match self {
            CaseId::Case4 => "case4".to_string(),
            CaseId::Case14 => "case14".to_string(),
            CaseId::Case30 => "case30".to_string(),
            CaseId::Case57 => "case57".to_string(),
            CaseId::Case118 => "case118".to_string(),
            CaseId::Case300 => "case300".to_string(),
            CaseId::Synthetic { .. } => "synthetic".to_string(),
        }
    }
}

/// Pre-perturbation reactance policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XPrePolicy {
    /// The case's nominal reactances (box centre).
    Nominal,
    /// The spread box corner of
    /// [`gridmtd_core::selection::spread_pre_perturbation`], which makes
    /// the paper's full γ range reachable.
    Spread,
}

/// Operating point of the static (non-timeline) experiments.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadSpec {
    /// The case's nominal loads.
    Nominal,
    /// Nominal loads scaled uniformly.
    Scaled(f64),
    /// A named trace pinned to an hour; with `attacker_hour`, the
    /// attacker's knowledge (the pre-perturbation reactances) comes from
    /// the baseline OPF at that staler hour — the paper's Fig. 9 setup.
    TraceHour {
        /// Built-in trace name (see [`gridmtd_traces::BUILTIN_TRACES`]).
        trace: String,
        /// Hour the experiment runs at.
        hour: usize,
        /// Hour the attacker eavesdropped, if different.
        attacker_hour: Option<usize>,
    },
}

/// The `[grid]` table.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Which network to build.
    pub case: CaseId,
    /// Pre-perturbation reactance policy.
    pub x_pre: XPrePolicy,
    /// Operating point.
    pub load: LoadSpec,
}

/// The `[sweep]` table, by scenario kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// Effectiveness-vs-cost sweep over γ thresholds (Figs. 6 and 9).
    Tradeoff(TradeoffSweep),
    /// Random-perturbation keyspace study (Figs. 7–8).
    Keyspace(KeyspaceSweep),
    /// Hourly MTD operation over a load trace (Figs. 10–11).
    Timeline(TimelineSweep),
    /// Attacker-relearning timeline (Section IV-A reconfiguration
    /// deadline).
    Learning(LearningSweep),
}

impl SweepSpec {
    /// The spec-file `kind` string.
    pub fn kind(&self) -> &'static str {
        match self {
            SweepSpec::Tradeoff(_) => "tradeoff",
            SweepSpec::Keyspace(_) => "keyspace",
            SweepSpec::Timeline(_) => "timeline",
            SweepSpec::Learning(_) => "learning",
        }
    }
}

/// Axes of a tradeoff sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffSweep {
    /// γ-threshold grid, ascending.
    pub gamma_thresholds: Vec<f64>,
    /// Detection-probability levels δ to report η'(δ) at.
    pub deltas: Vec<f64>,
    /// Attack-magnitude axis (`‖a‖₁/‖z‖₁`); one full sweep per value.
    pub attack_ratios: Vec<f64>,
    /// Seed axis; one full sweep per value.
    pub seeds: Vec<u64>,
}

/// Axes of a keyspace study.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyspaceSweep {
    /// Random-perturbation fraction (the prior work uses 0.02).
    pub fraction: f64,
    /// Monte-Carlo trial count.
    pub n_trials: usize,
    /// δ levels to report η'(δ) at.
    pub deltas: Vec<f64>,
    /// Seed axis; one full study per value.
    pub seeds: Vec<u64>,
}

/// Axes of a timeline simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSweep {
    /// Built-in trace name.
    pub trace: String,
    /// Number of leading trace hours to simulate (`None` = full trace).
    pub hours: Option<usize>,
    /// Ascending per-hour γ-threshold tuning grid.
    pub gamma_grid: Vec<f64>,
    /// Target detection level δ*.
    pub target_delta: f64,
    /// Target effectiveness η*.
    pub target_eta: f64,
}

/// Axes of an attacker-relearning study.
#[derive(Debug, Clone, PartialEq)]
pub struct LearningSweep {
    /// MTD selection threshold applied before the study (`None` runs the
    /// study in the unperturbed world).
    pub gamma_threshold: Option<f64>,
    /// Snapshot-count checkpoints (the reconfiguration-period axis).
    pub sample_counts: Vec<usize>,
    /// Probe attacks per checkpoint.
    pub n_probe_attacks: usize,
    /// Subspace dimension the attacker estimates (`None` = true state
    /// dimension).
    pub subspace_dim: Option<usize>,
    /// Per-bus load jitter between snapshots.
    pub load_jitter: f64,
    /// δ* for the stealthy fraction.
    pub target_delta: f64,
}

/// Parses and validates a spec document.
///
/// # Errors
///
/// [`ScenarioError::Parse`] for TOML syntax errors,
/// [`ScenarioError::Spec`] for semantic ones (missing/unknown keys, bad
/// values) — both carrying source lines.
pub fn parse_spec(input: &str) -> Result<ScenarioSpec, ScenarioError> {
    let root = toml::parse(input)?;
    let root = Section::new(&root, String::new());

    let scenario = root.req_table("scenario")?;
    let name = scenario.req_str("name")?;
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        || name.is_empty()
    {
        return Err(scenario.err(
            "name",
            "scenario names use letters, digits, `_`, `-` (they name the run directory)",
        ));
    }
    let kind = scenario.req_str("kind")?;
    let description = scenario.opt_str("description")?.unwrap_or_default();
    scenario.deny_unknown()?;

    let grid_section = root.req_table("grid")?;
    let grid = decode_grid(&grid_section)?;
    grid_section.deny_unknown()?;

    let config = match root.opt_table("config")? {
        Some(section) => {
            let cfg = decode_config(&section)?;
            section.deny_unknown()?;
            cfg
        }
        None => MtdConfig::default(),
    };

    let sweep_section = root.req_table("sweep")?;
    let sweep = decode_sweep(&kind, &sweep_section, &config, &scenario)?;
    sweep_section.deny_unknown()?;
    root.deny_unknown()?;

    // Cross-table validation.
    if matches!(sweep, SweepSpec::Timeline(_)) && !matches!(grid.load, LoadSpec::Nominal) {
        return Err(ScenarioError::spec(
            "grid",
            0,
            "timeline scenarios drive loads from `sweep.trace`; \
             remove `grid.load_scale` / `grid.trace`",
        ));
    }

    Ok(ScenarioSpec {
        name,
        description,
        grid,
        config,
        sweep,
    })
}

fn decode_grid(section: &Section<'_>) -> Result<GridSpec, ScenarioError> {
    let case_name = section.req_str("case")?;
    let case = match case_name.as_str() {
        "case4" => CaseId::Case4,
        "case14" => CaseId::Case14,
        "case30" => CaseId::Case30,
        "case57" => CaseId::Case57,
        "case118" => CaseId::Case118,
        "case300" => CaseId::Case300,
        "synthetic" => CaseId::Synthetic {
            buses: section.req_usize("buses")?,
            seed: section.opt_u64("case_seed")?.unwrap_or(1),
        },
        other => {
            return Err(section.err(
                "case",
                format!(
                    "unknown case `{other}`; expected case4, case14, case30, \
                     case57, case118, case300, or synthetic"
                ),
            ))
        }
    };
    if !matches!(case, CaseId::Synthetic { .. }) {
        for key in ["buses", "case_seed"] {
            if section.peek(key) {
                return Err(section.err(key, "only valid with `case = \"synthetic\"`"));
            }
        }
    }

    let x_pre = match section.opt_str("x_pre")?.as_deref() {
        None | Some("nominal") => XPrePolicy::Nominal,
        Some("spread") => XPrePolicy::Spread,
        Some(other) => {
            return Err(section.err(
                "x_pre",
                format!("expected \"nominal\" or \"spread\", got `{other}`"),
            ))
        }
    };

    let load_scale = section.opt_f64("load_scale")?;
    let trace = section.opt_str("trace")?;
    let load = match (load_scale, trace) {
        (Some(_), Some(_)) => {
            return Err(section.err(
                "load_scale",
                "choose either `load_scale` or `trace`, not both",
            ))
        }
        (Some(s), None) => {
            if s <= 0.0 {
                return Err(section.err("load_scale", "must be positive"));
            }
            LoadSpec::Scaled(s)
        }
        (None, Some(name)) => {
            let Some(tr) = gridmtd_traces::by_name(&name) else {
                return Err(section.err(
                    "trace",
                    format!(
                        "unknown trace `{name}`; built-ins: {}",
                        gridmtd_traces::BUILTIN_TRACES.join(", ")
                    ),
                ));
            };
            let hour = section.req_usize("hour")?;
            let attacker_hour = section.opt_usize("attacker_hour")?;
            // LoadTrace indexing wraps modulo its length, so an
            // out-of-range hour would silently run at a different hour
            // — reject it here instead.
            for (key, value) in [("hour", Some(hour)), ("attacker_hour", attacker_hour)] {
                if let Some(h) = value {
                    if h >= tr.len() {
                        return Err(section.err(
                            key,
                            format!("must be in 0..={} for trace `{name}`", tr.len() - 1),
                        ));
                    }
                }
            }
            LoadSpec::TraceHour {
                trace: name,
                hour,
                attacker_hour,
            }
        }
        (None, None) => {
            for key in ["hour", "attacker_hour"] {
                if section.peek(key) {
                    return Err(section.err(key, "only valid together with `trace`"));
                }
            }
            LoadSpec::Nominal
        }
    };

    Ok(GridSpec { case, x_pre, load })
}

fn decode_config(section: &Section<'_>) -> Result<MtdConfig, ScenarioError> {
    let mut cfg = MtdConfig::default();
    if let Some(v) = section.opt_f64("alpha")? {
        if !(v > 0.0 && v < 1.0) {
            return Err(section.err("alpha", "false-positive rate must be in (0, 1)"));
        }
        cfg.alpha = v;
    }
    if let Some(v) = section.opt_f64("noise_sigma_mw")? {
        if v <= 0.0 {
            return Err(section.err("noise_sigma_mw", "must be positive"));
        }
        cfg.noise_sigma_mw = v;
    }
    if let Some(v) = section.opt_f64("attack_ratio")? {
        if v <= 0.0 {
            return Err(section.err("attack_ratio", "must be positive"));
        }
        cfg.attack_ratio = v;
    }
    if let Some(v) = section.opt_usize("n_attacks")? {
        if v == 0 {
            return Err(section.err("n_attacks", "need at least one attack"));
        }
        cfg.n_attacks = v;
    }
    if let Some(v) = section.opt_f64("eta_max")? {
        if !(v > 0.0 && v < 1.0) {
            return Err(section.err("eta_max", "D-FACTS range must be in (0, 1)"));
        }
        cfg.eta_max = v;
    }
    if let Some(v) = section.opt_u64("seed")? {
        cfg.seed = v;
    }
    if let Some(v) = section.opt_usize("n_starts")? {
        if v == 0 {
            return Err(section.err("n_starts", "need at least one start"));
        }
        cfg.n_starts = v;
    }
    if let Some(v) = section.opt_usize("max_evals_per_start")? {
        if v == 0 {
            return Err(section.err("max_evals_per_start", "need a positive budget"));
        }
        cfg.max_evals_per_start = v;
    }
    if let Some(v) = section.opt_str("selection_method")? {
        cfg.selection_method = SelectionMethod::parse(&v).ok_or_else(|| {
            section.err(
                "selection_method",
                "expected \"gradient\" or \"nelder-mead\"",
            )
        })?;
    }
    if let Some(v) = section.opt_usize("pwl_segments")? {
        if v == 0 {
            return Err(section.err("pwl_segments", "need at least one segment"));
        }
        cfg.opf.pwl_segments = v;
    }
    Ok(cfg)
}

fn decode_sweep(
    kind: &str,
    section: &Section<'_>,
    config: &MtdConfig,
    scenario_section: &Section<'_>,
) -> Result<SweepSpec, ScenarioError> {
    match kind {
        "tradeoff" => {
            let gamma_thresholds = section.req_axis("gamma_thresholds")?;
            let deltas = section.req_f64_array("deltas")?;
            validate_deltas(section, "deltas", &deltas)?;
            let attack_ratios = section
                .opt_f64_array("attack_ratios")?
                .unwrap_or_else(|| vec![config.attack_ratio]);
            if attack_ratios.is_empty() || attack_ratios.iter().any(|&r| r <= 0.0) {
                return Err(section.err(
                    "attack_ratios",
                    "must be a non-empty array of positive ratios",
                ));
            }
            let seeds = section
                .opt_u64_array("seeds")?
                .unwrap_or_else(|| vec![config.seed]);
            if seeds.is_empty() {
                return Err(section.err("seeds", "must be a non-empty array"));
            }
            Ok(SweepSpec::Tradeoff(TradeoffSweep {
                gamma_thresholds,
                deltas,
                attack_ratios,
                seeds,
            }))
        }
        "keyspace" => {
            let fraction = section.req_f64("fraction")?;
            if !(fraction > 0.0 && fraction < 1.0) {
                return Err(section.err("fraction", "perturbation fraction must be in (0, 1)"));
            }
            let n_trials = section.req_usize("n_trials")?;
            if n_trials == 0 {
                return Err(section.err("n_trials", "need at least one trial"));
            }
            let deltas = section.req_f64_array("deltas")?;
            validate_deltas(section, "deltas", &deltas)?;
            let seeds = section
                .opt_u64_array("seeds")?
                .unwrap_or_else(|| vec![config.seed]);
            if seeds.is_empty() {
                return Err(section.err("seeds", "must be a non-empty array"));
            }
            Ok(SweepSpec::Keyspace(KeyspaceSweep {
                fraction,
                n_trials,
                deltas,
                seeds,
            }))
        }
        "timeline" => {
            let trace = section.req_str("trace")?;
            let Some(full) = gridmtd_traces::by_name(&trace) else {
                return Err(section.err(
                    "trace",
                    format!(
                        "unknown trace `{trace}`; built-ins: {}",
                        gridmtd_traces::BUILTIN_TRACES.join(", ")
                    ),
                ));
            };
            let hours = section.opt_usize("hours")?;
            if let Some(h) = hours {
                if h == 0 || h > full.len() {
                    return Err(section.err(
                        "hours",
                        format!("must be in 1..={} for trace `{trace}`", full.len()),
                    ));
                }
            }
            let gamma_grid = section.req_axis("gamma_grid")?;
            let target_delta = section.opt_f64("target_delta")?.unwrap_or(0.9);
            let target_eta = section.opt_f64("target_eta")?.unwrap_or(0.9);
            for (key, v) in [("target_delta", target_delta), ("target_eta", target_eta)] {
                if !(0.0..=1.0).contains(&v) {
                    return Err(section.err(key, "must be in [0, 1]"));
                }
            }
            Ok(SweepSpec::Timeline(TimelineSweep {
                trace,
                hours,
                gamma_grid,
                target_delta,
                target_eta,
            }))
        }
        "learning" => {
            let gamma_threshold = section.opt_f64("gamma_threshold")?;
            if let Some(g) = gamma_threshold {
                if g < 0.0 {
                    return Err(section.err("gamma_threshold", "must be non-negative"));
                }
            }
            let sample_counts = section.req_usize_array("sample_counts")?;
            if sample_counts.is_empty()
                || sample_counts.windows(2).any(|w| w[0] >= w[1])
                || sample_counts[0] == 0
            {
                return Err(section.err(
                    "sample_counts",
                    "must be a strictly ascending array of positive snapshot counts",
                ));
            }
            let n_probe_attacks = section.opt_usize("n_probe_attacks")?.unwrap_or(50);
            if n_probe_attacks == 0 {
                return Err(section.err("n_probe_attacks", "need at least one probe"));
            }
            let subspace_dim = section.opt_usize("subspace_dim")?;
            let load_jitter = section.opt_f64("load_jitter")?.unwrap_or(0.4);
            if !(load_jitter > 0.0 && load_jitter < 1.0) {
                return Err(section.err("load_jitter", "must be in (0, 1)"));
            }
            let target_delta = section.opt_f64("target_delta")?.unwrap_or(0.9);
            if !(0.0..=1.0).contains(&target_delta) {
                return Err(section.err("target_delta", "must be in [0, 1]"));
            }
            Ok(SweepSpec::Learning(LearningSweep {
                gamma_threshold,
                sample_counts,
                n_probe_attacks,
                subspace_dim,
                load_jitter,
                target_delta,
            }))
        }
        other => Err(scenario_section.err(
            "kind",
            format!("unknown kind `{other}`; expected tradeoff, keyspace, timeline, or learning"),
        )),
    }
}

fn validate_deltas(section: &Section<'_>, key: &str, deltas: &[f64]) -> Result<(), ScenarioError> {
    if deltas.is_empty() || deltas.iter().any(|d| !(0.0..=1.0).contains(d)) {
        return Err(section.err(key, "must be a non-empty array of levels in [0, 1]"));
    }
    Ok(())
}

impl ScenarioSpec {
    /// Canonical TOML rendering. Re-parsing the output yields a spec
    /// equal to `self` (grids are emitted as resolved arrays), which the
    /// golden round-trip test pins.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[scenario]");
        let _ = writeln!(out, "name = {}", toml_str(&self.name));
        let _ = writeln!(out, "kind = {}", toml_str(self.sweep.kind()));
        let _ = writeln!(out, "description = {}", toml_str(&self.description));

        let _ = writeln!(out, "\n[grid]");
        let _ = writeln!(out, "case = {}", toml_str(&self.grid.case.name()));
        if let CaseId::Synthetic { buses, seed } = self.grid.case {
            let _ = writeln!(out, "buses = {buses}");
            let _ = writeln!(out, "case_seed = {seed}");
        }
        let policy = match self.grid.x_pre {
            XPrePolicy::Nominal => "nominal",
            XPrePolicy::Spread => "spread",
        };
        let _ = writeln!(out, "x_pre = {}", toml_str(policy));
        match &self.grid.load {
            LoadSpec::Nominal => {}
            LoadSpec::Scaled(s) => {
                let _ = writeln!(out, "load_scale = {s}");
            }
            LoadSpec::TraceHour {
                trace,
                hour,
                attacker_hour,
            } => {
                let _ = writeln!(out, "trace = {}", toml_str(trace));
                let _ = writeln!(out, "hour = {hour}");
                if let Some(ah) = attacker_hour {
                    let _ = writeln!(out, "attacker_hour = {ah}");
                }
            }
        }

        let c = &self.config;
        let _ = writeln!(out, "\n[config]");
        let _ = writeln!(out, "alpha = {}", c.alpha);
        let _ = writeln!(out, "noise_sigma_mw = {}", c.noise_sigma_mw);
        let _ = writeln!(out, "attack_ratio = {}", c.attack_ratio);
        let _ = writeln!(out, "n_attacks = {}", c.n_attacks);
        let _ = writeln!(out, "eta_max = {}", c.eta_max);
        let _ = writeln!(out, "seed = {}", c.seed);
        let _ = writeln!(out, "n_starts = {}", c.n_starts);
        let _ = writeln!(out, "max_evals_per_start = {}", c.max_evals_per_start);
        let _ = writeln!(
            out,
            "selection_method = \"{}\"",
            c.selection_method.as_str()
        );
        let _ = writeln!(out, "pwl_segments = {}", c.opf.pwl_segments);

        let _ = writeln!(out, "\n[sweep]");
        match &self.sweep {
            SweepSpec::Tradeoff(s) => {
                let _ = writeln!(
                    out,
                    "gamma_thresholds = {}",
                    toml_floats(&s.gamma_thresholds)
                );
                let _ = writeln!(out, "deltas = {}", toml_floats(&s.deltas));
                let _ = writeln!(out, "attack_ratios = {}", toml_floats(&s.attack_ratios));
                let _ = writeln!(out, "seeds = {}", toml_u64s(&s.seeds));
            }
            SweepSpec::Keyspace(s) => {
                let _ = writeln!(out, "fraction = {}", s.fraction);
                let _ = writeln!(out, "n_trials = {}", s.n_trials);
                let _ = writeln!(out, "deltas = {}", toml_floats(&s.deltas));
                let _ = writeln!(out, "seeds = {}", toml_u64s(&s.seeds));
            }
            SweepSpec::Timeline(s) => {
                let _ = writeln!(out, "trace = {}", toml_str(&s.trace));
                if let Some(h) = s.hours {
                    let _ = writeln!(out, "hours = {h}");
                }
                let _ = writeln!(out, "gamma_grid = {}", toml_floats(&s.gamma_grid));
                let _ = writeln!(out, "target_delta = {}", s.target_delta);
                let _ = writeln!(out, "target_eta = {}", s.target_eta);
            }
            SweepSpec::Learning(s) => {
                if let Some(g) = s.gamma_threshold {
                    let _ = writeln!(out, "gamma_threshold = {g}");
                }
                let counts: Vec<String> = s.sample_counts.iter().map(|n| n.to_string()).collect();
                let _ = writeln!(out, "sample_counts = [{}]", counts.join(", "));
                let _ = writeln!(out, "n_probe_attacks = {}", s.n_probe_attacks);
                if let Some(d) = s.subspace_dim {
                    let _ = writeln!(out, "subspace_dim = {d}");
                }
                let _ = writeln!(out, "load_jitter = {}", s.load_jitter);
                let _ = writeln!(out, "target_delta = {}", s.target_delta);
            }
        }
        out
    }
}

fn toml_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn toml_floats(xs: &[f64]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| format!("{x}")).collect();
    format!("[{}]", parts.join(", "))
}

fn toml_u64s(xs: &[u64]) -> String {
    let parts: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", parts.join(", "))
}

/// A view over one TOML table that tracks key usage so unknown keys can
/// be rejected with their source line.
struct Section<'a> {
    table: &'a Table,
    path: String,
    used: std::cell::RefCell<BTreeSet<String>>,
}

impl<'a> Section<'a> {
    fn new(table: &'a Table, path: String) -> Section<'a> {
        Section {
            table,
            path,
            used: std::cell::RefCell::new(BTreeSet::new()),
        }
    }

    fn key_path(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{}", self.path, key)
        }
    }

    fn err(&self, key: &str, message: impl Into<String>) -> ScenarioError {
        let line = self
            .table
            .get(key)
            .map(|e| e.line)
            .or_else(|| self.table.subtables.get(key).map(|&(_, line)| line))
            .unwrap_or(0);
        ScenarioError::spec(self.key_path(key), line, message)
    }

    fn peek(&self, key: &str) -> bool {
        self.table.get(key).is_some()
    }

    fn entry(&self, key: &str) -> Option<&'a Entry> {
        let entry = self.table.get(key);
        if entry.is_some() {
            self.used.borrow_mut().insert(key.to_string());
        }
        entry
    }

    fn req_table(&self, key: &str) -> Result<Section<'a>, ScenarioError> {
        self.opt_table(key)?.ok_or_else(|| {
            ScenarioError::spec(
                self.key_path(key),
                0,
                format!("missing required table [{}]", self.key_path(key)),
            )
        })
    }

    fn opt_table(&self, key: &str) -> Result<Option<Section<'a>>, ScenarioError> {
        if self.table.get(key).is_some() {
            return Err(self.err(key, "expected a [table], found a value"));
        }
        match self.table.table(key) {
            Some(t) => {
                self.used.borrow_mut().insert(key.to_string());
                Ok(Some(Section::new(t, self.key_path(key))))
            }
            None => Ok(None),
        }
    }

    fn req_str(&self, key: &str) -> Result<String, ScenarioError> {
        self.opt_str(key)?
            .ok_or_else(|| self.missing(key, "a string"))
    }

    fn opt_str(&self, key: &str) -> Result<Option<String>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Str(s) => Ok(Some(s.clone())),
                other => Err(self.type_err(key, "a string", other)),
            },
        }
    }

    fn req_f64(&self, key: &str) -> Result<f64, ScenarioError> {
        self.opt_f64(key)?
            .ok_or_else(|| self.missing(key, "a number"))
    }

    fn opt_f64(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => Ok(Some(self.as_f64(key, &e.value)?)),
        }
    }

    fn as_f64(&self, key: &str, v: &Value) -> Result<f64, ScenarioError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(self.type_err(key, "a number", other)),
        }
    }

    fn req_usize(&self, key: &str) -> Result<usize, ScenarioError> {
        self.opt_usize(key)?
            .ok_or_else(|| self.missing(key, "a non-negative integer"))
    }

    fn opt_usize(&self, key: &str) -> Result<Option<usize>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => Ok(Some(self.as_usize(key, &e.value)?)),
        }
    }

    fn as_usize(&self, key: &str, v: &Value) -> Result<usize, ScenarioError> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as usize),
            other => Err(self.type_err(key, "a non-negative integer", other)),
        }
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Int(i) if *i >= 0 => Ok(Some(*i as u64)),
                other => Err(self.type_err(key, "a non-negative integer", other)),
            },
        }
    }

    fn req_f64_array(&self, key: &str) -> Result<Vec<f64>, ScenarioError> {
        self.opt_f64_array(key)?
            .ok_or_else(|| self.missing(key, "an array of numbers"))
    }

    fn opt_f64_array(&self, key: &str) -> Result<Option<Vec<f64>>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Array(items) => items
                    .iter()
                    .map(|v| self.as_f64(key, v))
                    .collect::<Result<Vec<f64>, _>>()
                    .map(Some),
                other => Err(self.type_err(key, "an array of numbers", other)),
            },
        }
    }

    fn req_usize_array(&self, key: &str) -> Result<Vec<usize>, ScenarioError> {
        match self.entry(key) {
            None => Err(self.missing(key, "an array of non-negative integers")),
            Some(e) => match &e.value {
                Value::Array(items) => items.iter().map(|v| self.as_usize(key, v)).collect(),
                other => Err(self.type_err(key, "an array of non-negative integers", other)),
            },
        }
    }

    fn opt_u64_array(&self, key: &str) -> Result<Option<Vec<u64>>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                Value::Array(items) => items
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) if *i >= 0 => Ok(*i as u64),
                        other => {
                            Err(self.type_err(key, "an array of non-negative integers", other))
                        }
                    })
                    .collect::<Result<Vec<u64>, _>>()
                    .map(Some),
                other => Err(self.type_err(key, "an array of non-negative integers", other)),
            },
        }
    }

    /// A grid axis: an explicit ascending array, or a
    /// `{ start, stop, steps }` subtable compiled to a linspace.
    fn req_axis(&self, key: &str) -> Result<Vec<f64>, ScenarioError> {
        if self.peek(key) {
            let values = self.req_f64_array(key)?;
            if values.is_empty() || values.windows(2).any(|w| w[0] >= w[1]) {
                return Err(self.err(key, "must be a non-empty, strictly ascending array"));
            }
            return Ok(values);
        }
        let Some(sub) = self.opt_table(key)? else {
            return Err(ScenarioError::spec(
                self.key_path(key),
                0,
                format!(
                    "missing axis `{}`: give an array, or a [{}] subtable \
                     with start/stop/steps",
                    self.key_path(key),
                    self.key_path(key)
                ),
            ));
        };
        let start = sub.req_f64("start")?;
        let stop = sub.req_f64("stop")?;
        let steps = sub.req_usize("steps")?;
        sub.deny_unknown()?;
        if steps == 0 {
            return Err(sub.err("steps", "need at least one step"));
        }
        if stop < start {
            return Err(sub.err("stop", "must be >= start"));
        }
        if steps == 1 {
            // A one-step grid would silently discard `stop`; make the
            // intent explicit instead.
            if stop != start {
                return Err(sub.err(
                    "steps",
                    "steps = 1 would discard `stop`; use steps >= 2 or an explicit array",
                ));
            }
            return Ok(vec![start]);
        }
        let h = (stop - start) / (steps - 1) as f64;
        Ok((0..steps).map(|i| start + h * i as f64).collect())
    }

    fn missing(&self, key: &str, expected: &str) -> ScenarioError {
        ScenarioError::spec(
            self.key_path(key),
            0,
            format!("missing required key (expected {expected})"),
        )
    }

    fn type_err(&self, key: &str, expected: &str, got: &Value) -> ScenarioError {
        self.err(
            key,
            format!("expected {expected}, got a {}", got.type_name()),
        )
    }

    /// Fails on the first key in this table that no decoder consumed.
    fn deny_unknown(&self) -> Result<(), ScenarioError> {
        let used = self.used.borrow();
        for (key, entry) in &self.table.entries {
            if !used.contains(key) {
                return Err(ScenarioError::spec(
                    self.key_path(key),
                    entry.line,
                    "unknown key (typo? see docs/REPRODUCING.md for the spec format)",
                ));
            }
        }
        for (key, (_, line)) in &self.table.subtables {
            if !used.contains(key) {
                return Err(ScenarioError::spec(
                    self.key_path(key),
                    *line,
                    "unknown table (typo? see docs/REPRODUCING.md for the spec format)",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
[scenario]
name = "demo"
kind = "tradeoff"
description = "a demo"

[grid]
case = "case14"
x_pre = "spread"

[sweep]
gamma_thresholds = [0.05, 0.15]
deltas = [0.5, 0.9]
"#;

    #[test]
    fn minimal_tradeoff_spec_decodes_with_defaults() {
        let spec = parse_spec(MINIMAL).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.grid.case, CaseId::Case14);
        assert_eq!(spec.grid.x_pre, XPrePolicy::Spread);
        assert_eq!(spec.grid.load, LoadSpec::Nominal);
        assert_eq!(spec.config, MtdConfig::default());
        match &spec.sweep {
            SweepSpec::Tradeoff(s) => {
                assert_eq!(s.gamma_thresholds, vec![0.05, 0.15]);
                assert_eq!(s.attack_ratios, vec![MtdConfig::default().attack_ratio]);
                assert_eq!(s.seeds, vec![MtdConfig::default().seed]);
            }
            other => panic!("wrong sweep: {other:?}"),
        }
    }

    #[test]
    fn axis_subtable_compiles_to_linspace() {
        // Replace the explicit array with a start/stop/steps subtable
        // (placed after [sweep]'s scalar keys, as TOML requires).
        let doc = format!(
            "{}\n[sweep.gamma_thresholds]\nstart = 0.1\nstop = 0.3\nsteps = 3\n",
            MINIMAL.replace("gamma_thresholds = [0.05, 0.15]", "")
        );
        let spec = parse_spec(&doc).unwrap();
        match &spec.sweep {
            SweepSpec::Tradeoff(s) => {
                assert_eq!(s.gamma_thresholds.len(), 3);
                assert!((s.gamma_thresholds[1] - 0.2).abs() < 1e-12);
            }
            other => panic!("wrong sweep: {other:?}"),
        }
    }

    #[test]
    fn unknown_keys_are_rejected_with_line() {
        let doc = MINIMAL.replace("x_pre = \"spread\"", "x_per = \"spread\"");
        let err = parse_spec(&doc).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("grid.x_per"), "{msg}");
        assert!(msg.contains("unknown key"), "{msg}");
        assert!(msg.contains("line"), "{msg}");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let doc = MINIMAL.replace("kind = \"tradeoff\"", "kind = \"tradeof\"");
        let err = parse_spec(&doc).unwrap_err();
        assert!(err.to_string().contains("unknown kind"), "{err}");
    }

    #[test]
    fn synthetic_case_requires_buses() {
        let doc = MINIMAL.replace("case = \"case14\"", "case = \"synthetic\"");
        let err = parse_spec(&doc).unwrap_err();
        assert!(err.to_string().contains("grid.buses"), "{err}");
        let doc = MINIMAL.replace("case = \"case14\"", "case = \"synthetic\"\nbuses = 25");
        let spec = parse_spec(&doc).unwrap();
        assert_eq!(spec.grid.case, CaseId::Synthetic { buses: 25, seed: 1 });
    }

    #[test]
    fn out_of_range_trace_hours_are_rejected() {
        // LoadTrace wraps modulo its length, so hour = 181 would
        // silently run at hour 13; the spec layer must reject it.
        let doc = MINIMAL.replace(
            "x_pre = \"spread\"",
            "x_pre = \"spread\"\ntrace = \"nyiso_winter_weekday\"\nhour = 181",
        );
        let err = parse_spec(&doc).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("grid.hour"), "{msg}");
        assert!(msg.contains("0..=23"), "{msg}");
        let doc = MINIMAL.replace(
            "x_pre = \"spread\"",
            "x_pre = \"spread\"\ntrace = \"nyiso_winter_weekday\"\nhour = 18\nattacker_hour = 24",
        );
        let err = parse_spec(&doc).unwrap_err();
        assert!(err.to_string().contains("grid.attacker_hour"), "{err}");
    }

    #[test]
    fn one_step_axis_must_not_discard_stop() {
        let doc = format!(
            "{}\n[sweep.gamma_thresholds]\nstart = 0.05\nstop = 0.4\nsteps = 1\n",
            MINIMAL.replace("gamma_thresholds = [0.05, 0.15]", "")
        );
        let err = parse_spec(&doc).unwrap_err();
        assert!(err.to_string().contains("discard `stop`"), "{err}");
        // steps = 1 with start == stop is the legitimate single point.
        let doc = doc.replace("stop = 0.4", "stop = 0.05");
        let spec = parse_spec(&doc).unwrap();
        match &spec.sweep {
            SweepSpec::Tradeoff(s) => assert_eq!(s.gamma_thresholds, vec![0.05]),
            other => panic!("wrong sweep: {other:?}"),
        }
    }

    #[test]
    fn trace_and_load_scale_are_exclusive() {
        let doc = MINIMAL.replace(
            "x_pre = \"spread\"",
            "x_pre = \"spread\"\nload_scale = 0.9\ntrace = \"nyiso_winter_weekday\"\nhour = 18",
        );
        let err = parse_spec(&doc).unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
    }

    #[test]
    fn round_trip_preserves_the_spec() {
        let doc = r#"
[scenario]
name = "round-trip"
kind = "timeline"
description = "multi\nline"

[grid]
case = "case4"

[config]
n_attacks = 60
seed = 7

[sweep]
trace = "nyiso_winter_weekday"
hours = 4
target_eta = 0.85
[sweep.gamma_grid]
start = 0.05
stop = 0.15
steps = 3
"#;
        let spec = parse_spec(doc).unwrap();
        let rendered = spec.to_toml();
        let reparsed = parse_spec(&rendered).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn learning_sweep_validates_ascending_counts() {
        let doc = r#"
[scenario]
name = "learn"
kind = "learning"

[grid]
case = "case4"

[sweep]
gamma_threshold = 0.1
sample_counts = [64, 16]
"#;
        let err = parse_spec(doc).unwrap_err();
        assert!(err.to_string().contains("ascending"), "{err}");
    }

    #[test]
    fn timeline_rejects_grid_trace() {
        let doc = r#"
[scenario]
name = "t"
kind = "timeline"

[grid]
case = "case4"
trace = "nyiso_winter_weekday"
hour = 3

[sweep]
trace = "nyiso_winter_weekday"
gamma_grid = [0.05]
"#;
        let err = parse_spec(doc).unwrap_err();
        assert!(err.to_string().contains("sweep.trace"), "{err}");
    }
}
