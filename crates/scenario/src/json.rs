//! Deterministic JSON reader/writer for run results and the wire.
//!
//! The golden-file tests compare run output **byte for byte**, so the
//! writer is deliberately boring: object keys render in insertion
//! order, floats use Rust's shortest-roundtrip `Display` (identical on
//! every platform), non-finite floats become `null`, and indentation is
//! fixed at two spaces. No timestamps, no pointers, no map iteration
//! order — a run's JSON is a pure function of the spec.
//!
//! The serve layer reuses the same [`Json`] tree for its line-delimited
//! protocol: [`Json::compact`] renders a single-line frame, and
//! [`Json::parse`] is a strict recursive-descent reader with a nesting
//! cap (untrusted input must not be able to blow the stack).

use std::fmt::Write as _;

/// Maximum nesting depth [`Json::parse`] accepts. Deep enough for any
/// real request, shallow enough that adversarial `[[[[…` input cannot
/// overflow the parser's stack.
const MAX_PARSE_DEPTH: usize = 64;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; never rendered with an exponent).
    Int(i64),
    /// A float; NaN and infinities render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object fields.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for float arrays.
    pub fn floats(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no whitespace — the framing the
    /// line-delimited wire protocol requires (one frame per `\n`).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Parses a JSON document. Strict: the whole input must be one
    /// value (plus surrounding whitespace), nesting is capped, and the
    /// usual escape set is honoured. Integers without a fraction or
    /// exponent that fit `i64` become [`Json::Int`]; everything else
    /// numeric becomes [`Json::Num`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error,
    /// with its byte offset.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a field of an object by key; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, accepting both [`Json::Int`] and
    /// [`Json::Num`].
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    #[allow(clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err(format!("nesting deeper than {MAX_PARSE_DEPTH}"));
        }
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run free of escapes/quotes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, and the run stops before any
                // multi-byte boundary issue (UTF-8 continuation bytes
                // are all >= 0x80, never '"' or '\\').
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(format!("raw control byte at {}", self.pos)),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let b = self
            .peek()
            .ok_or_else(|| "unterminated escape".to_string())?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half immediately.
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(format!("invalid low surrogate at byte {}", self.pos));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(format!("lone surrogate at byte {}", self.pos));
                    }
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| format!("invalid code point at byte {}", self.pos))?,
                );
            }
            _ => return Err(format!("invalid escape at byte {}", self.pos - 1)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(chunk).map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("invalid \\u at {}", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        let x: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
        Ok(Json::Num(x))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure_deterministically() {
        let doc = Json::obj(vec![
            ("name", Json::Str("demo".to_string())),
            ("n", Json::Int(3)),
            ("xs", Json::floats(&[0.5, 1.0])),
            ("empty", Json::Arr(vec![])),
            ("flag", Json::Bool(true)),
        ]);
        let expected = "{\n  \"name\": \"demo\",\n  \"n\": 3,\n  \"xs\": [\n    0.5,\n    1\n  ],\n  \"empty\": [],\n  \"flag\": true\n}\n";
        assert_eq!(doc.pretty(), expected);
        assert_eq!(doc.pretty(), doc.pretty());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(s.pretty(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn compact_renders_one_line() {
        let doc = Json::obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Bool(false), Json::Null])),
        ]);
        assert_eq!(doc.compact(), "{\"a\":1,\"b\":[false,null]}");
    }

    #[test]
    fn parse_roundtrips_compact_and_pretty() {
        let doc = Json::obj(vec![
            ("name", Json::Str("demo \"x\"\n".to_string())),
            ("n", Json::Int(-3)),
            ("xs", Json::floats(&[0.5, 1.0, 1e-9])),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("nested", Json::obj(vec![("k", Json::Arr(vec![]))])),
        ]);
        // The encoding is the canonical form (whole floats like 1.0
        // render as "1" and legitimately re-parse as Int), so the
        // roundtrip invariant the wire protocol relies on is
        // encoded-string stability, not tree identity.
        let compact = doc.compact();
        assert_eq!(Json::parse(&compact).unwrap().compact(), compact);
        assert_eq!(Json::parse(&doc.pretty()).unwrap().compact(), compact);
        // Trees without whole floats do roundtrip exactly.
        let exact = Json::obj(vec![("a", Json::Int(1)), ("b", Json::Num(0.5))]);
        assert_eq!(Json::parse(&exact.compact()).unwrap(), exact);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"abc",
            "\"\\q\"",
            "\"\\ud800\"",
            "{\"a\":1}x",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn parse_caps_nesting_depth() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".to_string())
        );
    }

    #[test]
    fn parse_distinguishes_int_from_float() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        // Integers beyond i64 degrade to float rather than erroring.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Num(_)
        ));
    }
}
