//! Deterministic JSON writer for run results.
//!
//! The golden-file tests compare run output **byte for byte**, so the
//! writer is deliberately boring: object keys render in insertion
//! order, floats use Rust's shortest-roundtrip `Display` (identical on
//! every platform), non-finite floats become `null`, and indentation is
//! fixed at two spaces. No timestamps, no pointers, no map iteration
//! order — a run's JSON is a pure function of the spec.

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; never rendered with an exponent).
    Int(i64),
    /// A float; NaN and infinities render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object fields.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for float arrays.
    pub fn floats(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure_deterministically() {
        let doc = Json::obj(vec![
            ("name", Json::Str("demo".to_string())),
            ("n", Json::Int(3)),
            ("xs", Json::floats(&[0.5, 1.0])),
            ("empty", Json::Arr(vec![])),
            ("flag", Json::Bool(true)),
        ]);
        let expected = "{\n  \"name\": \"demo\",\n  \"n\": 3,\n  \"xs\": [\n    0.5,\n    1\n  ],\n  \"empty\": [],\n  \"flag\": true\n}\n";
        assert_eq!(doc.pretty(), expected);
        assert_eq!(doc.pretty(), doc.pretty());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(s.pretty(), "\"a\\\"b\\\\c\\nd\"\n");
    }
}
