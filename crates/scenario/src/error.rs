//! Error type shared by spec parsing, validation, and execution.

use std::fmt;

use gridmtd_core::MtdError;

use crate::toml::ParseError;

/// Anything that can go wrong between reading a spec file and writing
/// its results.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// TOML syntax error.
    Parse(ParseError),
    /// The TOML parsed but does not describe a valid scenario; `at` is
    /// the dotted key path (e.g. `sweep.deltas`) and `line` its source
    /// line when known.
    Spec {
        /// Dotted key path of the offending key or table.
        at: String,
        /// Source line, when the key exists (0 when absent).
        line: usize,
        /// What is wrong and what would be accepted.
        message: String,
    },
    /// The scenario is valid but the underlying model failed to run it.
    Model(MtdError),
    /// Filesystem failure (CLI only; carries the rendered io error).
    Io(String),
}

impl ScenarioError {
    /// Builds a spec-level error for a key path with a known line.
    pub fn spec(at: impl Into<String>, line: usize, message: impl Into<String>) -> ScenarioError {
        ScenarioError::Spec {
            at: at.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "TOML syntax error: {e}"),
            ScenarioError::Spec { at, line, message } => {
                if *line > 0 {
                    write!(f, "invalid scenario: `{at}` (line {line}): {message}")
                } else {
                    write!(f, "invalid scenario: `{at}`: {message}")
                }
            }
            ScenarioError::Model(e) => write!(f, "scenario failed to run: {e}"),
            ScenarioError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Parse(e) => Some(e),
            ScenarioError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ScenarioError {
    fn from(e: ParseError) -> ScenarioError {
        ScenarioError::Parse(e)
    }
}

impl From<MtdError> for ScenarioError {
    fn from(e: MtdError) -> ScenarioError {
        ScenarioError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_path_and_line() {
        let e = ScenarioError::spec("sweep.deltas", 17, "must be an array of numbers");
        let s = e.to_string();
        assert!(s.contains("sweep.deltas"), "{s}");
        assert!(s.contains("line 17"), "{s}");
    }

    #[test]
    fn display_without_line() {
        let e = ScenarioError::spec("sweep", 0, "missing required table");
        let s = e.to_string();
        assert!(!s.contains("line"), "{s}");
    }
}
