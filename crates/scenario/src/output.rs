//! Filesystem side of a run: loading spec files and writing run
//! directories.

use std::fs;
use std::path::{Path, PathBuf};

use crate::engine::{run_spec_with_threads, RunArtifacts};
use crate::error::ScenarioError;
use crate::spec::{parse_spec, ScenarioSpec};

/// Reads and validates a spec file.
///
/// # Errors
///
/// [`ScenarioError::Io`] if the file cannot be read, otherwise whatever
/// [`parse_spec`] reports.
pub fn load_spec(path: &Path) -> Result<ScenarioSpec, ScenarioError> {
    let input = fs::read_to_string(path)
        .map_err(|e| ScenarioError::Io(format!("cannot read {}: {e}", path.display())))?;
    parse_spec(&input)
}

/// Runs a spec file end to end and writes its run directory; returns
/// the spec, the artifacts, and the directory written.
///
/// # Errors
///
/// Propagates load, run, and write failures.
pub fn run_file(
    spec_path: &Path,
    out_root: &Path,
) -> Result<(ScenarioSpec, RunArtifacts, PathBuf), ScenarioError> {
    run_file_with(spec_path, out_root, None)
}

/// [`run_file`] with an explicit worker-thread cap, handed through the
/// engine to the underlying `MtdSession` (the `gridmtd run --threads`
/// knob). Artifacts are bit-identical for any worker count.
///
/// # Errors
///
/// See [`run_file`].
pub fn run_file_with(
    spec_path: &Path,
    out_root: &Path,
    threads: Option<usize>,
) -> Result<(ScenarioSpec, RunArtifacts, PathBuf), ScenarioError> {
    let spec = load_spec(spec_path)?;
    let artifacts = run_spec_with_threads(&spec, threads)?;
    let dir = write_run_dir(&spec, &artifacts, out_root)?;
    Ok((spec, artifacts, dir))
}

/// Writes `result.json`, `result.csv`, and the canonical `spec.toml`
/// echo under `<out_root>/<scenario name>/`, creating directories as
/// needed (an existing run of the same scenario is overwritten — runs
/// are deterministic, so the bytes only change when the spec does).
///
/// # Errors
///
/// [`ScenarioError::Io`] on filesystem failures.
pub fn write_run_dir(
    spec: &ScenarioSpec,
    artifacts: &RunArtifacts,
    out_root: &Path,
) -> Result<PathBuf, ScenarioError> {
    let dir = out_root.join(&spec.name);
    fs::create_dir_all(&dir)
        .map_err(|e| ScenarioError::Io(format!("cannot create {}: {e}", dir.display())))?;
    for (file, contents) in [
        ("result.json", artifacts.json.as_str()),
        ("result.csv", artifacts.csv.as_str()),
        ("spec.toml", &spec.to_toml()),
    ] {
        let path = dir.join(file);
        fs::write(&path, contents)
            .map_err(|e| ScenarioError::Io(format!("cannot write {}: {e}", path.display())))?;
    }
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_spec_reports_missing_file() {
        let err = load_spec(Path::new("/nonexistent/spec.toml")).unwrap_err();
        assert!(matches!(err, ScenarioError::Io(_)));
        assert!(err.to_string().contains("/nonexistent/spec.toml"), "{err}");
    }
}
