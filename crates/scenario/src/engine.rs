//! Compiles a [`ScenarioSpec`] into a session-routed sweep plan and
//! executes it.
//!
//! Every spec builds one [`MtdSession`] (the stateful handle owning the
//! warm caches of the whole pipeline) and expresses its sweep as typed
//! [`Request`]s; [`MtdSession::run_batch`] fans them across the worker
//! threads. Execution is deterministic end to end: every
//! Monte-Carlo stream is seeded from the spec, batch responses land in
//! request order for any worker count, and session-routed results are
//! bit-identical to the historical free-function pipeline — so the JSON
//! and CSV artifacts remain a pure function of the spec, pinned byte
//! for byte by the golden-file tests.

use gridmtd_core::session::batch::{Request, Response};
use gridmtd_core::{
    HourOutcome, LearningOptions, MtdSession, RandomTrial, TimelineOptions, TradeoffCurve,
};
use gridmtd_powergrid::{cases, Network};
use gridmtd_stats::empirical::{summarize, Summary};
use gridmtd_traces::LoadTrace;

use crate::error::ScenarioError;
use crate::json::Json;
use crate::spec::{
    CaseId, GridSpec, KeyspaceSweep, LearningSweep, LoadSpec, ScenarioSpec, SweepSpec,
    TimelineSweep, TradeoffSweep, XPrePolicy,
};

/// Everything a run produces, in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifacts {
    /// Structured results (deterministic; golden-tested).
    pub json: String,
    /// Flat per-point rows for plotting.
    pub csv: String,
    /// Short human-readable lines for the CLI.
    pub summary: Vec<String>,
}

/// Builds the network a spec asks for (at nominal loads).
pub fn build_network(grid: &GridSpec) -> Network {
    match grid.case {
        CaseId::Case4 => cases::case4(),
        CaseId::Case14 => cases::case14(),
        CaseId::Case30 => cases::case30(),
        CaseId::Case57 => cases::case57(),
        CaseId::Case118 => cases::case118(),
        CaseId::Case300 => cases::case300(),
        CaseId::Synthetic { buses, seed } => {
            let config = cases::SyntheticConfig {
                n_buses: buses,
                ..cases::SyntheticConfig::default()
            };
            cases::synthetic(&config, seed)
        }
    }
}

/// Runs a validated spec to completion.
///
/// # Errors
///
/// [`ScenarioError::Model`] when the underlying OPF/selection/estimation
/// pipeline fails; spec-level problems were already caught at parse
/// time.
pub fn run_spec(spec: &ScenarioSpec) -> Result<RunArtifacts, ScenarioError> {
    run_spec_with_threads(spec, None)
}

/// [`run_spec`] with an explicit worker-thread cap, handed to the
/// underlying [`MtdSession`] (`gridmtd run --threads` plumbs through
/// here). Results are bit-identical for any worker count.
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_spec_with_threads(
    spec: &ScenarioSpec,
    threads: Option<usize>,
) -> Result<RunArtifacts, ScenarioError> {
    let base = build_network(&spec.grid);
    match &spec.sweep {
        SweepSpec::Tradeoff(sweep) => run_tradeoff(spec, &base, sweep, threads),
        SweepSpec::Keyspace(sweep) => run_keyspace(spec, &base, sweep, threads),
        SweepSpec::Timeline(sweep) => run_timeline(spec, &base, sweep, threads),
        SweepSpec::Learning(sweep) => run_learning(spec, &base, sweep, threads),
    }
}

/// Builds the spec's session: the network at its in-effect loads and
/// the pre-perturbation reactances (the attacker's knowledge), with the
/// spec configuration validated at the session boundary.
fn build_session(
    spec: &ScenarioSpec,
    base: &Network,
    threads: Option<usize>,
) -> Result<MtdSession, ScenarioError> {
    let with_common = |builder: gridmtd_core::MtdSessionBuilder| match threads {
        Some(n) => builder.threads(n),
        None => builder,
    };
    let policy = |builder: gridmtd_core::MtdSessionBuilder| match spec.grid.x_pre {
        XPrePolicy::Nominal => builder,
        XPrePolicy::Spread => builder.spread_x_pre(),
    };
    let session = |net: Network| {
        with_common(policy(MtdSession::builder(net).config(spec.config.clone()))).build()
    };
    match &spec.grid.load {
        LoadSpec::Nominal => Ok(session(base.clone())?),
        LoadSpec::Scaled(s) => Ok(session(base.scale_loads(*s))?),
        LoadSpec::TraceHour {
            trace,
            hour,
            attacker_hour,
        } => {
            let tr = gridmtd_traces::by_name(trace).expect("trace validated at parse time");
            let total = base.total_load();
            let net_now = base.scale_loads(tr.scaling_factor(*hour, total));
            match attacker_hour {
                // The attacker's knowledge is the baseline-OPF reactance
                // setting of the staler hour (the paper's Fig. 9 setup):
                // a sibling session at that hour's loads computes it.
                Some(ah) => {
                    let net_attacker = base.scale_loads(tr.scaling_factor(*ah, total));
                    let x_pre = session(net_attacker)?.baseline()?.x.clone();
                    Ok(with_common(
                        MtdSession::builder(net_now)
                            .config(spec.config.clone())
                            .x_pre(x_pre),
                    )
                    .build()?)
                }
                None => Ok(session(net_now)?),
            }
        }
    }
}

/// Unwraps one batch response into the expected variant (any other
/// variant is an engine-internal invariant violation — the engine built
/// the request, so it knows the shape of the answer).
macro_rules! expect_response {
    ($variant:ident, $response:expr) => {
        match $response? {
            Response::$variant(inner) => inner,
            other => unreachable!(
                concat!(stringify!($variant), " request produced {:?}"),
                other
            ),
        }
    };
}

fn run_tradeoff(
    spec: &ScenarioSpec,
    base: &Network,
    sweep: &TradeoffSweep,
    threads: Option<usize>,
) -> Result<RunArtifacts, ScenarioError> {
    let session = build_session(spec, base, threads)?;
    let net = session.network().clone();

    // The variant axes (seed × attack magnitude): each variant is a full
    // threshold sweep, expressed as one typed batch request. Variants
    // fan out in axis order; the sweep inside each variant fans out
    // again over thresholds (nested fan-outs are allowed and still
    // deterministic).
    let variants: Vec<(u64, f64)> = sweep
        .seeds
        .iter()
        .flat_map(|&s| sweep.attack_ratios.iter().map(move |&r| (s, r)))
        .collect();
    let requests: Vec<Request> = variants
        .iter()
        .map(|&(seed, ratio)| Request::Tradeoff {
            gamma_thresholds: sweep.gamma_thresholds.clone(),
            deltas: sweep.deltas.clone(),
            seed: Some(seed),
            attack_ratio: Some(ratio),
        })
        .collect();
    let curves: Vec<Result<TradeoffCurve, ScenarioError>> = session
        .run_batch(&requests)
        .into_iter()
        .map(|response| Ok(expect_response!(Tradeoff, response)))
        .collect();

    let mut variant_blocks = Vec::new();
    let mut csv =
        String::from("seed,attack_ratio,gamma_threshold,gamma_achieved,cost_increase_percent");
    for d in &sweep.deltas {
        csv.push_str(&format!(",eta_{d}"));
    }
    csv.push('\n');
    let mut summary = Vec::new();

    for (&(seed, ratio), curve) in variants.iter().zip(curves) {
        let curve = curve?;
        let costs: Vec<f64> = curve
            .points
            .iter()
            .map(|p| p.cost_increase_percent)
            .collect();
        let gammas: Vec<f64> = curve.points.iter().map(|p| p.gamma_achieved).collect();
        let points: Vec<Json> = curve
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("gamma_threshold", Json::Num(p.gamma_threshold)),
                    ("gamma_achieved", Json::Num(p.gamma_achieved)),
                    ("cost_increase_percent", Json::Num(p.cost_increase_percent)),
                    ("eta", eta_json(&p.effectiveness)),
                ])
            })
            .collect();
        for p in &curve.points {
            csv.push_str(&format!(
                "{seed},{ratio},{},{},{}",
                p.gamma_threshold, p.gamma_achieved, p.cost_increase_percent
            ));
            for &(_, e) in &p.effectiveness {
                csv.push_str(&format!(",{e}"));
            }
            csv.push('\n');
        }
        summary.push(format!(
            "seed {seed}, attack ratio {ratio}: {} points, gamma ceiling {:.3} rad, cost {}%",
            curve.points.len(),
            curve.gamma_ceiling,
            range_str(&costs),
        ));
        variant_blocks.push(Json::obj(vec![
            ("seed", Json::Int(seed as i64)),
            ("attack_ratio", Json::Num(ratio)),
            ("baseline_cost", Json::Num(curve.baseline_cost)),
            ("gamma_ceiling", Json::Num(curve.gamma_ceiling)),
            ("points", Json::Arr(points)),
            ("cost_increase_summary", summary_json(&summarize(&costs))),
            ("gamma_achieved_summary", summary_json(&summarize(&gammas))),
        ]));
    }

    let results = Json::obj(vec![
        ("gamma_thresholds", Json::floats(&sweep.gamma_thresholds)),
        ("deltas", Json::floats(&sweep.deltas)),
        ("variants", Json::Arr(variant_blocks)),
    ]);
    Ok(RunArtifacts {
        json: document(spec, &net, results),
        csv,
        summary,
    })
}

fn run_keyspace(
    spec: &ScenarioSpec,
    base: &Network,
    sweep: &KeyspaceSweep,
    threads: Option<usize>,
) -> Result<RunArtifacts, ScenarioError> {
    let session = build_session(spec, base, threads)?;
    let net = session.network().clone();

    // One study per seed, each a typed batch request on a derived
    // session (own ensemble, shared topology caches).
    let requests: Vec<Request> = sweep
        .seeds
        .iter()
        .map(|&seed| Request::Keyspace {
            fraction: sweep.fraction,
            n_trials: sweep.n_trials,
            deltas: sweep.deltas.clone(),
            seed: Some(seed),
        })
        .collect();
    let studies = session.run_batch(&requests);

    let mut variant_blocks = Vec::new();
    let mut csv = String::from("seed,trial,gamma");
    for d in &sweep.deltas {
        csv.push_str(&format!(",eta_{d}"));
    }
    csv.push('\n');
    let mut summary = Vec::new();

    for (&seed, study) in sweep.seeds.iter().zip(studies) {
        let trials: Vec<RandomTrial> = expect_response!(Keyspace, study);
        let gammas: Vec<f64> = trials.iter().map(|t| t.gamma).collect();
        let trial_blocks: Vec<Json> = trials
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("trial", Json::Int(t.trial as i64)),
                    ("gamma", Json::Num(t.gamma)),
                    ("eta", eta_json(&t.effectiveness)),
                ])
            })
            .collect();
        for t in &trials {
            csv.push_str(&format!("{seed},{},{}", t.trial, t.gamma));
            for &(_, e) in &t.effectiveness {
                csv.push_str(&format!(",{e}"));
            }
            csv.push('\n');
        }
        // Per-δ effectiveness across trials: the spread is the point of
        // the study (Figs. 7–8 show random MTD cannot guarantee it).
        let eta_summaries: Vec<(String, Json)> = sweep
            .deltas
            .iter()
            .map(|&d| {
                let etas: Vec<f64> = trials.iter().filter_map(|t| t.eta(d)).collect();
                (format!("{d}"), summary_json(&summarize(&etas)))
            })
            .collect();
        summary.push(format!(
            "seed {seed}: {} trials, gamma {}",
            trials.len(),
            range_str(&gammas),
        ));
        variant_blocks.push(Json::obj(vec![
            ("seed", Json::Int(seed as i64)),
            ("trials", Json::Arr(trial_blocks)),
            ("gamma_summary", summary_json(&summarize(&gammas))),
            ("eta_summary", Json::Obj(eta_summaries)),
        ]));
    }

    let results = Json::obj(vec![
        ("fraction", Json::Num(sweep.fraction)),
        ("n_trials", Json::Int(sweep.n_trials as i64)),
        ("deltas", Json::floats(&sweep.deltas)),
        ("variants", Json::Arr(variant_blocks)),
    ]);
    Ok(RunArtifacts {
        json: document(spec, &net, results),
        csv,
        summary,
    })
}

fn run_timeline(
    spec: &ScenarioSpec,
    base: &Network,
    sweep: &TimelineSweep,
    threads: Option<usize>,
) -> Result<RunArtifacts, ScenarioError> {
    let full = gridmtd_traces::by_name(&sweep.trace).expect("trace validated at parse time");
    let trace = match sweep.hours {
        Some(h) => LoadTrace::new(full.hourly()[..h].to_vec()),
        None => full,
    };
    let opts = TimelineOptions {
        target_delta: sweep.target_delta,
        target_eta: sweep.target_eta,
        gamma_grid: sweep.gamma_grid.clone(),
    };
    // The timeline runs on the base (unscaled) network — the trace
    // itself rescales the loads hour by hour.
    let session = {
        let builder = MtdSession::builder(base.clone()).config(spec.config.clone());
        match threads {
            Some(n) => builder.threads(n),
            None => builder,
        }
        .build()?
    };
    let response = session.run_request(&Request::Timeline {
        hours: trace.hourly().to_vec(),
        options: opts.clone(),
    });
    let outcomes: Vec<HourOutcome> = expect_response!(Timeline, response);

    let costs: Vec<f64> = outcomes.iter().map(|o| o.cost_increase_percent).collect();
    let met = outcomes.iter().filter(|o| o.target_met).count();
    let hour_blocks: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            Json::obj(vec![
                ("hour", Json::Int(o.hour as i64)),
                ("total_load_mw", Json::Num(o.total_load_mw)),
                ("cost_no_mtd", Json::Num(o.cost_no_mtd)),
                ("cost_with_mtd", Json::Num(o.cost_with_mtd)),
                ("cost_increase_percent", Json::Num(o.cost_increase_percent)),
                ("gamma_drift", Json::Num(o.gamma_drift)),
                ("gamma_defense", Json::Num(o.gamma_defense)),
                ("gamma_current", Json::Num(o.gamma_current)),
                ("gamma_threshold", Json::Num(o.gamma_threshold)),
                ("effectiveness", Json::Num(o.effectiveness)),
                ("target_met", Json::Bool(o.target_met)),
            ])
        })
        .collect();

    let mut csv = String::from(
        "hour,total_load_mw,cost_no_mtd,cost_with_mtd,cost_increase_percent,\
         gamma_drift,gamma_defense,gamma_current,gamma_threshold,effectiveness,target_met\n",
    );
    for o in &outcomes {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            o.hour,
            o.total_load_mw,
            o.cost_no_mtd,
            o.cost_with_mtd,
            o.cost_increase_percent,
            o.gamma_drift,
            o.gamma_defense,
            o.gamma_current,
            o.gamma_threshold,
            o.effectiveness,
            o.target_met
        ));
    }

    let results = Json::obj(vec![
        ("trace", Json::Str(sweep.trace.clone())),
        ("hours", Json::Int(outcomes.len() as i64)),
        ("target_delta", Json::Num(sweep.target_delta)),
        ("target_eta", Json::Num(sweep.target_eta)),
        ("gamma_grid", Json::floats(&sweep.gamma_grid)),
        ("outcomes", Json::Arr(hour_blocks)),
        ("cost_increase_summary", summary_json(&summarize(&costs))),
        ("hours_target_met", Json::Int(met as i64)),
    ]);
    let summary = vec![format!(
        "{} hours simulated, target met {met}/{}; cost increase mean {:.2}%",
        outcomes.len(),
        outcomes.len(),
        summarize(&costs).mean
    )];
    Ok(RunArtifacts {
        json: document(spec, base, results),
        csv,
        summary,
    })
}

fn run_learning(
    spec: &ScenarioSpec,
    base: &Network,
    sweep: &LearningSweep,
    threads: Option<usize>,
) -> Result<RunArtifacts, ScenarioError> {
    let session = build_session(spec, base, threads)?;
    let net = session.network().clone();

    let opts = LearningOptions {
        sample_counts: sweep.sample_counts.clone(),
        n_probe_attacks: sweep.n_probe_attacks,
        subspace_dim: sweep.subspace_dim,
        load_jitter: sweep.load_jitter,
        target_delta: sweep.target_delta,
    };
    let response = session.run_request(&Request::Learning {
        gamma_threshold: sweep.gamma_threshold,
        options: opts,
    });
    let flow: gridmtd_core::LearningOutcome = expect_response!(Learning, response);
    let (gamma_achieved, cost_increase, points) =
        (flow.gamma_achieved, flow.cost_increase_percent, flow.points);

    let detections: Vec<f64> = points.iter().map(|p| p.mean_detection).collect();
    let point_blocks: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("n_samples", Json::Int(p.n_samples as i64)),
                ("mean_detection", Json::Num(p.mean_detection)),
                ("stealthy_fraction", Json::Num(p.stealthy_fraction)),
            ])
        })
        .collect();

    let mut csv = String::from("n_samples,mean_detection,stealthy_fraction\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{},{}\n",
            p.n_samples, p.mean_detection, p.stealthy_fraction
        ));
    }

    let results = Json::obj(vec![
        (
            "gamma_threshold",
            sweep.gamma_threshold.map_or(Json::Null, Json::Num),
        ),
        ("gamma_achieved", Json::Num(gamma_achieved)),
        ("cost_increase_percent", Json::Num(cost_increase)),
        ("n_probe_attacks", Json::Int(sweep.n_probe_attacks as i64)),
        ("load_jitter", Json::Num(sweep.load_jitter)),
        ("target_delta", Json::Num(sweep.target_delta)),
        ("points", Json::Arr(point_blocks)),
        (
            "mean_detection_summary",
            summary_json(&summarize(&detections)),
        ),
    ]);
    let summary = vec![format!(
        "attacker relearning over {} checkpoints: mean detection {:.3} -> {:.3}",
        points.len(),
        points.first().map_or(0.0, |p| p.mean_detection),
        points.last().map_or(0.0, |p| p.mean_detection),
    )];
    Ok(RunArtifacts {
        json: document(spec, &net, results),
        csv,
        summary,
    })
}

/// Assembles the full result document around a kind-specific `results`
/// block.
fn document(spec: &ScenarioSpec, net: &Network, results: Json) -> String {
    let scenario = Json::obj(vec![
        ("name", Json::Str(spec.name.clone())),
        ("kind", Json::Str(spec.sweep.kind().to_string())),
        ("description", Json::Str(spec.description.clone())),
    ]);
    let mut grid_fields = vec![
        ("case", Json::Str(spec.grid.case.name())),
        ("n_buses", Json::Int(net.n_buses() as i64)),
        ("n_branches", Json::Int(net.n_branches() as i64)),
        ("n_dfacts", Json::Int(net.dfacts_branches().len() as i64)),
        ("total_load_mw", Json::Num(net.total_load())),
        (
            "x_pre",
            Json::Str(
                match spec.grid.x_pre {
                    XPrePolicy::Nominal => "nominal",
                    XPrePolicy::Spread => "spread",
                }
                .to_string(),
            ),
        ),
    ];
    match &spec.grid.load {
        LoadSpec::Nominal => {}
        LoadSpec::Scaled(s) => grid_fields.push(("load_scale", Json::Num(*s))),
        LoadSpec::TraceHour {
            trace,
            hour,
            attacker_hour,
        } => {
            grid_fields.push(("trace", Json::Str(trace.clone())));
            grid_fields.push(("hour", Json::Int(*hour as i64)));
            if let Some(ah) = attacker_hour {
                grid_fields.push(("attacker_hour", Json::Int(*ah as i64)));
            }
        }
    }
    let c = &spec.config;
    let config = Json::obj(vec![
        ("alpha", Json::Num(c.alpha)),
        ("noise_sigma_mw", Json::Num(c.noise_sigma_mw)),
        ("attack_ratio", Json::Num(c.attack_ratio)),
        ("n_attacks", Json::Int(c.n_attacks as i64)),
        ("eta_max", Json::Num(c.eta_max)),
        ("seed", Json::Int(c.seed as i64)),
        ("n_starts", Json::Int(c.n_starts as i64)),
        (
            "max_evals_per_start",
            Json::Int(c.max_evals_per_start as i64),
        ),
        (
            "selection_method",
            Json::Str(c.selection_method.as_str().to_string()),
        ),
        ("pwl_segments", Json::Int(c.opf.pwl_segments as i64)),
    ]);
    Json::obj(vec![
        (
            "schema",
            Json::Str("gridmtd.scenario.result/v1".to_string()),
        ),
        ("scenario", scenario),
        ("grid", Json::obj(grid_fields)),
        ("config", config),
        ("results", results),
    ])
    .pretty()
}

fn eta_json(pairs: &[(f64, f64)]) -> Json {
    Json::Obj(
        pairs
            .iter()
            .map(|&(d, e)| (format!("{d}"), Json::Num(e)))
            .collect(),
    )
}

/// `min..max` of a sample to 3 decimals, or a note when it is empty
/// (e.g. every swept threshold sat above the achievable γ ceiling).
fn range_str(xs: &[f64]) -> String {
    let s = summarize(xs);
    if s.n == 0 {
        "n/a (no points)".to_string()
    } else {
        format!("{:.3}..{:.3}", s.min, s.max)
    }
}

fn summary_json(s: &Summary) -> Json {
    Json::obj(vec![
        ("n", Json::Int(s.n as i64)),
        ("min", Json::Num(s.min)),
        ("max", Json::Num(s.max)),
        ("mean", Json::Num(s.mean)),
        ("std_dev", Json::Num(s.std_dev)),
        ("median", Json::Num(s.median)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    fn tiny_tradeoff_spec() -> ScenarioSpec {
        parse_spec(
            r#"
[scenario]
name = "tiny"
kind = "tradeoff"
description = "engine unit test"

[grid]
case = "case4"

[config]
n_attacks = 40
n_starts = 1
max_evals_per_start = 60

[sweep]
gamma_thresholds = [0.02, 0.05]
deltas = [0.5, 0.9]
"#,
        )
        .unwrap()
    }

    #[test]
    fn tradeoff_run_is_deterministic_and_structured() {
        let spec = tiny_tradeoff_spec();
        let a = run_spec(&spec).unwrap();
        let b = run_spec(&spec).unwrap();
        assert_eq!(a, b, "same spec must produce identical artifacts");
        assert!(a
            .json
            .contains("\"schema\": \"gridmtd.scenario.result/v1\""));
        assert!(a.json.contains("\"kind\": \"tradeoff\""));
        assert!(a.json.contains("\"gamma_ceiling\""));
        let lines: Vec<&str> = a.csv.lines().collect();
        assert_eq!(
            lines[0],
            "seed,attack_ratio,gamma_threshold,gamma_achieved,cost_increase_percent,eta_0.5,eta_0.9"
        );
        assert!(lines.len() >= 2, "csv should carry the sweep points");
    }

    #[test]
    fn learning_run_reports_decay_points() {
        let spec = parse_spec(
            r#"
[scenario]
name = "learn"
kind = "learning"

[grid]
case = "case4"

[config]
n_attacks = 20
n_starts = 1
max_evals_per_start = 40

[sweep]
sample_counts = [8, 64]
n_probe_attacks = 10
"#,
        )
        .unwrap();
        let run = run_spec(&spec).unwrap();
        assert!(run.json.contains("\"gamma_threshold\": null"));
        assert!(run.json.contains("\"n_samples\": 64"));
        assert_eq!(run.csv.lines().count(), 3);
    }

    #[test]
    fn keyspace_run_covers_all_seeds() {
        let spec = parse_spec(
            r#"
[scenario]
name = "keys"
kind = "keyspace"

[grid]
case = "case4"

[config]
n_attacks = 30

[sweep]
fraction = 0.05
n_trials = 4
deltas = [0.9]
seeds = [1, 2]
"#,
        )
        .unwrap();
        let run = run_spec(&spec).unwrap();
        // 2 seeds x 4 trials + header.
        assert_eq!(run.csv.lines().count(), 9);
        assert!(run.json.contains("\"eta_summary\""));
    }
}
