//! # gridmtd-scenario — declarative MTD cost-benefit experiments
//!
//! The paper's contribution is a *methodology*: sweep the MTD
//! perturbation magnitude γ, the attack model, and the reconfiguration
//! timeline, and find the operating point where defense benefit
//! justifies OPF cost. This crate makes those sweeps declarative: a
//! TOML spec names a grid case, an attack model, and sweep axes; the
//! engine compiles it into a plan and executes it through the
//! workspace's parallel, warm-started OPF machinery; results come back
//! as deterministic JSON and CSV. The `gridmtd` CLI binary
//! (`gridmtd run <spec.toml>`) is a thin wrapper around [`run_file`].
//!
//! The checked-in `scenarios/` library maps one spec to each paper
//! figure/table (see `docs/REPRODUCING.md`); writing a new experiment
//! is writing a TOML file, not Rust.
//!
//! ```
//! let spec = gridmtd_scenario::parse_spec(r#"
//! [scenario]
//! name = "quick"
//! kind = "tradeoff"
//!
//! [grid]
//! case = "case4"
//!
//! [config]
//! n_attacks = 30
//! n_starts = 1
//! max_evals_per_start = 40
//!
//! [sweep]
//! gamma_thresholds = [0.02]
//! deltas = [0.9]
//! "#).unwrap();
//! let run = gridmtd_scenario::run_spec(&spec).unwrap();
//! assert!(run.json.contains("\"kind\": \"tradeoff\""));
//! ```
//!
//! Determinism contract: a run's JSON/CSV artifacts are a pure function
//! of the spec — every RNG stream is seeded from it, the parallel
//! fan-outs preserve axis order for any worker count, and the JSON
//! writer has no nondeterministic inputs (no timestamps, no map
//! ordering). The golden-file tests pin this byte for byte.

pub mod engine;
pub mod error;
pub mod json;
mod output;
pub mod spec;
pub mod toml;

pub use engine::{build_network, run_spec, run_spec_with_threads, RunArtifacts};
pub use error::ScenarioError;
pub use output::{load_spec, run_file, run_file_with, write_run_dir};
pub use spec::{parse_spec, CaseId, GridSpec, LoadSpec, ScenarioSpec, SweepSpec, XPrePolicy};
