//! Minimal TOML reader for scenario specs.
//!
//! The build environment has no registry access, so instead of the real
//! `toml` crate this module implements the subset the scenario format
//! uses — which is documented, validated, and all a spec ever needs:
//!
//! * `# comments` (full-line and trailing) and blank lines;
//! * `[table]` / `[table.subtable]` headers;
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`);
//! * values: basic `"strings"` (with `\"`, `\\`, `\n`, `\t` escapes),
//!   integers, floats, booleans, and single-line arrays of scalars.
//!
//! Every parsed value carries its source line so the spec layer can
//! report semantic errors (“`sweep.deltas` must be an array of numbers,
//! line 17”) as precisely as syntax errors.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML scalar or array.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` entry with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The parsed value.
    pub value: Value,
    /// 1-based line number of the assignment.
    pub line: usize,
}

/// A (sub)table: entries plus nested tables, each with source lines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Scalar/array entries, by key.
    pub entries: BTreeMap<String, Entry>,
    /// Nested tables, by key, with the line of their `[header]`.
    pub subtables: BTreeMap<String, (Table, usize)>,
}

impl Table {
    /// Looks up an entry.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.get(key)
    }

    /// Looks up a nested table.
    pub fn table(&self, key: &str) -> Option<&Table> {
        self.subtables.get(key).map(|(t, _)| t)
    }
}

/// A TOML syntax error with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong, with a hint where possible.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a TOML document into its root table.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse(input: &str) -> Result<Table, ParseError> {
    let mut root = Table::default();
    let mut current_path: Vec<String> = Vec::new();
    // Paths that appeared as explicit `[header]`s; redefining one is an
    // error (like real TOML), while implicitly-created parents (e.g.
    // `[a.b]` creating `a`) may still be opened later.
    let mut declared: std::collections::BTreeSet<Vec<String>> = std::collections::BTreeSet::new();
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line, line_no)?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let inner = rest.strip_suffix(']').ok_or_else(|| ParseError {
                line: line_no,
                message: "table header is missing its closing ']'".to_string(),
            })?;
            let path = parse_table_path(inner, line_no)?;
            if !declared.insert(path.clone()) {
                return Err(ParseError {
                    line: line_no,
                    message: format!("table [{}] is defined twice", path.join(".")),
                });
            }
            ensure_table(&mut root, &path, line_no)?;
            current_path = path;
        } else {
            let (key, value) = parse_assignment(line, line_no)?;
            let table = navigate(&mut root, &current_path);
            if table.entries.contains_key(&key) || table.subtables.contains_key(&key) {
                return Err(ParseError {
                    line: line_no,
                    message: format!("duplicate key `{key}`"),
                });
            }
            table.entries.insert(
                key,
                Entry {
                    value,
                    line: line_no,
                },
            );
        }
    }
    Ok(root)
}

/// Removes a trailing `#` comment, respecting string literals.
fn strip_comment(line: &str, line_no: usize) -> Result<String, ParseError> {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_string = !in_string;
                out.push(c);
            }
            '\\' if in_string => {
                out.push(c);
                match chars.next() {
                    Some(next) => out.push(next),
                    None => {
                        return Err(ParseError {
                            line: line_no,
                            message: "string ends in a bare backslash".to_string(),
                        })
                    }
                }
            }
            '#' if !in_string => break,
            _ => out.push(c),
        }
    }
    if in_string {
        return Err(ParseError {
            line: line_no,
            message: "unterminated string".to_string(),
        });
    }
    Ok(out)
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_table_path(inner: &str, line_no: usize) -> Result<Vec<String>, ParseError> {
    let mut path = Vec::new();
    for part in inner.split('.') {
        let part = part.trim();
        if !is_bare_key(part) {
            return Err(ParseError {
                line: line_no,
                message: format!(
                    "invalid table name `{part}` (bare keys use letters, digits, `_`, `-`)"
                ),
            });
        }
        path.push(part.to_string());
    }
    Ok(path)
}

fn ensure_table(root: &mut Table, path: &[String], line_no: usize) -> Result<(), ParseError> {
    let mut table = root;
    for key in path {
        if table.entries.contains_key(key) {
            return Err(ParseError {
                line: line_no,
                message: format!("`{key}` is already a value, cannot reopen it as a table"),
            });
        }
        table = &mut table
            .subtables
            .entry(key.clone())
            .or_insert_with(|| (Table::default(), line_no))
            .0;
    }
    Ok(())
}

fn navigate<'a>(root: &'a mut Table, path: &[String]) -> &'a mut Table {
    let mut table = root;
    for key in path {
        table = &mut table
            .subtables
            .get_mut(key)
            .expect("ensure_table created the path")
            .0;
    }
    table
}

fn parse_assignment(line: &str, line_no: usize) -> Result<(String, Value), ParseError> {
    let eq = line.find('=').ok_or_else(|| ParseError {
        line: line_no,
        message: format!("expected `key = value` or `[table]`, found `{line}`"),
    })?;
    let key = line[..eq].trim();
    if !is_bare_key(key) {
        return Err(ParseError {
            line: line_no,
            message: format!("invalid key `{key}` (bare keys use letters, digits, `_`, `-`)"),
        });
    }
    let value_src = line[eq + 1..].trim();
    if value_src.is_empty() {
        return Err(ParseError {
            line: line_no,
            message: format!("key `{key}` has no value"),
        });
    }
    let value = parse_value(value_src, line_no)?;
    Ok((key.to_string(), value))
}

fn parse_value(src: &str, line_no: usize) -> Result<Value, ParseError> {
    if let Some(rest) = src.strip_prefix('"') {
        return parse_string(rest, line_no);
    }
    if let Some(inner) = src.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| ParseError {
            line: line_no,
            message: "array is missing its closing `]` (arrays must fit on one line)".to_string(),
        })?;
        let mut items = Vec::new();
        for piece in split_array_items(inner, line_no)? {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let item = parse_value(piece, line_no)?;
            if matches!(item, Value::Array(_)) {
                return Err(ParseError {
                    line: line_no,
                    message: "nested arrays are not supported in scenario specs".to_string(),
                });
            }
            items.push(item);
        }
        return Ok(Value::Array(items));
    }
    match src {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = src.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    // TOML spells floats with `_` separators too; the scenario subset
    // accepts plain Rust float syntax (covers 1.5, 5e-4, -0.3).
    if let Ok(f) = src.parse::<f64>() {
        if f.is_finite() {
            return Ok(Value::Float(f));
        }
    }
    Err(ParseError {
        line: line_no,
        message: format!(
            "cannot parse `{src}` as a string, number, boolean, or array \
             (strings need double quotes)"
        ),
    })
}

/// Parses a basic string body (after the opening quote), requiring the
/// closing quote to end the value.
fn parse_string(rest: &str, line_no: usize) -> Result<Value, ParseError> {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let tail: String = chars.collect();
                if !tail.trim().is_empty() {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("unexpected trailing characters after string: `{tail}`"),
                    });
                }
                return Ok(Value::Str(out));
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("unsupported escape `\\{other}`"),
                    })
                }
                None => {
                    return Err(ParseError {
                        line: line_no,
                        message: "string ends in a bare backslash".to_string(),
                    })
                }
            },
            _ => out.push(c),
        }
    }
    Err(ParseError {
        line: line_no,
        message: "unterminated string".to_string(),
    })
}

/// Splits array contents on commas, respecting string literals.
fn split_array_items(inner: &str, line_no: usize) -> Result<Vec<String>, ParseError> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            '\\' if in_string => {
                current.push(c);
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            ',' if !in_string => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if in_string {
        return Err(ParseError {
            line: line_no,
            message: "unterminated string inside array".to_string(),
        });
    }
    items.push(current);
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_scalars_and_arrays() {
        let doc = r#"
# a scenario
[scenario]
name = "demo"   # trailing comment
enabled = true
count = 42
ratio = 8e-2

[sweep]
deltas = [0.5, 0.9]
labels = ["a", "b,c"]

[sweep.gamma_thresholds]
start = 0.05
stop = 0.4
steps = 8
"#;
        let root = parse(doc).unwrap();
        let scenario = root.table("scenario").unwrap();
        assert_eq!(
            scenario.get("name").unwrap().value,
            Value::Str("demo".to_string())
        );
        assert_eq!(scenario.get("enabled").unwrap().value, Value::Bool(true));
        assert_eq!(scenario.get("count").unwrap().value, Value::Int(42));
        assert_eq!(scenario.get("ratio").unwrap().value, Value::Float(8e-2));
        let sweep = root.table("sweep").unwrap();
        assert_eq!(
            sweep.get("deltas").unwrap().value,
            Value::Array(vec![Value::Float(0.5), Value::Float(0.9)])
        );
        assert_eq!(
            sweep.get("labels").unwrap().value,
            Value::Array(vec![
                Value::Str("a".to_string()),
                Value::Str("b,c".to_string())
            ])
        );
        let grid = sweep.table("gamma_thresholds").unwrap();
        assert_eq!(grid.get("steps").unwrap().value, Value::Int(8));
        assert_eq!(grid.get("steps").unwrap().line, 16);
    }

    #[test]
    fn string_escapes() {
        let root = parse(r#"s = "a \"quoted\" \\ tab\t""#).unwrap();
        assert_eq!(
            root.get("s").unwrap().value,
            Value::Str("a \"quoted\" \\ tab\t".to_string())
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let root = parse(r##"s = "has # hash""##).unwrap();
        assert_eq!(
            root.get("s").unwrap().value,
            Value::Str("has # hash".to_string())
        );
    }

    #[test]
    fn error_lines_are_reported() {
        let err = parse("ok = 1\nbad").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("key = value"), "{}", err.message);

        let err = parse("x = ").unwrap_err();
        assert!(err.message.contains("no value"), "{}", err.message);

        let err = parse("[unclosed\n").unwrap_err();
        assert!(err.message.contains("closing ']'"), "{}", err.message);

        let err = parse("x = \"unterminated").unwrap_err();
        assert!(err.message.contains("unterminated"), "{}", err.message);

        let err = parse("x = nope").unwrap_err();
        assert!(err.message.contains("cannot parse"), "{}", err.message);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse("a = 1\na = 2").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate"), "{}", err.message);
    }

    #[test]
    fn nested_arrays_are_rejected() {
        let err = parse("a = [[1], [2]]").unwrap_err();
        assert!(err.message.contains("nested arrays"), "{}", err.message);
    }

    #[test]
    fn negative_and_integer_values() {
        let root = parse("a = -3\nb = -0.25").unwrap();
        assert_eq!(root.get("a").unwrap().value, Value::Int(-3));
        assert_eq!(root.get("b").unwrap().value, Value::Float(-0.25));
    }

    #[test]
    fn reopening_a_value_as_table_fails() {
        let err = parse("a = 1\n[a]\nb = 2").unwrap_err();
        assert!(err.message.contains("already a value"), "{}", err.message);
    }

    #[test]
    fn duplicate_table_headers_are_rejected() {
        let err = parse("[config]\na = 1\n[config]\nb = 2").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("defined twice"), "{}", err.message);
        // An implicitly-created parent may still be opened explicitly.
        let root = parse("[a.b]\nx = 1\n[a]\ny = 2").unwrap();
        assert!(root.table("a").unwrap().get("y").is_some());
    }
}
