//! Golden-file tests for the scenario engine.
//!
//! Three layers:
//!
//! 1. **Round-trip**: every checked-in `scenarios/*.toml` parses, and
//!    its canonical re-rendering parses back to an equal spec.
//! 2. **End-to-end goldens**: pinned-seed runs of the smoke and Fig. 9
//!    specs whose JSON/CSV artifacts must match `tests/golden/` **byte
//!    for byte** — the determinism contract of the whole engine stack
//!    (spec → sweep plan → parallel warm-started execution → writer).
//!    Regenerate after an intentional change with
//!    `GRIDMTD_REGEN_GOLDEN=1 cargo test -p gridmtd-scenario --test golden`.
//! 3. **Malformed specs**: error messages carry the dotted key path and
//!    source line, so a typo fails loudly and legibly.

use std::fs;
use std::path::{Path, PathBuf};

use gridmtd_scenario::{parse_spec, run_spec, ScenarioError};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/scenario sits two levels below the repo root")
        .to_path_buf()
}

fn scenario_files() -> Vec<PathBuf> {
    let dir = repo_root().join("scenarios");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("scenarios/ directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 6,
        "the scenario library should stay stocked: found {}",
        files.len()
    );
    files
}

#[test]
fn every_checked_in_scenario_parses_and_round_trips() {
    for path in scenario_files() {
        let input = fs::read_to_string(&path).unwrap();
        let spec =
            parse_spec(&input).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy();
        assert_eq!(
            spec.name,
            stem,
            "{}: scenario name must match the file stem",
            path.display()
        );
        assert!(
            !spec.description.is_empty(),
            "{}: description required for `gridmtd list`",
            path.display()
        );
        let reparsed = parse_spec(&spec.to_toml())
            .unwrap_or_else(|e| panic!("{} canonical form does not parse: {e}", path.display()));
        assert_eq!(
            spec,
            reparsed,
            "{}: round-trip must preserve the spec",
            path.display()
        );
    }
}

#[test]
fn reproducing_doc_covers_every_checked_in_scenario() {
    let doc = fs::read_to_string(repo_root().join("docs/REPRODUCING.md"))
        .expect("docs/REPRODUCING.md exists");
    for path in scenario_files() {
        let file = path.file_name().unwrap().to_string_lossy();
        assert!(
            doc.contains(file.as_ref()),
            "docs/REPRODUCING.md does not mention {file}; every checked-in \
             scenario needs a row in its figure map"
        );
    }
}

#[test]
fn scenario_library_covers_a_synthetic_scaling_rung() {
    use gridmtd_scenario::CaseId;
    let has_big_case = scenario_files().iter().any(|p| {
        let spec = parse_spec(&fs::read_to_string(p).unwrap()).unwrap();
        matches!(
            spec.grid.case,
            CaseId::Case57 | CaseId::Case118 | CaseId::Synthetic { .. }
        )
    });
    assert!(
        has_big_case,
        "keep at least one case57/case118 scenario checked in"
    );
}

/// Compares `actual` against the golden file, or rewrites the golden
/// when `GRIDMTD_REGEN_GOLDEN` is set.
fn check_golden(file: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file);
    if std::env::var("GRIDMTD_REGEN_GOLDEN").is_ok() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; generate with GRIDMTD_REGEN_GOLDEN=1",
            path.display()
        )
    });
    if expected != actual {
        let diff_line = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map_or(expected.lines().count().min(actual.lines().count()), |i| i);
        panic!(
            "{} drifted from its golden at line {} —\n  expected: {:?}\n  actual:   {:?}\n\
             if the change is intentional, regenerate with GRIDMTD_REGEN_GOLDEN=1",
            file,
            diff_line + 1,
            expected.lines().nth(diff_line).unwrap_or("<eof>"),
            actual.lines().nth(diff_line).unwrap_or("<eof>"),
        );
    }
}

fn run_checked_in(name: &str) -> gridmtd_scenario::RunArtifacts {
    let path = repo_root().join("scenarios").join(name);
    let spec = parse_spec(&fs::read_to_string(&path).unwrap()).unwrap();
    run_spec(&spec).unwrap()
}

#[test]
fn smoke_case4_json_and_csv_are_byte_stable() {
    let run = run_checked_in("smoke_case4.toml");
    check_golden("smoke_case4.json", &run.json);
    check_golden("smoke_case4.csv", &run.csv);
}

#[test]
fn tradeoff_case14_json_is_byte_stable() {
    // The Fig. 9 spec end to end under its pinned seed: dynamic-load
    // world building (6 PM system, 5 PM attacker knowledge), the
    // parallel threshold sweep, warm-started selection, and the
    // deterministic writer.
    let run = run_checked_in("tradeoff_case14.toml");
    check_golden("tradeoff_case14.json", &run.json);
    check_golden("tradeoff_case14.csv", &run.csv);
}

#[test]
fn malformed_specs_fail_with_path_and_line() {
    // A typo'd key is rejected, naming the key and its line.
    let err = parse_spec(
        "[scenario]\nname = \"x\"\nkind = \"tradeoff\"\n\n[grid]\ncase = \"case4\"\n\
         \n[sweep]\ngamma_thresholds = [0.1]\ndeltas = [0.5]\nn_atacks = 10\n",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("sweep.n_atacks"), "{msg}");
    assert!(msg.contains("line 11"), "{msg}");
    assert!(msg.contains("unknown key"), "{msg}");

    // TOML syntax errors carry the line too.
    let err = parse_spec("[scenario\nname = \"x\"\n").unwrap_err();
    assert!(matches!(err, ScenarioError::Parse(_)));
    let msg = err.to_string();
    assert!(msg.contains("line 1"), "{msg}");
    assert!(msg.contains("closing ']'"), "{msg}");

    // Type errors name what was expected and what was found.
    let err = parse_spec(
        "[scenario]\nname = \"x\"\nkind = \"keyspace\"\n\n[grid]\ncase = \"case4\"\n\
         \n[sweep]\nfraction = \"lots\"\nn_trials = 3\ndeltas = [0.5]\n",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("sweep.fraction"), "{msg}");
    assert!(msg.contains("expected a number, got a string"), "{msg}");

    // Semantic validation: a descending axis is called out.
    let err = parse_spec(
        "[scenario]\nname = \"x\"\nkind = \"tradeoff\"\n\n[grid]\ncase = \"case4\"\n\
         \n[sweep]\ngamma_thresholds = [0.3, 0.1]\ndeltas = [0.5]\n",
    )
    .unwrap_err();
    assert!(err.to_string().contains("strictly ascending"), "{}", err);
}

#[test]
fn unknown_case_lists_the_valid_ones() {
    let err = parse_spec(
        "[scenario]\nname = \"x\"\nkind = \"tradeoff\"\n\n[grid]\ncase = \"case9000\"\n\
         \n[sweep]\ngamma_thresholds = [0.1]\ndeltas = [0.5]\n",
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("case9000"), "{msg}");
    assert!(msg.contains("case118"), "{msg}");
}
