//! Process-wide build counters for the expensive model matrices.
//!
//! The hot loops of the MTD analysis are supposed to *reuse* matrix
//! structure (cached measurement matrices, the sparse power-flow
//! context's symbolic factorization) rather than rebuild it. These
//! counters make that property testable: a regression test can take a
//! snapshot, run a pipeline, and assert an upper bound on the number of
//! rebuilds — catching accidental per-iteration reconstruction long
//! before it shows up in a wall-clock benchmark.
//!
//! Counters are monotone, process-global and use relaxed atomics: they
//! order nothing and cost a handful of nanoseconds per build. Tests that
//! assert on deltas should run in their own integration-test binary so
//! concurrently running tests cannot inflate the count.

use std::sync::atomic::{AtomicU64, Ordering};

static MEASUREMENT_MATRIX_BUILDS: AtomicU64 = AtomicU64::new(0);
static SUSCEPTANCE_BUILDS: AtomicU64 = AtomicU64::new(0);
static PF_SYMBOLIC_ANALYSES: AtomicU64 = AtomicU64::new(0);

/// Number of dense measurement-matrix (`H`) constructions so far.
pub fn measurement_matrix_builds() -> u64 {
    MEASUREMENT_MATRIX_BUILDS.load(Ordering::Relaxed)
}

/// Number of full susceptance-matrix (`B`) constructions so far
/// (the dense `b_matrix` / `b_reduced` path).
pub fn susceptance_builds() -> u64 {
    SUSCEPTANCE_BUILDS.load(Ordering::Relaxed)
}

/// Number of sparse power-flow symbolic factorizations (fill-reducing
/// ordering + elimination-tree analysis of `B̃`) so far. The symbolic
/// phase depends only on the grid topology, so warm paths — a primed
/// [`crate::dcpf::PfContext`] and its clones — must not re-run it for an
/// unchanged topology.
pub fn pf_symbolic_analyses() -> u64 {
    PF_SYMBOLIC_ANALYSES.load(Ordering::Relaxed)
}

pub(crate) fn count_measurement_matrix_build() {
    MEASUREMENT_MATRIX_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_susceptance_build() {
    SUSCEPTANCE_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_pf_symbolic_analysis() {
    PF_SYMBOLIC_ANALYSES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone() {
        let before = measurement_matrix_builds();
        count_measurement_matrix_build();
        count_susceptance_build();
        assert!(measurement_matrix_builds() > before);
        assert!(susceptance_builds() >= 1);
    }
}
