//! Power-network substrate for the `gridmtd` workspace.
//!
//! Implements the DC power-flow model of Section III of Lakshminarayana &
//! Yau (DSN 2018): buses, branches (with optional D-FACTS devices),
//! generators, the branch–bus incidence matrix `A`, nodal susceptance
//! matrix `B = A D Aᵀ`, the measurement matrix
//! `H = [D Aᵀ; −D Aᵀ; A D Aᵀ]` and a DC power-flow solver.
//!
//! The [`cases`] module carries the benchmark systems used in the paper
//! (the 4-bus example of Fig. 3, IEEE 14-bus with the Table IV generator
//! set, IEEE 30-bus) plus a synthetic-grid generator for scaling studies.
//!
//! # Example
//!
//! ```
//! use gridmtd_powergrid::{cases, dcpf};
//!
//! # fn main() -> Result<(), gridmtd_powergrid::GridError> {
//! let net = cases::case4();
//! let x = net.nominal_reactances();
//! // Dispatch of Table II: (350, 150) MW.
//! let pf = dcpf::solve_dispatch(&net, &x, &[350.0, 150.0])?;
//! assert!((pf.flows[0] - 126.56).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

pub mod cases;
pub mod dcpf;
mod error;
pub mod measurement;
mod network;
pub mod stats;
mod types;

pub use dcpf::{PfBackend, PfContext, PowerFlow};
pub use error::GridError;
pub use measurement::MeasurementLayout;
pub use network::Network;
pub use types::{Branch, Bus, GenCost, Generator};
