//! DC power-flow solver.
//!
//! Solves `B̃ θ̃ = p̃` (slack row/column removed), then recovers branch
//! flows `f_l = b_l (θ_i − θ_j)` and the slack injection from flow
//! balance. This is the power-flow model of Section III of the paper.

use gridmtd_linalg::Lu;

use crate::{GridError, Network};

/// Result of a DC power-flow solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerFlow {
    /// Voltage phase angles, radians; `theta[slack] == 0`.
    pub theta: Vec<f64>,
    /// Branch flows in MW, positive in the branch's `from → to` direction.
    pub flows: Vec<f64>,
    /// Realized nodal net injections in MW (the slack entry absorbs the
    /// system imbalance of the requested injections).
    pub injections: Vec<f64>,
}

impl PowerFlow {
    /// Measurement vector `z = [f; −f; p]` corresponding to this solution
    /// (noiseless).
    pub fn measurement_vector(&self) -> Vec<f64> {
        let mut z = Vec::with_capacity(2 * self.flows.len() + self.injections.len());
        z.extend_from_slice(&self.flows);
        z.extend(self.flows.iter().map(|f| -f));
        z.extend_from_slice(&self.injections);
        z
    }
}

/// Solves the DC power flow for the given reactances and requested nodal
/// injections.
///
/// The slack entry of `injections` is ignored: the slack bus balances the
/// system, and its realized injection is returned in
/// [`PowerFlow::injections`].
///
/// # Errors
///
/// * [`GridError::DimensionMismatch`] if `injections.len() != n_buses`.
/// * Reactance validation errors (see [`Network::check_reactances`]).
/// * [`GridError::Numerical`] if the reduced susceptance matrix is
///   singular (cannot happen for validated, connected networks).
pub fn solve_dc(net: &Network, x: &[f64], injections: &[f64]) -> Result<PowerFlow, GridError> {
    let n = net.n_buses();
    if injections.len() != n {
        return Err(GridError::DimensionMismatch {
            what: "injections",
            expected: n,
            actual: injections.len(),
        });
    }
    let b_red = net.b_reduced(x)?;
    let slack = net.slack();
    let p_red: Vec<f64> = injections
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| (i != slack).then_some(p))
        .collect();
    let theta_red = Lu::factor(&b_red)?.solve(&p_red)?;

    let mut theta = Vec::with_capacity(n);
    let mut it = theta_red.iter();
    for i in 0..n {
        if i == slack {
            theta.push(0.0);
        } else {
            theta.push(*it.next().expect("reduced state has n-1 entries"));
        }
    }

    let b = net.susceptances(x)?;
    let flows: Vec<f64> = net
        .branches()
        .iter()
        .enumerate()
        .map(|(l, br)| b[l] * (theta[br.from] - theta[br.to]))
        .collect();

    // Realized injections from flow conservation (slack absorbs imbalance).
    let mut realized = vec![0.0; n];
    for (l, br) in net.branches().iter().enumerate() {
        realized[br.from] += flows[l];
        realized[br.to] -= flows[l];
    }

    Ok(PowerFlow {
        theta,
        flows,
        injections: realized,
    })
}

/// Solves the DC power flow for a generator dispatch (MW per generator)
/// against the network's loads.
///
/// # Errors
///
/// See [`solve_dc`] and [`Network::injections`].
pub fn solve_dispatch(net: &Network, x: &[f64], dispatch: &[f64]) -> Result<PowerFlow, GridError> {
    let p = net.injections(dispatch)?;
    solve_dc(net, x, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cases, Branch, Bus, Generator};

    #[test]
    fn two_bus_line_flow() {
        let net = crate::Network::new(
            "two",
            vec![Bus::unloaded(), Bus::with_load(100.0)],
            vec![Branch::new(0, 1, 0.1, 500.0)],
            vec![Generator::linear(0, 200.0, 10.0)],
            0,
        )
        .unwrap();
        let pf = solve_dispatch(&net, &net.nominal_reactances(), &[100.0]).unwrap();
        assert!((pf.flows[0] - 100.0).abs() < 1e-9);
        assert!((pf.injections[0] - 100.0).abs() < 1e-9);
        assert!((pf.injections[1] + 100.0).abs() < 1e-9);
        assert_eq!(pf.theta[0], 0.0);
        // f = b * (θ0 - θ1) with b = 100/0.1 = 1000 MW/rad → θ1 = -0.1 rad
        assert!((pf.theta[1] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn flow_conservation_at_every_bus() {
        let net = cases::case14();
        let x = net.nominal_reactances();
        // arbitrary feasible dispatch: slack picks up the rest
        let dispatch = vec![100.0, 50.0, 30.0, 40.0, 20.0];
        let pf = solve_dispatch(&net, &x, &dispatch).unwrap();
        let loads = net.loads();
        // At non-slack buses the realized injection equals requested.
        let p_req = net.injections(&dispatch).unwrap();
        for (i, (&realized, &requested)) in pf.injections.iter().zip(p_req.iter()).enumerate() {
            if i != net.slack() {
                assert!(
                    (realized - requested).abs() < 1e-6,
                    "bus {i}: {realized} vs {requested}"
                );
            }
        }
        // Slack absorbs total imbalance: Σ injections = 0.
        let total: f64 = pf.injections.iter().sum();
        assert!(total.abs() < 1e-6);
        // Sanity: total realized generation equals total load.
        let gen_total: f64 = pf
            .injections
            .iter()
            .zip(loads.iter())
            .map(|(p, l)| p + l)
            .sum();
        assert!((gen_total - net.total_load()).abs() < 1e-6);
    }

    #[test]
    fn paper_4bus_table2_flows() {
        // Table II of the paper: flows 126.56 / 173.44 / −43.44 / −26.56 MW
        // at dispatch (350, 150).
        let net = cases::case4();
        let pf = solve_dispatch(&net, &net.nominal_reactances(), &[350.0, 150.0]).unwrap();
        let expected = [126.56, 173.44, -43.44, -26.56];
        for (l, &e) in expected.iter().enumerate() {
            assert!(
                (pf.flows[l] - e).abs() < 0.01,
                "line {l}: {} vs {e}",
                pf.flows[l]
            );
        }
    }

    #[test]
    fn measurement_vector_is_consistent_with_h() {
        // z = H θ̃ exactly (noiseless DC model).
        let net = cases::case14();
        let x = net.nominal_reactances();
        let dispatch = vec![120.0, 40.0, 30.0, 45.0, 20.0];
        let pf = solve_dispatch(&net, &x, &dispatch).unwrap();
        let z = pf.measurement_vector();
        let h = net.measurement_matrix(&x).unwrap();
        let theta_red: Vec<f64> = pf
            .theta
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (i != net.slack()).then_some(t))
            .collect();
        let z_model = h.matvec(&theta_red).unwrap();
        for (a, b) in z.iter().zip(z_model.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn injection_length_is_validated() {
        let net = cases::case4();
        assert!(solve_dc(&net, &net.nominal_reactances(), &[0.0; 3]).is_err());
    }

    #[test]
    fn perturbing_reactance_changes_flows_not_balance() {
        let net = cases::case4();
        let mut x = net.nominal_reactances();
        x[0] *= 0.8;
        let pf = solve_dispatch(&net, &x, &[350.0, 150.0]).unwrap();
        // Different flows than Table II...
        assert!((pf.flows[0] - 126.56).abs() > 0.5);
        // ...but conservation still holds.
        let total: f64 = pf.injections.iter().sum();
        assert!(total.abs() < 1e-6);
    }
}
