//! DC power-flow solver.
//!
//! Solves `B̃ θ̃ = p̃` (slack row/column removed), then recovers branch
//! flows `f_l = b_l (θ_i − θ_j)` and the slack injection from flow
//! balance. This is the power-flow model of Section III of the paper.
//!
//! # Backends
//!
//! Two interchangeable linear-algebra backends solve `B̃ θ̃ = p̃`:
//!
//! * **dense** — the original LU path, used below
//!   [`SPARSE_MIN_BUSES`] where a dense factor is cheapest (and byte
//!   stable with the historical results);
//! * **sparse** — CSC `B̃` + sparse Cholesky with a split
//!   symbolic/numeric factorization. A reusable [`PfContext`] caches the
//!   symbolic analysis (elimination tree, fill-reducing ordering,
//!   pattern of `L`) *per topology*; each MTD reactance perturbation
//!   only rewrites matrix values in place and re-runs the numeric phase
//!   plus two sparse triangular solves.
//!
//! [`solve_dc`] / [`solve_dispatch`] pick the backend automatically with
//! a fresh context; hot loops (OPF objective evaluations, Monte-Carlo
//! trials, timeline hours) should hold one [`PfContext`] per thread and
//! call [`solve_dc_with`] / [`solve_dispatch_with`] so the symbolic work
//! is amortized across the whole loop.

use std::sync::Arc;

use gridmtd_linalg::sparse::{SparseCholesky, SparseMatrix, SymbolicCholesky};
use gridmtd_linalg::Lu;

use crate::{stats, GridError, Network};

/// Bus-count crossover between the dense and sparse backends.
///
/// Below this size the dense LU on the (tiny) reduced susceptance
/// matrix wins on constant factors — and keeps the paper-scale cases
/// (4–30 buses) byte-identical with the historical dense results. The
/// synthetic scaling cases (57+ buses) take the sparse path.
pub const SPARSE_MIN_BUSES: usize = 48;

/// Result of a DC power-flow solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerFlow {
    /// Voltage phase angles, radians; `theta[slack] == 0`.
    pub theta: Vec<f64>,
    /// Branch flows in MW, positive in the branch's `from → to` direction.
    pub flows: Vec<f64>,
    /// Realized nodal net injections in MW (the slack entry absorbs the
    /// system imbalance of the requested injections).
    pub injections: Vec<f64>,
}

impl PowerFlow {
    /// Measurement vector `z = [f; −f; p]` corresponding to this solution
    /// (noiseless).
    pub fn measurement_vector(&self) -> Vec<f64> {
        let mut z = Vec::with_capacity(2 * self.flows.len() + self.injections.len());
        z.extend_from_slice(&self.flows);
        z.extend(self.flows.iter().map(|f| -f));
        z.extend_from_slice(&self.injections);
        z
    }
}

/// Solves the DC power flow for the given reactances and requested nodal
/// injections.
///
/// The slack entry of `injections` is ignored: the slack bus balances the
/// system, and its realized injection is returned in
/// [`PowerFlow::injections`].
///
/// # Errors
///
/// * [`GridError::DimensionMismatch`] if `injections.len() != n_buses`.
/// * Reactance validation errors (see [`Network::check_reactances`]).
/// * [`GridError::Numerical`] if the reduced susceptance matrix is
///   singular (cannot happen for validated, connected networks).
pub fn solve_dc(net: &Network, x: &[f64], injections: &[f64]) -> Result<PowerFlow, GridError> {
    solve_dc_with(net, x, injections, &mut PfContext::new())
}

/// Solves the DC power flow for a generator dispatch (MW per generator)
/// against the network's loads.
///
/// # Errors
///
/// See [`solve_dc`] and [`Network::injections`].
pub fn solve_dispatch(net: &Network, x: &[f64], dispatch: &[f64]) -> Result<PowerFlow, GridError> {
    let p = net.injections(dispatch)?;
    solve_dc(net, x, &p)
}

/// [`solve_dispatch`] with a reusable [`PfContext`].
///
/// # Errors
///
/// See [`solve_dc`] and [`Network::injections`].
pub fn solve_dispatch_with(
    net: &Network,
    x: &[f64],
    dispatch: &[f64],
    ctx: &mut PfContext,
) -> Result<PowerFlow, GridError> {
    let p = net.injections(dispatch)?;
    solve_dc_with(net, x, &p, ctx)
}

/// Linear-algebra backend selection for the DC power flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PfBackend {
    /// Dense below [`SPARSE_MIN_BUSES`], sparse at or above it.
    #[default]
    Auto,
    /// Always the dense LU path (the historical implementation).
    Dense,
    /// Always the sparse symbolic/numeric path (used by the agreement
    /// property tests and the refactorization benches on small cases).
    Sparse,
}

/// Reusable DC power-flow state: the cached symbolic factorization and
/// workspaces of the sparse backend.
///
/// The expensive, topology-dependent work — fill-reducing ordering,
/// elimination tree, nonzero pattern of the Cholesky factor, branch →
/// matrix-slot scatter map — is done once on the first sparse solve and
/// reused for every later solve against the *same topology*, which is
/// exactly the MTD loop shape: reactance values drift, the grid graph
/// never changes. Feeding a context a different [`Network`] is always
/// correct (the cache is keyed on the topology and rebuilt on mismatch),
/// just not fast.
///
/// A context carries no results, only scratch state; it is deliberately
/// cheap to construct so per-thread contexts can be created in
/// fan-out loops (mirroring `OpfContext` in `gridmtd-opf`).
#[derive(Debug, Clone, Default)]
pub struct PfContext {
    backend: PfBackend,
    cache: Option<SparseCache>,
    /// Numeric-only refactorizations served by the cached symbolic
    /// analysis (diagnostics; mirrors `OpfContext::warm_solves`).
    refactors: u64,
}

/// Cached sparse state for one topology.
#[derive(Debug, Clone)]
struct SparseCache {
    /// Topology identity: bus count, slack, branch endpoints.
    n_buses: usize,
    slack: usize,
    endpoints: Vec<(usize, usize)>,
    /// CSC `B̃` whose values are rewritten in place per solve.
    b: SparseMatrix,
    /// Per branch: value-array slots `(ii, jj, ij, ji)` (`usize::MAX`
    /// for stamps that fall on the slack row/column).
    slots: Vec<[usize; 4]>,
    numeric: SparseCholesky,
}

/// Absent-slot sentinel in [`SparseCache::slots`].
const NO_SLOT: usize = usize::MAX;

impl PfContext {
    /// Creates a context with automatic backend selection.
    pub fn new() -> PfContext {
        PfContext::default()
    }

    /// Creates a context pinned to a specific backend (property tests
    /// and benches; production code should prefer [`PfContext::new`]).
    pub fn with_backend(backend: PfBackend) -> PfContext {
        PfContext {
            backend,
            ..PfContext::default()
        }
    }

    /// Number of solves that reused the cached symbolic factorization
    /// (numeric refactorization only).
    pub fn symbolic_reuses(&self) -> u64 {
        self.refactors
    }

    /// Whether `net` would take the sparse path under this context's
    /// backend policy.
    pub fn uses_sparse(&self, net: &Network) -> bool {
        match self.backend {
            PfBackend::Auto => net.n_buses() >= SPARSE_MIN_BUSES,
            PfBackend::Dense => false,
            PfBackend::Sparse => true,
        }
    }

    /// Builds the topology-keyed sparse cache up front (symbolic
    /// factorization, slot map, a first numeric factor at `x`) without
    /// running a solve. A primed context — and every *clone* of it — then
    /// serves numeric-only refactorizations for any reactance vector on
    /// the same topology. No-op on the dense path.
    ///
    /// This is the session-warmup hook: prime one context per topology,
    /// clone it into per-thread / per-start contexts, and the symbolic
    /// analysis runs exactly once per topology for the whole fan-out.
    ///
    /// # Errors
    ///
    /// Propagates reactance validation and factorization failures.
    pub fn prime(&mut self, net: &Network, x: &[f64]) -> Result<(), GridError> {
        if self.uses_sparse(net) {
            let b = net.susceptances(x)?;
            self.refactor(net, &b)?;
        }
        Ok(())
    }

    /// Ensures the cache matches `net`'s topology, rebuilding the
    /// symbolic factorization if needed, then rewrites the values for
    /// `suscept` and runs the numeric phase.
    fn refactor(&mut self, net: &Network, suscept: &[f64]) -> Result<&SparseCholesky, GridError> {
        let matches = self.cache.as_ref().is_some_and(|c| {
            c.n_buses == net.n_buses()
                && c.slack == net.slack()
                && c.endpoints.len() == net.n_branches()
                && c.endpoints
                    .iter()
                    .zip(net.branches())
                    .all(|(&(f, t), br)| f == br.from && t == br.to)
        });
        if !matches {
            self.cache = Some(SparseCache::build(net, suscept)?);
        } else {
            let cache = self.cache.as_mut().expect("cache checked above");
            let values = cache.b.values_mut();
            values.fill(0.0);
            for (l, slots) in cache.slots.iter().enumerate() {
                let bl = suscept[l];
                let [ii, jj, ij, ji] = *slots;
                if ii != NO_SLOT {
                    values[ii] += bl;
                }
                if jj != NO_SLOT {
                    values[jj] += bl;
                }
                if ij != NO_SLOT {
                    values[ij] -= bl;
                }
                if ji != NO_SLOT {
                    values[ji] -= bl;
                }
            }
            cache.numeric.refactor(&cache.b)?;
            self.refactors += 1;
        }
        Ok(&self.cache.as_ref().expect("cache populated above").numeric)
    }
}

impl SparseCache {
    fn build(net: &Network, suscept: &[f64]) -> Result<SparseCache, GridError> {
        // One source of truth for the stamping pattern: the slot map
        // below is derived from the very matrix `b_reduced_sparse_from`
        // assembles, so the two can never drift apart.
        let b = net.b_reduced_sparse_from(suscept)?;
        let slot = |i: Option<usize>, j: Option<usize>| match (i, j) {
            (Some(i), Some(j)) => b.position(i, j).expect("stamped entry is in the pattern"),
            _ => NO_SLOT,
        };
        let slots = net
            .branches()
            .iter()
            .map(|br| {
                let (ri, rj) = (net.reduced_index(br.from), net.reduced_index(br.to));
                [slot(ri, ri), slot(rj, rj), slot(ri, rj), slot(rj, ri)]
            })
            .collect();
        stats::count_pf_symbolic_analysis();
        let symbolic = Arc::new(SymbolicCholesky::analyze(&b)?);
        let numeric = SparseCholesky::factor(symbolic, &b)?;
        Ok(SparseCache {
            n_buses: net.n_buses(),
            slack: net.slack(),
            endpoints: net.branches().iter().map(|br| (br.from, br.to)).collect(),
            b,
            slots,
            numeric,
        })
    }
}

/// [`solve_dc`] with a reusable [`PfContext`]: on the sparse path, only
/// the numeric factorization phase and two triangular solves run per
/// call once the context has seen the topology.
///
/// # Errors
///
/// Same contract as [`solve_dc`].
pub fn solve_dc_with(
    net: &Network,
    x: &[f64],
    injections: &[f64],
    ctx: &mut PfContext,
) -> Result<PowerFlow, GridError> {
    let n = net.n_buses();
    if injections.len() != n {
        return Err(GridError::DimensionMismatch {
            what: "injections",
            expected: n,
            actual: injections.len(),
        });
    }
    let slack = net.slack();
    let p_red = |injections: &[f64]| -> Vec<f64> {
        injections
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (i != slack).then_some(p))
            .collect()
    };

    let (theta_red, b) = if ctx.uses_sparse(net) {
        let b = net.susceptances(x)?;
        let numeric = ctx.refactor(net, &b)?;
        (numeric.solve(&p_red(injections))?, b)
    } else {
        // The historical dense path, operation for operation (byte
        // stability for the paper-scale cases).
        let b_red = net.b_reduced(x)?;
        let theta_red = Lu::factor(&b_red)?.solve(&p_red(injections))?;
        (theta_red, net.susceptances(x)?)
    };

    let mut theta = Vec::with_capacity(n);
    let mut it = theta_red.iter();
    for i in 0..n {
        if i == slack {
            theta.push(0.0);
        } else {
            theta.push(*it.next().expect("reduced state has n-1 entries"));
        }
    }

    let flows: Vec<f64> = net
        .branches()
        .iter()
        .enumerate()
        .map(|(l, br)| b[l] * (theta[br.from] - theta[br.to]))
        .collect();

    // Realized injections from flow conservation (slack absorbs imbalance).
    let mut realized = vec![0.0; n];
    for (l, br) in net.branches().iter().enumerate() {
        realized[br.from] += flows[l];
        realized[br.to] -= flows[l];
    }

    Ok(PowerFlow {
        theta,
        flows,
        injections: realized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cases, Branch, Bus, Generator};

    #[test]
    fn two_bus_line_flow() {
        let net = crate::Network::new(
            "two",
            vec![Bus::unloaded(), Bus::with_load(100.0)],
            vec![Branch::new(0, 1, 0.1, 500.0)],
            vec![Generator::linear(0, 200.0, 10.0)],
            0,
        )
        .unwrap();
        let pf = solve_dispatch(&net, &net.nominal_reactances(), &[100.0]).unwrap();
        assert!((pf.flows[0] - 100.0).abs() < 1e-9);
        assert!((pf.injections[0] - 100.0).abs() < 1e-9);
        assert!((pf.injections[1] + 100.0).abs() < 1e-9);
        assert_eq!(pf.theta[0], 0.0);
        // f = b * (θ0 - θ1) with b = 100/0.1 = 1000 MW/rad → θ1 = -0.1 rad
        assert!((pf.theta[1] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn flow_conservation_at_every_bus() {
        let net = cases::case14();
        let x = net.nominal_reactances();
        // arbitrary feasible dispatch: slack picks up the rest
        let dispatch = vec![100.0, 50.0, 30.0, 40.0, 20.0];
        let pf = solve_dispatch(&net, &x, &dispatch).unwrap();
        let loads = net.loads();
        // At non-slack buses the realized injection equals requested.
        let p_req = net.injections(&dispatch).unwrap();
        for (i, (&realized, &requested)) in pf.injections.iter().zip(p_req.iter()).enumerate() {
            if i != net.slack() {
                assert!(
                    (realized - requested).abs() < 1e-6,
                    "bus {i}: {realized} vs {requested}"
                );
            }
        }
        // Slack absorbs total imbalance: Σ injections = 0.
        let total: f64 = pf.injections.iter().sum();
        assert!(total.abs() < 1e-6);
        // Sanity: total realized generation equals total load.
        let gen_total: f64 = pf
            .injections
            .iter()
            .zip(loads.iter())
            .map(|(p, l)| p + l)
            .sum();
        assert!((gen_total - net.total_load()).abs() < 1e-6);
    }

    #[test]
    fn paper_4bus_table2_flows() {
        // Table II of the paper: flows 126.56 / 173.44 / −43.44 / −26.56 MW
        // at dispatch (350, 150).
        let net = cases::case4();
        let pf = solve_dispatch(&net, &net.nominal_reactances(), &[350.0, 150.0]).unwrap();
        let expected = [126.56, 173.44, -43.44, -26.56];
        for (l, &e) in expected.iter().enumerate() {
            assert!(
                (pf.flows[l] - e).abs() < 0.01,
                "line {l}: {} vs {e}",
                pf.flows[l]
            );
        }
    }

    #[test]
    fn measurement_vector_is_consistent_with_h() {
        // z = H θ̃ exactly (noiseless DC model).
        let net = cases::case14();
        let x = net.nominal_reactances();
        let dispatch = vec![120.0, 40.0, 30.0, 45.0, 20.0];
        let pf = solve_dispatch(&net, &x, &dispatch).unwrap();
        let z = pf.measurement_vector();
        let h = net.measurement_matrix(&x).unwrap();
        let theta_red: Vec<f64> = pf
            .theta
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (i != net.slack()).then_some(t))
            .collect();
        let z_model = h.matvec(&theta_red).unwrap();
        for (a, b) in z.iter().zip(z_model.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn injection_length_is_validated() {
        let net = cases::case4();
        assert!(solve_dc(&net, &net.nominal_reactances(), &[0.0; 3]).is_err());
    }

    #[test]
    fn sparse_backend_agrees_with_dense_on_small_case() {
        let net = cases::case14();
        let x = net.nominal_reactances();
        let dispatch = [150.0, 40.0, 20.0, 30.0, 19.0];
        let dense = solve_dispatch(&net, &x, &dispatch).unwrap();
        let mut ctx = PfContext::with_backend(PfBackend::Sparse);
        let sparse = solve_dispatch_with(&net, &x, &dispatch, &mut ctx).unwrap();
        for (a, b) in dense.theta.iter().zip(sparse.theta.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        for (a, b) in dense.flows.iter().zip(sparse.flows.iter()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn context_reuses_symbolic_factorization_across_perturbations() {
        let net = cases::case14();
        let mut ctx = PfContext::with_backend(PfBackend::Sparse);
        let dispatch = [150.0, 40.0, 20.0, 30.0, 19.0];
        let mut x = net.nominal_reactances();
        for k in 0..5 {
            for l in net.dfacts_branches() {
                x[l] *= 1.0 + 0.01 * (k as f64 + 1.0);
            }
            let warm = solve_dispatch_with(&net, &x, &dispatch, &mut ctx).unwrap();
            // A cold context (fresh symbolic analysis) must match the
            // refactored path bit for bit: the numeric phase is
            // identical arithmetic either way.
            let cold = solve_dispatch_with(
                &net,
                &x,
                &dispatch,
                &mut PfContext::with_backend(PfBackend::Sparse),
            )
            .unwrap();
            assert_eq!(warm, cold);
        }
        assert_eq!(ctx.symbolic_reuses(), 4, "first solve analyzes, rest reuse");
    }

    #[test]
    fn context_rebuilds_on_topology_change() {
        let mut ctx = PfContext::with_backend(PfBackend::Sparse);
        let a = cases::case14();
        let b = cases::case30();
        solve_dispatch_with(
            &a,
            &a.nominal_reactances(),
            &[150.0, 40.0, 20.0, 30.0, 19.0],
            &mut ctx,
        )
        .unwrap();
        // Different topology: cache must be rebuilt, not reused.
        let pf = solve_dispatch_with(
            &b,
            &b.nominal_reactances(),
            &[60.0, 55.0, 25.0, 20.0, 15.0, 14.2],
            &mut ctx,
        )
        .unwrap();
        assert_eq!(ctx.symbolic_reuses(), 0);
        let direct = solve_dispatch(
            &b,
            &b.nominal_reactances(),
            &[60.0, 55.0, 25.0, 20.0, 15.0, 14.2],
        )
        .unwrap();
        for (x, y) in pf.theta.iter().zip(direct.theta.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn auto_backend_crossover_is_by_bus_count() {
        let ctx = PfContext::new();
        assert!(!ctx.uses_sparse(&cases::case30()));
        assert!(ctx.uses_sparse(&cases::case57()));
        assert!(!PfContext::with_backend(PfBackend::Dense).uses_sparse(&cases::case57()));
    }

    #[test]
    fn perturbing_reactance_changes_flows_not_balance() {
        let net = cases::case4();
        let mut x = net.nominal_reactances();
        x[0] *= 0.8;
        let pf = solve_dispatch(&net, &x, &[350.0, 150.0]).unwrap();
        // Different flows than Table II...
        assert!((pf.flows[0] - 126.56).abs() > 0.5);
        // ...but conservation still holds.
        let total: f64 = pf.injections.iter().sum();
        assert!(total.abs() < 1e-6);
    }
}
