//! Plain data types describing network components.

use serde::{Deserialize, Serialize};

/// A network bus (node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bus {
    /// Real-power load at this bus, MW.
    pub load_mw: f64,
}

impl Bus {
    /// Creates a bus with the given load.
    pub fn with_load(load_mw: f64) -> Bus {
        Bus { load_mw }
    }

    /// Creates a bus with no load.
    pub fn unloaded() -> Bus {
        Bus { load_mw: 0.0 }
    }
}

/// A transmission line (branch) between two buses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Branch {
    /// Index of the *from* bus (tail of the conventional flow direction).
    pub from: usize,
    /// Index of the *to* bus.
    pub to: usize,
    /// Nominal series reactance, per unit.
    pub reactance_pu: f64,
    /// Thermal flow limit, MW (applies to |flow|).
    pub flow_limit_mw: f64,
    /// Whether a D-FACTS device is installed on this line, i.e. whether its
    /// reactance can be actively perturbed for MTD.
    pub dfacts: bool,
}

impl Branch {
    /// Creates a branch without a D-FACTS device.
    pub fn new(from: usize, to: usize, reactance_pu: f64, flow_limit_mw: f64) -> Branch {
        Branch {
            from,
            to,
            reactance_pu,
            flow_limit_mw,
            dfacts: false,
        }
    }

    /// Marks the branch as D-FACTS equipped (builder style).
    pub fn with_dfacts(mut self) -> Branch {
        self.dfacts = true;
        self
    }
}

/// Generator cost model.
///
/// The paper's 14-bus study uses linear costs `C(G) = c·G` (Table IV);
/// MATPOWER's `case30` ships quadratic costs `C(G) = c₂G² + c₁G`. The OPF
/// crate linearizes quadratic costs into convex piecewise-linear segments
/// so both run through the same LP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GenCost {
    /// `C(G) = c * G`, `c` in $/MWh.
    Linear {
        /// Marginal cost, $/MWh.
        c: f64,
    },
    /// `C(G) = c2 * G² + c1 * G`, `c2` in $/MW²h, `c1` in $/MWh.
    Quadratic {
        /// Quadratic coefficient, $/MW²h.
        c2: f64,
        /// Linear coefficient, $/MWh.
        c1: f64,
    },
}

impl GenCost {
    /// Evaluates the cost of producing `g` MW for one hour.
    pub fn eval(&self, g: f64) -> f64 {
        match *self {
            GenCost::Linear { c } => c * g,
            GenCost::Quadratic { c2, c1 } => c2 * g * g + c1 * g,
        }
    }

    /// Marginal cost `dC/dG` at output `g`.
    pub fn marginal(&self, g: f64) -> f64 {
        match *self {
            GenCost::Linear { c } => c,
            GenCost::Quadratic { c2, c1 } => 2.0 * c2 * g + c1,
        }
    }
}

/// A dispatchable generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Generator {
    /// Bus the generator is connected to.
    pub bus: usize,
    /// Minimum output, MW.
    pub pmin_mw: f64,
    /// Maximum output, MW.
    pub pmax_mw: f64,
    /// Cost model.
    pub cost: GenCost,
}

impl Generator {
    /// Creates a generator with linear cost and `pmin = 0`.
    pub fn linear(bus: usize, pmax_mw: f64, cost_per_mwh: f64) -> Generator {
        Generator {
            bus,
            pmin_mw: 0.0,
            pmax_mw,
            cost: GenCost::Linear { c: cost_per_mwh },
        }
    }

    /// Creates a generator with quadratic cost and `pmin = 0`.
    pub fn quadratic(bus: usize, pmax_mw: f64, c2: f64, c1: f64) -> Generator {
        Generator {
            bus,
            pmin_mw: 0.0,
            pmax_mw,
            cost: GenCost::Quadratic { c2, c1 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cost_eval_and_marginal() {
        let c = GenCost::Linear { c: 20.0 };
        assert_eq!(c.eval(350.0), 7000.0);
        assert_eq!(c.marginal(123.0), 20.0);
    }

    #[test]
    fn quadratic_cost_eval_and_marginal() {
        let c = GenCost::Quadratic { c2: 0.02, c1: 2.0 };
        assert!((c.eval(10.0) - (0.02 * 100.0 + 20.0)).abs() < 1e-12);
        assert!((c.marginal(10.0) - (0.4 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn branch_builder_flags_dfacts() {
        let b = Branch::new(0, 1, 0.1, 60.0);
        assert!(!b.dfacts);
        assert!(b.with_dfacts().dfacts);
    }

    #[test]
    fn generator_constructors_default_pmin_zero() {
        let g = Generator::linear(3, 100.0, 25.0);
        assert_eq!(g.pmin_mw, 0.0);
        assert_eq!(g.bus, 3);
        let q = Generator::quadratic(1, 80.0, 0.02, 2.0);
        assert!(matches!(q.cost, GenCost::Quadratic { .. }));
    }
}
