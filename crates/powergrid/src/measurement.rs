//! Measurement vector layout.
//!
//! The SCADA measurement vector follows the paper's convention
//! `z = [f; −f; p]`: forward branch flows, reverse branch flows, then
//! nodal injections, for a total of `M = 2L + N` measurements. This module
//! names the index arithmetic so that attack construction and residual
//! analysis never hard-code offsets.

use serde::{Deserialize, Serialize};

use crate::Network;

/// Index map for the `z = [f; −f; p]` measurement stacking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementLayout {
    n_branches: usize,
    n_buses: usize,
}

impl MeasurementLayout {
    /// Layout for a given network.
    pub fn for_network(net: &Network) -> MeasurementLayout {
        MeasurementLayout {
            n_branches: net.n_branches(),
            n_buses: net.n_buses(),
        }
    }

    /// Layout from raw counts.
    pub fn new(n_branches: usize, n_buses: usize) -> MeasurementLayout {
        MeasurementLayout {
            n_branches,
            n_buses,
        }
    }

    /// Total measurement count `M = 2L + N`.
    pub fn len(&self) -> usize {
        2 * self.n_branches + self.n_buses
    }

    /// Returns `true` when the layout is empty (degenerate zero-size
    /// network).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the forward-flow measurement of branch `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn forward_flow(&self, l: usize) -> usize {
        assert!(l < self.n_branches, "branch {l} out of range");
        l
    }

    /// Index of the reverse-flow measurement of branch `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn reverse_flow(&self, l: usize) -> usize {
        assert!(l < self.n_branches, "branch {l} out of range");
        self.n_branches + l
    }

    /// Index of the injection measurement of bus `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn injection(&self, i: usize) -> usize {
        assert!(i < self.n_buses, "bus {i} out of range");
        2 * self.n_branches + i
    }

    /// Splits a measurement vector into `(forward flows, reverse flows,
    /// injections)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.len()`.
    pub fn split<'a>(&self, z: &'a [f64]) -> (&'a [f64], &'a [f64], &'a [f64]) {
        assert_eq!(z.len(), self.len(), "measurement vector length mismatch");
        let l = self.n_branches;
        (&z[..l], &z[l..2 * l], &z[2 * l..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    #[test]
    fn indices_partition_the_vector() {
        let net = cases::case14();
        let m = MeasurementLayout::for_network(&net);
        assert_eq!(m.len(), 54);
        assert!(!m.is_empty());
        assert_eq!(m.forward_flow(0), 0);
        assert_eq!(m.forward_flow(19), 19);
        assert_eq!(m.reverse_flow(0), 20);
        assert_eq!(m.injection(0), 40);
        assert_eq!(m.injection(13), 53);
    }

    #[test]
    fn split_returns_the_right_blocks() {
        let m = MeasurementLayout::new(2, 3);
        let z = [1.0, 2.0, -1.0, -2.0, 10.0, 20.0, 30.0];
        let (f, fr, p) = m.split(&z);
        assert_eq!(f, &[1.0, 2.0]);
        assert_eq!(fr, &[-1.0, -2.0]);
        assert_eq!(p, &[10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn forward_flow_bounds_checked() {
        MeasurementLayout::new(2, 3).forward_flow(2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn split_checks_length() {
        MeasurementLayout::new(2, 3).split(&[0.0; 5]);
    }
}
