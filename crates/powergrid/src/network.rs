//! The [`Network`] model: topology, matrices and the DC measurement model.

use gridmtd_linalg::sparse::SparseMatrix;
use gridmtd_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::{stats, Branch, Bus, Generator, GridError};

/// A validated power network under the DC power-flow model.
///
/// The network owns its *nominal* branch reactances; all matrix builders
/// take an explicit reactance vector so that MTD perturbations can be
/// evaluated without mutating the network. Flows are expressed in MW and
/// angles in radians; the susceptance of branch `l` is
/// `b_l = base_mva / x_l` (MW per radian).
///
/// # Example
///
/// ```
/// use gridmtd_powergrid::cases;
///
/// let net = cases::case14();
/// assert_eq!(net.n_buses(), 14);
/// assert_eq!(net.n_branches(), 20);
/// let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
/// // M = 2L + N rows, N − 1 state columns.
/// assert_eq!(h.shape(), (2 * 20 + 14, 13));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    base_mva: f64,
    buses: Vec<Bus>,
    branches: Vec<Branch>,
    gens: Vec<Generator>,
    slack: usize,
}

impl Network {
    /// Validates and constructs a network.
    ///
    /// # Errors
    ///
    /// * [`GridError::InvalidBusIndex`] if a branch, generator or the slack
    ///   references a nonexistent bus.
    /// * [`GridError::InvalidReactance`] for non-positive/non-finite branch
    ///   reactances.
    /// * [`GridError::Disconnected`] if the graph is not connected.
    /// * [`GridError::NoGenerators`] if no generator is present.
    pub fn new(
        name: impl Into<String>,
        buses: Vec<Bus>,
        branches: Vec<Branch>,
        gens: Vec<Generator>,
        slack: usize,
    ) -> Result<Network, GridError> {
        let n = buses.len();
        if slack >= n {
            return Err(GridError::InvalidBusIndex {
                bus: slack,
                n_buses: n,
            });
        }
        for (l, br) in branches.iter().enumerate() {
            if br.from >= n {
                return Err(GridError::InvalidBusIndex {
                    bus: br.from,
                    n_buses: n,
                });
            }
            if br.to >= n {
                return Err(GridError::InvalidBusIndex {
                    bus: br.to,
                    n_buses: n,
                });
            }
            if !(br.reactance_pu.is_finite() && br.reactance_pu > 0.0) {
                return Err(GridError::InvalidReactance {
                    branch: l,
                    value: br.reactance_pu,
                });
            }
        }
        if gens.is_empty() {
            return Err(GridError::NoGenerators);
        }
        for g in &gens {
            if g.bus >= n {
                return Err(GridError::InvalidBusIndex {
                    bus: g.bus,
                    n_buses: n,
                });
            }
        }
        let net = Network {
            name: name.into(),
            base_mva: 100.0,
            buses,
            branches,
            gens,
            slack,
        };
        if !net.is_connected() {
            return Err(GridError::Disconnected);
        }
        Ok(net)
    }

    /// Human-readable case name (e.g. `"ieee14"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// System MVA base (100 MVA, the MATPOWER convention).
    pub fn base_mva(&self) -> f64 {
        self.base_mva
    }

    /// Number of buses `N`.
    pub fn n_buses(&self) -> usize {
        self.buses.len()
    }

    /// Number of branches `L`.
    pub fn n_branches(&self) -> usize {
        self.branches.len()
    }

    /// Number of generators.
    pub fn n_gens(&self) -> usize {
        self.gens.len()
    }

    /// Number of measurements `M = 2L + N` (forward flows, reverse flows,
    /// injections).
    pub fn n_measurements(&self) -> usize {
        2 * self.n_branches() + self.n_buses()
    }

    /// State dimension `N − 1` (voltage phase angles, slack removed).
    pub fn n_states(&self) -> usize {
        self.n_buses() - 1
    }

    /// Index of the slack (reference) bus.
    pub fn slack(&self) -> usize {
        self.slack
    }

    /// Bus accessor.
    pub fn bus(&self, i: usize) -> &Bus {
        &self.buses[i]
    }

    /// Branch accessor.
    pub fn branch(&self, l: usize) -> &Branch {
        &self.branches[l]
    }

    /// Generator accessor.
    pub fn gen(&self, g: usize) -> &Generator {
        &self.gens[g]
    }

    /// All buses.
    pub fn buses(&self) -> &[Bus] {
        &self.buses
    }

    /// All branches.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// All generators.
    pub fn gens(&self) -> &[Generator] {
        &self.gens
    }

    /// Nominal branch reactances (per unit), in branch order.
    pub fn nominal_reactances(&self) -> Vec<f64> {
        self.branches.iter().map(|b| b.reactance_pu).collect()
    }

    /// Indices of D-FACTS-equipped branches.
    pub fn dfacts_branches(&self) -> Vec<usize> {
        self.branches
            .iter()
            .enumerate()
            .filter_map(|(l, b)| b.dfacts.then_some(l))
            .collect()
    }

    /// Reactance bounds `[x_min, x_max]` for a symmetric D-FACTS adjustment
    /// range `η_max` (paper Section VII-A: `x ∈ [(1−η)x₀, (1+η)x₀]` on
    /// D-FACTS lines, fixed elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `eta_max` is not in `[0, 1)`.
    pub fn reactance_bounds(&self, eta_max: f64) -> (Vec<f64>, Vec<f64>) {
        assert!(
            (0.0..1.0).contains(&eta_max),
            "eta_max must be in [0,1), got {eta_max}"
        );
        let mut lo = Vec::with_capacity(self.branches.len());
        let mut hi = Vec::with_capacity(self.branches.len());
        for b in &self.branches {
            if b.dfacts {
                lo.push(b.reactance_pu * (1.0 - eta_max));
                hi.push(b.reactance_pu * (1.0 + eta_max));
            } else {
                lo.push(b.reactance_pu);
                hi.push(b.reactance_pu);
            }
        }
        (lo, hi)
    }

    /// Bus loads in MW, in bus order.
    pub fn loads(&self) -> Vec<f64> {
        self.buses.iter().map(|b| b.load_mw).collect()
    }

    /// Total system load, MW.
    pub fn total_load(&self) -> f64 {
        self.buses.iter().map(|b| b.load_mw).sum()
    }

    /// Branch flow limits in MW, in branch order.
    pub fn flow_limits(&self) -> Vec<f64> {
        self.branches.iter().map(|b| b.flow_limit_mw).collect()
    }

    /// Returns a copy of the network with the given bus loads.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::DimensionMismatch`] if `loads.len()` differs
    /// from the bus count.
    pub fn with_loads(&self, loads: &[f64]) -> Result<Network, GridError> {
        if loads.len() != self.n_buses() {
            return Err(GridError::DimensionMismatch {
                what: "loads",
                expected: self.n_buses(),
                actual: loads.len(),
            });
        }
        let mut net = self.clone();
        for (bus, &l) in net.buses.iter_mut().zip(loads.iter()) {
            bus.load_mw = l;
        }
        Ok(net)
    }

    /// Returns a copy with every load multiplied by `factor` (used to feed
    /// hourly load traces into a case).
    pub fn scale_loads(&self, factor: f64) -> Network {
        let mut net = self.clone();
        for bus in net.buses.iter_mut() {
            bus.load_mw *= factor;
        }
        net
    }

    /// Branch–bus incidence matrix `A ∈ R^{N×L}`: `A[i,l] = +1` if branch
    /// `l` starts at bus `i`, `−1` if it ends there.
    pub fn incidence(&self) -> Matrix {
        let mut a = Matrix::zeros(self.n_buses(), self.n_branches());
        for (l, br) in self.branches.iter().enumerate() {
            a[(br.from, l)] = 1.0;
            a[(br.to, l)] = -1.0;
        }
        a
    }

    /// Validates a reactance vector against this network.
    ///
    /// # Errors
    ///
    /// * [`GridError::DimensionMismatch`] on wrong length.
    /// * [`GridError::InvalidReactance`] for non-positive entries.
    pub fn check_reactances(&self, x: &[f64]) -> Result<(), GridError> {
        if x.len() != self.n_branches() {
            return Err(GridError::DimensionMismatch {
                what: "reactances",
                expected: self.n_branches(),
                actual: x.len(),
            });
        }
        for (l, &xl) in x.iter().enumerate() {
            if !(xl.is_finite() && xl > 0.0) {
                return Err(GridError::InvalidReactance {
                    branch: l,
                    value: xl,
                });
            }
        }
        Ok(())
    }

    /// Branch susceptances `b_l = base_mva / x_l` (MW/rad) for the given
    /// reactances.
    ///
    /// # Errors
    ///
    /// See [`Network::check_reactances`].
    pub fn susceptances(&self, x: &[f64]) -> Result<Vec<f64>, GridError> {
        self.check_reactances(x)?;
        Ok(x.iter().map(|&xl| self.base_mva / xl).collect())
    }

    /// Full nodal susceptance matrix `B = A D Aᵀ ∈ R^{N×N}` (MW/rad).
    ///
    /// # Errors
    ///
    /// See [`Network::check_reactances`].
    pub fn b_matrix(&self, x: &[f64]) -> Result<Matrix, GridError> {
        stats::count_susceptance_build();
        let b = self.susceptances(x)?;
        let n = self.n_buses();
        let mut m = Matrix::zeros(n, n);
        for (l, br) in self.branches.iter().enumerate() {
            let (i, j) = (br.from, br.to);
            m[(i, i)] += b[l];
            m[(j, j)] += b[l];
            m[(i, j)] -= b[l];
            m[(j, i)] -= b[l];
        }
        Ok(m)
    }

    /// Reduced susceptance matrix: `B` with the slack row and column
    /// removed — the invertible operator of the DC power-flow equations.
    ///
    /// # Errors
    ///
    /// See [`Network::check_reactances`].
    pub fn b_reduced(&self, x: &[f64]) -> Result<Matrix, GridError> {
        Ok(self
            .b_matrix(x)?
            .without_row(self.slack)
            .without_col(self.slack))
    }

    /// Maps a bus index to its row/column in the slack-reduced state
    /// space (`None` for the slack bus itself).
    pub fn reduced_index(&self, bus: usize) -> Option<usize> {
        match bus.cmp(&self.slack) {
            std::cmp::Ordering::Less => Some(bus),
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => Some(bus - 1),
        }
    }

    /// Sparse (CSC) reduced susceptance matrix, assembled directly from
    /// the branch stamps without a dense intermediate. The pattern
    /// depends only on the topology; for repeated reactance updates use
    /// [`crate::dcpf::PfContext`], which keeps the pattern (and its
    /// symbolic factorization) cached and rewrites values in place.
    ///
    /// # Errors
    ///
    /// See [`Network::check_reactances`].
    pub fn b_reduced_sparse(&self, x: &[f64]) -> Result<SparseMatrix, GridError> {
        let b = self.susceptances(x)?;
        self.b_reduced_sparse_from(&b)
    }

    /// [`Network::b_reduced_sparse`] from already-validated branch
    /// susceptances — the single source of the CSC stamping pattern,
    /// shared with the power-flow context's slot map.
    pub(crate) fn b_reduced_sparse_from(&self, b: &[f64]) -> Result<SparseMatrix, GridError> {
        let n_red = self.n_states();
        let mut triplets = Vec::with_capacity(4 * self.branches.len());
        for (l, br) in self.branches.iter().enumerate() {
            let (ri, rj) = (self.reduced_index(br.from), self.reduced_index(br.to));
            if let Some(i) = ri {
                triplets.push((i, i, b[l]));
            }
            if let Some(j) = rj {
                triplets.push((j, j, b[l]));
            }
            if let (Some(i), Some(j)) = (ri, rj) {
                triplets.push((i, j, -b[l]));
                triplets.push((j, i, -b[l]));
            }
        }
        SparseMatrix::from_triplets(n_red, n_red, &triplets).map_err(GridError::from)
    }

    /// DC measurement matrix `H ∈ R^{M×(N−1)}` mapping the reduced state
    /// (non-slack phase angles) to measurements
    /// `z = [f; −f; p]` (forward branch flows, reverse branch flows, nodal
    /// injections), i.e. `H = [D Aᵀ; −D Aᵀ; A D Aᵀ]` with the slack column
    /// removed (paper Section III).
    ///
    /// # Errors
    ///
    /// See [`Network::check_reactances`].
    pub fn measurement_matrix(&self, x: &[f64]) -> Result<Matrix, GridError> {
        stats::count_measurement_matrix_build();
        let b = self.susceptances(x)?;
        let n = self.n_buses();
        let nl = self.n_branches();
        let mut h = Matrix::zeros(2 * nl + n, n);
        // forward flows: f_l = b_l (θ_from − θ_to)
        for (l, br) in self.branches.iter().enumerate() {
            h[(l, br.from)] = b[l];
            h[(l, br.to)] = -b[l];
            // reverse flows
            h[(nl + l, br.from)] = -b[l];
            h[(nl + l, br.to)] = b[l];
        }
        // injections: p = A D Aᵀ θ = B θ
        for (l, br) in self.branches.iter().enumerate() {
            let (i, j) = (br.from, br.to);
            h[(2 * nl + i, i)] += b[l];
            h[(2 * nl + i, j)] -= b[l];
            h[(2 * nl + j, j)] += b[l];
            h[(2 * nl + j, i)] -= b[l];
        }
        Ok(h.without_col(self.slack))
    }

    /// Sparse derivative stamp `∂H/∂x_l` of the DC measurement matrix
    /// with respect to one branch reactance, as
    /// `(row, reduced column, value)` triplets.
    ///
    /// Every entry of `H` carrying branch `l` is a signed copy of the
    /// susceptance `b_l = base_mva / x_l`, so the derivative is the same
    /// stamp pattern scaled by `∂b_l/∂x_l = −base_mva / x_l²`: the
    /// forward/reverse flow rows `l` and `n_branches + l`, and the two
    /// injection rows of the terminal buses. At most 8 triplets; columns
    /// use the slack-reduced indexing of [`Network::measurement_matrix`]
    /// (slack-bus columns are dropped).
    ///
    /// # Errors
    ///
    /// See [`Network::check_reactances`]; additionally
    /// [`GridError::DimensionMismatch`] if `branch` is out of range.
    pub fn measurement_matrix_derivative(
        &self,
        x: &[f64],
        branch: usize,
    ) -> Result<Vec<(usize, usize, f64)>, GridError> {
        self.check_reactances(x)?;
        if branch >= self.n_branches() {
            return Err(GridError::DimensionMismatch {
                what: "branch index",
                expected: self.n_branches(),
                actual: branch,
            });
        }
        let nl = self.n_branches();
        let br = &self.branches[branch];
        let db = -self.base_mva / (x[branch] * x[branch]);
        let rf = self.reduced_index(br.from);
        let rt = self.reduced_index(br.to);
        let mut triplets = Vec::with_capacity(8);
        // Signed copies of b_l in H, per row: forward flow `+b(θf−θt)`,
        // reverse flow `−b(θf−θt)`, injection at `from` `+b(θf−θt)`,
        // injection at `to` `−b(θf−θt)`.
        for (row, sign) in [
            (branch, 1.0),
            (nl + branch, -1.0),
            (2 * nl + br.from, 1.0),
            (2 * nl + br.to, -1.0),
        ] {
            if let Some(col) = rf {
                triplets.push((row, col, sign * db));
            }
            if let Some(col) = rt {
                triplets.push((row, col, -sign * db));
            }
        }
        Ok(triplets)
    }

    /// Nodal net injections `p = Σ(generation at bus) − load` for a given
    /// dispatch vector (one entry per generator, MW).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::DimensionMismatch`] if `dispatch.len()` differs
    /// from the generator count.
    pub fn injections(&self, dispatch: &[f64]) -> Result<Vec<f64>, GridError> {
        if dispatch.len() != self.n_gens() {
            return Err(GridError::DimensionMismatch {
                what: "dispatch",
                expected: self.n_gens(),
                actual: dispatch.len(),
            });
        }
        let mut p: Vec<f64> = self.buses.iter().map(|b| -b.load_mw).collect();
        for (g, &d) in self.gens.iter().zip(dispatch.iter()) {
            p[g.bus] += d;
        }
        Ok(p)
    }

    /// Breadth-first connectivity check over the branch graph.
    pub fn is_connected(&self) -> bool {
        let n = self.n_buses();
        if n == 0 {
            return false;
        }
        let mut adj = vec![Vec::new(); n];
        for br in &self.branches {
            adj[br.from].push(br.to);
            adj[br.to].push(br.from);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenCost;

    fn tiny() -> Network {
        Network::new(
            "tiny3",
            vec![Bus::unloaded(), Bus::with_load(50.0), Bus::with_load(30.0)],
            vec![
                Branch::new(0, 1, 0.1, 100.0).with_dfacts(),
                Branch::new(1, 2, 0.2, 100.0),
                Branch::new(0, 2, 0.25, 100.0),
            ],
            vec![Generator::linear(0, 200.0, 10.0)],
            0,
        )
        .unwrap()
    }

    #[test]
    fn counts_and_accessors() {
        let n = tiny();
        assert_eq!(n.n_buses(), 3);
        assert_eq!(n.n_branches(), 3);
        assert_eq!(n.n_gens(), 1);
        assert_eq!(n.n_measurements(), 9);
        assert_eq!(n.n_states(), 2);
        assert_eq!(n.slack(), 0);
        assert_eq!(n.total_load(), 80.0);
        assert_eq!(n.dfacts_branches(), vec![0]);
        assert!(matches!(n.gen(0).cost, GenCost::Linear { c } if c == 10.0));
    }

    #[test]
    fn incidence_has_unit_entries() {
        let a = tiny().incidence();
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 0)], -1.0);
        assert_eq!(a[(2, 0)], 0.0);
        // column sums are zero
        for l in 0..3 {
            let s: f64 = (0..3).map(|i| a[(i, l)]).sum();
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn b_matrix_rows_sum_to_zero() {
        let net = tiny();
        let b = net.b_matrix(&net.nominal_reactances()).unwrap();
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| b[(i, j)]).sum();
            assert!(s.abs() < 1e-9);
        }
        assert!(b.is_symmetric(1e-12));
    }

    #[test]
    fn measurement_matrix_structure() {
        let net = tiny();
        let x = net.nominal_reactances();
        let h = net.measurement_matrix(&x).unwrap();
        assert_eq!(h.shape(), (9, 2));
        // reverse-flow block is the negative of the forward block
        for l in 0..3 {
            for c in 0..2 {
                assert_eq!(h[(l, c)], -h[(3 + l, c)]);
            }
        }
        // injection block equals B with slack column removed
        let b = net.b_matrix(&x).unwrap().without_col(0);
        for i in 0..3 {
            for c in 0..2 {
                assert!((h[(6 + i, c)] - b[(i, c)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn measurement_matrix_has_full_column_rank() {
        let net = tiny();
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        assert_eq!(gridmtd_linalg::Svd::compute(&h).unwrap().rank(), 2);
    }

    #[test]
    fn injections_subtract_loads() {
        let net = tiny();
        let p = net.injections(&[80.0]).unwrap();
        assert_eq!(p, vec![80.0, -50.0, -30.0]);
        assert!(net.injections(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn reactance_bounds_only_relax_dfacts_lines() {
        let net = tiny();
        let (lo, hi) = net.reactance_bounds(0.5);
        assert!((lo[0] - 0.05).abs() < 1e-12 && (hi[0] - 0.15).abs() < 1e-12);
        assert_eq!(lo[1], hi[1]);
        assert_eq!(lo[2], hi[2]);
    }

    #[test]
    fn with_loads_and_scale_loads() {
        let net = tiny();
        let scaled = net.scale_loads(2.0);
        assert_eq!(scaled.total_load(), 160.0);
        let reloaded = net.with_loads(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(reloaded.total_load(), 6.0);
        assert!(net.with_loads(&[1.0]).is_err());
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        // bad branch endpoint
        let err = Network::new(
            "bad",
            vec![Bus::unloaded(), Bus::unloaded()],
            vec![Branch::new(0, 5, 0.1, 10.0)],
            vec![Generator::linear(0, 1.0, 1.0)],
            0,
        )
        .unwrap_err();
        assert!(matches!(err, GridError::InvalidBusIndex { bus: 5, .. }));

        // bad reactance
        let err = Network::new(
            "bad",
            vec![Bus::unloaded(), Bus::unloaded()],
            vec![Branch::new(0, 1, -0.1, 10.0)],
            vec![Generator::linear(0, 1.0, 1.0)],
            0,
        )
        .unwrap_err();
        assert!(matches!(err, GridError::InvalidReactance { .. }));

        // disconnected
        let err = Network::new(
            "bad",
            vec![Bus::unloaded(), Bus::unloaded(), Bus::unloaded()],
            vec![Branch::new(0, 1, 0.1, 10.0)],
            vec![Generator::linear(0, 1.0, 1.0)],
            0,
        )
        .unwrap_err();
        assert_eq!(err, GridError::Disconnected);

        // no generators
        let err = Network::new(
            "bad",
            vec![Bus::unloaded(), Bus::unloaded()],
            vec![Branch::new(0, 1, 0.1, 10.0)],
            vec![],
            0,
        )
        .unwrap_err();
        assert_eq!(err, GridError::NoGenerators);
    }

    #[test]
    fn check_reactances_validates_length_and_sign() {
        let net = tiny();
        assert!(net.check_reactances(&[0.1, 0.2]).is_err());
        assert!(net.check_reactances(&[0.1, 0.2, -0.1]).is_err());
        assert!(net.check_reactances(&[0.1, 0.2, 0.3]).is_ok());
    }
}
