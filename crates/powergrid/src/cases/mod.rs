//! Benchmark case library.
//!
//! * [`case4`] — the 4-bus system of Fig. 3 of the paper (derived from
//!   MATPOWER's `case4gs`), calibrated so the pre-perturbation OPF matches
//!   Table II exactly.
//! * [`case14`] — IEEE 14-bus system with the paper's overrides
//!   (Section VII-A): generators of Table IV, 160/60 MW line limits,
//!   D-FACTS on branches {1, 5, 9, 11, 17, 19} (1-indexed).
//! * [`case30`] — IEEE 30-bus system with MATPOWER's default loads,
//!   generators and quadratic costs.
//! * [`synthetic`] — random connected meshed networks of arbitrary size
//!   for scaling studies (substitute for copying additional IEEE
//!   datasets).
//! * [`case57`] / [`case118`] — pinned-seed synthetic networks at
//!   IEEE-57 and IEEE-118 scale, the benchmark suite's larger rungs.

mod case14;
mod case30;
mod case4;
mod synthetic;

pub use case14::case14;
pub use case30::case30;
pub use case4::case4;
pub use synthetic::{case118, case300, case57, synthetic, SyntheticConfig};
