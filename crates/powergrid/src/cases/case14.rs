//! IEEE 14-bus system with the paper's Section VII-A configuration.

use crate::{Branch, Bus, Generator, Network};

/// Branch data from MATPOWER `case14`: (from, to, reactance p.u.),
/// 1-indexed buses as in the original case file.
const BRANCHES: [(usize, usize, f64); 20] = [
    (1, 2, 0.05917),
    (1, 5, 0.22304),
    (2, 3, 0.19797),
    (2, 4, 0.17632),
    (2, 5, 0.17388),
    (3, 4, 0.17103),
    (4, 5, 0.04211),
    (4, 7, 0.20912),
    (4, 9, 0.55618),
    (5, 6, 0.25202),
    (6, 11, 0.19890),
    (6, 12, 0.25581),
    (6, 13, 0.13027),
    (7, 8, 0.17615),
    (7, 9, 0.11001),
    (9, 10, 0.08450),
    (9, 14, 0.27038),
    (10, 11, 0.19207),
    (12, 13, 0.19988),
    (13, 14, 0.34802),
];

/// Bus loads (Pd) from MATPOWER `case14`, MW, bus order 1..14.
const LOADS: [f64; 14] = [
    0.0, 21.7, 94.2, 47.8, 7.6, 11.2, 0.0, 0.0, 29.5, 9.0, 3.5, 6.1, 13.5, 14.9,
];

/// Generators per Table IV of the paper: (bus, Pmax MW, cost $/MWh).
const GENS: [(usize, f64, f64); 5] = [
    (1, 300.0, 20.0),
    (2, 50.0, 30.0),
    (3, 30.0, 40.0),
    (6, 50.0, 50.0),
    (8, 20.0, 35.0),
];

/// D-FACTS branches per Section VII-A (1-indexed branch numbers).
const DFACTS: [usize; 6] = [1, 5, 9, 11, 17, 19];

/// Builds the IEEE 14-bus system exactly as configured in the paper's
/// simulation section:
///
/// * topology, reactances and loads from MATPOWER `case14`
///   (total load 259 MW);
/// * generators at buses 1, 2, 3, 6, 8 with linear costs (Table IV);
/// * flow limit 160 MW on branch 1 and 60 MW on every other branch;
/// * D-FACTS devices on branches {1, 5, 9, 11, 17, 19} (1-indexed),
///   adjustable within `±η_max` of nominal (the paper uses
///   `η_max = 0.5`, passed separately to [`Network::reactance_bounds`]).
pub fn case14() -> Network {
    let buses: Vec<Bus> = LOADS.iter().map(|&l| Bus::with_load(l)).collect();
    let branches: Vec<Branch> = BRANCHES
        .iter()
        .enumerate()
        .map(|(idx, &(f, t, x))| {
            let limit = if idx == 0 { 160.0 } else { 60.0 };
            let br = Branch::new(f - 1, t - 1, x, limit);
            if DFACTS.contains(&(idx + 1)) {
                br.with_dfacts()
            } else {
                br
            }
        })
        .collect();
    let gens: Vec<Generator> = GENS
        .iter()
        .map(|&(bus, pmax, c)| Generator::linear(bus - 1, pmax, c))
        .collect();
    Network::new("ieee14", buses, branches, gens, 0).expect("case14 data is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_ieee14() {
        let net = case14();
        assert_eq!(net.n_buses(), 14);
        assert_eq!(net.n_branches(), 20);
        assert_eq!(net.n_gens(), 5);
        assert_eq!(net.n_measurements(), 54);
        assert_eq!(net.n_states(), 13);
    }

    #[test]
    fn total_load_is_259_mw() {
        assert!((case14().total_load() - 259.0).abs() < 1e-9);
    }

    #[test]
    fn generator_capacity_is_450_mw() {
        let cap: f64 = case14().gens().iter().map(|g| g.pmax_mw).sum();
        assert_eq!(cap, 450.0);
    }

    #[test]
    fn dfacts_set_matches_paper() {
        // {1,5,9,11,17,19} 1-indexed → {0,4,8,10,16,18} 0-indexed.
        assert_eq!(case14().dfacts_branches(), vec![0, 4, 8, 10, 16, 18]);
    }

    #[test]
    fn line1_has_higher_limit() {
        let net = case14();
        assert_eq!(net.branch(0).flow_limit_mw, 160.0);
        for l in 1..20 {
            assert_eq!(net.branch(l).flow_limit_mw, 60.0);
        }
    }

    #[test]
    fn network_is_connected_and_has_full_rank_h() {
        let net = case14();
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        assert_eq!(gridmtd_linalg::Svd::compute(&h).unwrap().rank(), 13);
    }
}
