//! Random connected meshed networks for scaling studies.
//!
//! The paper evaluates on IEEE 14/30-bus systems only; to study how MTD
//! effectiveness and cost computations scale with grid size without
//! hand-copying more IEEE datasets, this module generates random but
//! realistic meshed grids: a spanning "backbone" (randomized tree) plus
//! extra chords for meshing, loads drawn from a plausible range and a few
//! generators with staggered marginal costs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Branch, Bus, Generator, Network};

/// Configuration for [`synthetic`] network generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of buses (≥ 2).
    pub n_buses: usize,
    /// Extra meshing chords beyond the spanning tree, as a fraction of the
    /// bus count (0.5 gives `L ≈ 1.5 N`, close to real transmission
    /// grids).
    pub chord_fraction: f64,
    /// Fraction of branches carrying D-FACTS devices.
    pub dfacts_fraction: f64,
    /// Mean bus load, MW (loads are Uniform(0.4, 1.6) × mean; a random
    /// third of buses carry no load).
    pub mean_load_mw: f64,
}

impl Default for SyntheticConfig {
    fn default() -> SyntheticConfig {
        SyntheticConfig {
            n_buses: 20,
            chord_fraction: 0.5,
            dfacts_fraction: 0.3,
            mean_load_mw: 15.0,
        }
    }
}

/// Generates a random connected network from a seed.
///
/// Determinism: the same `(config, seed)` pair always yields the same
/// network, so benchmarks and tests are reproducible.
///
/// # Panics
///
/// Panics if `config.n_buses < 2` or the fractions are outside `[0, 1]`.
pub fn synthetic(config: &SyntheticConfig, seed: u64) -> Network {
    assert!(config.n_buses >= 2, "need at least 2 buses");
    assert!(
        (0.0..=1.0).contains(&config.dfacts_fraction),
        "dfacts_fraction must be in [0,1]"
    );
    assert!(config.chord_fraction >= 0.0, "chord_fraction must be >= 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.n_buses;

    // Loads: ~1/3 of buses are pure transit (zero load).
    let mut buses = Vec::with_capacity(n);
    for _ in 0..n {
        let load = if rng.gen_bool(1.0 / 3.0) {
            0.0
        } else {
            config.mean_load_mw * rng.gen_range(0.4..1.6)
        };
        buses.push(Bus::with_load(load));
    }

    // Spanning tree: attach bus i to a random earlier bus.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 1..n {
        let j = rng.gen_range(0..i);
        edges.push((j, i));
    }
    // Meshing chords (avoid duplicates and self-loops).
    let n_chords = (config.chord_fraction * n as f64).round() as usize;
    let mut attempts = 0;
    while edges.len() < n - 1 + n_chords && attempts < 50 * n_chords.max(1) {
        attempts += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let (a, b) = (i.min(j), i.max(j));
        if edges.iter().any(|&(u, v)| (u, v) == (a, b)) {
            continue;
        }
        edges.push((a, b));
    }

    let total_load: f64 = buses.iter().map(|b| b.load_mw).sum();
    let branches: Vec<Branch> = edges
        .iter()
        .map(|&(i, j)| {
            let x = rng.gen_range(0.05..0.4);
            // Generous limits so synthetic OPFs are feasible but can
            // congest under perturbation.
            let limit = (total_load * rng.gen_range(0.3..0.7)).max(20.0);
            let br = Branch::new(i, j, x, limit);
            if rng.gen_bool(config.dfacts_fraction) {
                br.with_dfacts()
            } else {
                br
            }
        })
        .collect();

    // Generators: ~max(2, N/7) units with staggered costs; capacity covers
    // 1.6× the load so OPF always has slack.
    let n_gens = (n / 7).max(2);
    let cap_each = 1.6 * total_load / n_gens as f64;
    let mut gens = Vec::with_capacity(n_gens);
    let mut gen_buses = Vec::new();
    while gen_buses.len() < n_gens {
        let b = rng.gen_range(0..n);
        if !gen_buses.contains(&b) {
            gen_buses.push(b);
        }
    }
    for (k, &b) in gen_buses.iter().enumerate() {
        let cost = 20.0 + 8.0 * k as f64 + rng.gen_range(0.0..4.0);
        gens.push(Generator::linear(b, cap_each, cost));
    }

    Network::new(
        format!("synthetic{n}-{seed}"),
        buses,
        branches,
        gens,
        gen_buses[0],
    )
    .expect("synthetic construction yields a connected, valid network")
}

/// Synthetic 57-bus case: an IEEE-57-scale stand-in (≈80 branches,
/// ≈1.25 GW load, 8 generators) for scaling studies beyond the paper's
/// 14/30-bus systems. Deterministic — the seed is pinned.
pub fn case57() -> Network {
    synthetic(
        &SyntheticConfig {
            n_buses: 57,
            chord_fraction: 0.42,
            dfacts_fraction: 0.3,
            mean_load_mw: 33.0,
        },
        5757,
    )
}

/// Synthetic 118-bus case: an IEEE-118-scale stand-in (≈186 branches,
/// ≈4.2 GW load, 16 generators) for scaling studies. Deterministic —
/// the seed is pinned.
pub fn case118() -> Network {
    synthetic(
        &SyntheticConfig {
            n_buses: 118,
            chord_fraction: 0.58,
            dfacts_fraction: 0.3,
            mean_load_mw: 54.0,
        },
        118_118,
    )
}

/// Synthetic 300-bus case: an IEEE-300-scale stand-in (≈455 branches,
/// ≈9 GW load, 42 generators) that stresses the sparse linear-algebra
/// path well beyond the paper's grids. Deterministic — the seed is
/// pinned.
pub fn case300() -> Network {
    synthetic(
        &SyntheticConfig {
            n_buses: 300,
            chord_fraction: 0.52,
            dfacts_fraction: 0.25,
            mean_load_mw: 30.0,
        },
        300_300,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SyntheticConfig::default();
        let a = synthetic(&cfg, 7);
        let b = synthetic(&cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SyntheticConfig::default();
        assert_ne!(synthetic(&cfg, 1), synthetic(&cfg, 2));
    }

    #[test]
    fn networks_are_connected_across_sizes() {
        for &n in &[5, 12, 40, 80] {
            let cfg = SyntheticConfig {
                n_buses: n,
                ..SyntheticConfig::default()
            };
            let net = synthetic(&cfg, 42);
            assert!(net.is_connected());
            assert_eq!(net.n_buses(), n);
            assert!(net.n_branches() >= n - 1);
        }
    }

    #[test]
    fn measurement_matrix_full_rank() {
        let cfg = SyntheticConfig {
            n_buses: 25,
            ..SyntheticConfig::default()
        };
        let net = synthetic(&cfg, 3);
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        assert_eq!(gridmtd_linalg::Svd::compute(&h).unwrap().rank(), 24);
    }

    #[test]
    fn generation_covers_load() {
        let cfg = SyntheticConfig {
            n_buses: 30,
            ..SyntheticConfig::default()
        };
        let net = synthetic(&cfg, 11);
        let cap: f64 = net.gens().iter().map(|g| g.pmax_mw).sum();
        assert!(cap >= 1.5 * net.total_load());
    }

    #[test]
    fn scale_cases_are_well_posed() {
        for (net, buses) in [(case57(), 57), (case118(), 118)] {
            assert_eq!(net.n_buses(), buses);
            assert!(net.is_connected());
            assert!(net.n_branches() >= buses + buses / 3, "meshed, not a tree");
            assert!(!net.dfacts_branches().is_empty());
            let cap: f64 = net.gens().iter().map(|g| g.pmax_mw).sum();
            assert!(cap >= 1.5 * net.total_load());
            let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
            assert_eq!(
                gridmtd_linalg::Svd::compute(&h).unwrap().rank(),
                buses - 1,
                "measurement matrix must have full state rank"
            );
        }
    }

    #[test]
    fn case300_is_well_posed() {
        let net = case300();
        assert_eq!(net.n_buses(), 300);
        assert!(net.is_connected());
        assert!(net.n_branches() >= 400, "meshed, not a tree");
        assert!(net.dfacts_branches().len() >= 80);
        let cap: f64 = net.gens().iter().map(|g| g.pmax_mw).sum();
        assert!(cap >= 1.5 * net.total_load());
        // Full state rank without an O(n³)-ish dense SVD (too slow in
        // debug at this size): B̃ ≻ 0 — certified by a successful sparse
        // Cholesky — implies the flow block `D Aᵀ` of H already has rank
        // N − 1.
        let b = net.b_reduced_sparse(&net.nominal_reactances()).unwrap();
        let sym =
            std::sync::Arc::new(gridmtd_linalg::sparse::SymbolicCholesky::analyze(&b).unwrap());
        assert!(gridmtd_linalg::sparse::SparseCholesky::factor(sym, &b).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 2 buses")]
    fn single_bus_panics() {
        synthetic(
            &SyntheticConfig {
                n_buses: 1,
                ..SyntheticConfig::default()
            },
            0,
        );
    }
}
