//! IEEE 30-bus system (MATPOWER `case30` defaults).

use crate::{Branch, Bus, Generator, Network};

/// Branch data from MATPOWER `case30`: (from, to, reactance p.u.,
/// rate A in MW), 1-indexed buses.
const BRANCHES: [(usize, usize, f64, f64); 41] = [
    (1, 2, 0.06, 130.0),
    (1, 3, 0.19, 130.0),
    (2, 4, 0.17, 65.0),
    (3, 4, 0.04, 130.0),
    (2, 5, 0.20, 130.0),
    (2, 6, 0.18, 65.0),
    (4, 6, 0.04, 90.0),
    (5, 7, 0.12, 70.0),
    (6, 7, 0.08, 130.0),
    (6, 8, 0.04, 32.0),
    (6, 9, 0.21, 65.0),
    (6, 10, 0.56, 32.0),
    (9, 11, 0.21, 65.0),
    (9, 10, 0.11, 65.0),
    (4, 12, 0.26, 65.0),
    (12, 13, 0.14, 65.0),
    (12, 14, 0.26, 32.0),
    (12, 15, 0.13, 32.0),
    (12, 16, 0.20, 32.0),
    (14, 15, 0.20, 16.0),
    (16, 17, 0.19, 16.0),
    (15, 18, 0.22, 16.0),
    (18, 19, 0.13, 16.0),
    (19, 20, 0.07, 32.0),
    (10, 20, 0.21, 32.0),
    (10, 17, 0.08, 32.0),
    (10, 21, 0.07, 32.0),
    (10, 22, 0.15, 32.0),
    (21, 22, 0.02, 32.0),
    (15, 23, 0.20, 16.0),
    (22, 24, 0.18, 16.0),
    (23, 24, 0.27, 16.0),
    (24, 25, 0.33, 16.0),
    (25, 26, 0.38, 16.0),
    (25, 27, 0.21, 16.0),
    (28, 27, 0.40, 65.0),
    (27, 29, 0.42, 16.0),
    (27, 30, 0.60, 16.0),
    (29, 30, 0.45, 16.0),
    (8, 28, 0.20, 32.0),
    (6, 28, 0.06, 32.0),
];

/// Bus loads (Pd) from MATPOWER `case30`, MW, bus order 1..30.
/// Total: 189.2 MW.
const LOADS: [f64; 30] = [
    0.0, 21.7, 2.4, 7.6, 0.0, 0.0, 22.8, 30.0, 0.0, 5.8, 0.0, 11.2, 0.0, 6.2, 8.2, 3.5, 9.0, 3.2,
    9.5, 2.2, 17.5, 0.0, 3.2, 8.7, 0.0, 3.5, 0.0, 0.0, 2.4, 10.6,
];

/// Generators from MATPOWER `case30`: (bus, Pmax MW, c2 $/MW²h, c1 $/MWh).
const GENS: [(usize, f64, f64, f64); 6] = [
    (1, 80.0, 0.02, 2.0),
    (2, 80.0, 0.0175, 1.75),
    (22, 50.0, 0.0625, 1.0),
    (27, 55.0, 0.00834, 3.25),
    (23, 30.0, 0.025, 3.0),
    (13, 40.0, 0.025, 3.0),
];

/// D-FACTS branches for the 30-bus MTD study (1-indexed branch numbers).
///
/// The paper does not state its 30-bus D-FACTS placement ("default
/// settings"); we spread eight devices across the network — two near the
/// generation pocket (branches 1, 5), the 6–9/6–10 transformer corridor
/// (11, 12), the 12-bus load pocket (16, 18) and the 25–27/28–27 tail
/// (35, 36) — so that every region of the grid can be perturbed.
const DFACTS: [usize; 8] = [1, 5, 11, 12, 16, 18, 35, 36];

/// Builds the IEEE 30-bus system with MATPOWER's default loads (189.2 MW
/// total), generator limits and quadratic generation costs.
///
/// Used by the paper for the Fig. 6(b) scalability study of MTD
/// effectiveness. D-FACTS devices sit on the eight 1-indexed branches
/// of the private `DFACTS` table.
pub fn case30() -> Network {
    let buses: Vec<Bus> = LOADS.iter().map(|&l| Bus::with_load(l)).collect();
    let branches: Vec<Branch> = BRANCHES
        .iter()
        .enumerate()
        .map(|(idx, &(f, t, x, rate))| {
            let br = Branch::new(f - 1, t - 1, x, rate);
            if DFACTS.contains(&(idx + 1)) {
                br.with_dfacts()
            } else {
                br
            }
        })
        .collect();
    let gens: Vec<Generator> = GENS
        .iter()
        .map(|&(bus, pmax, c2, c1)| Generator::quadratic(bus - 1, pmax, c2, c1))
        .collect();
    Network::new("ieee30", buses, branches, gens, 0).expect("case30 data is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenCost;

    #[test]
    fn dimensions_match_ieee30() {
        let net = case30();
        assert_eq!(net.n_buses(), 30);
        assert_eq!(net.n_branches(), 41);
        assert_eq!(net.n_gens(), 6);
        assert_eq!(net.n_measurements(), 112);
    }

    #[test]
    fn total_load_is_matpower_default() {
        assert!((case30().total_load() - 189.2).abs() < 1e-9);
    }

    #[test]
    fn costs_are_quadratic() {
        for g in case30().gens() {
            assert!(matches!(g.cost, GenCost::Quadratic { .. }));
        }
    }

    #[test]
    fn network_is_connected_with_full_rank_h() {
        let net = case30();
        let h = net.measurement_matrix(&net.nominal_reactances()).unwrap();
        assert_eq!(gridmtd_linalg::Svd::compute(&h).unwrap().rank(), 29);
    }

    #[test]
    fn capacity_exceeds_load() {
        let net = case30();
        let cap: f64 = net.gens().iter().map(|g| g.pmax_mw).sum();
        assert!(cap > net.total_load());
    }

    #[test]
    fn eight_dfacts_devices() {
        assert_eq!(case30().dfacts_branches().len(), 8);
    }
}
