//! The 4-bus system of the paper's motivating example (Fig. 3).

use crate::{Branch, Bus, Generator, Network};

/// Builds the 4-bus system of Fig. 3 / Tables I–III of the paper.
///
/// Topology and reactances come from MATPOWER's `case4gs` (Grainger &
/// Stevenson): lines 1–2, 1–3, 2–4, 3–4 with reactances 0.0504, 0.0372,
/// 0.0372, 0.0636 p.u. Loads are 50/170/200/80 MW. Generator 1 (bus 1,
/// 20 $/MWh, 350 MW cap) and generator 2 (bus 4, 30 $/MWh) reproduce the
/// paper's Table II exactly: dispatch (350, 150) MW, flows
/// (126.56, 173.44, −43.44, −26.56) MW, OPF cost $1.15 × 10⁴.
///
/// Line flow limits are calibrated (see `DESIGN.md`) so that the
/// post-perturbation redispatch of Table III is reproduced to within
/// ~0.4 MW / 0.05% of cost, under the paper's `η = 0.2` reactance
/// perturbations (`x'_k = 1.2 x_k`): lines 1 and 2 are flow-limited just
/// above their pre-perturbation flows (127.68 and 173.49 MW), lines 3 and
/// 4 are unconstrained. With those limits the post-perturbation OPF costs
/// are $11 630 / $11 599 / $11 510 / $11 537 against the paper's
/// $11 626 / $11 595 / $11 514 / $11 540 — same ordering, ∆x³ cheapest.
///
/// All four lines carry D-FACTS devices so each can be perturbed for MTD.
pub fn case4() -> Network {
    let buses = vec![
        Bus::with_load(50.0),
        Bus::with_load(170.0),
        Bus::with_load(200.0),
        Bus::with_load(80.0),
    ];
    let branches = vec![
        Branch::new(0, 1, 0.0504, 127.68).with_dfacts(),
        Branch::new(0, 2, 0.0372, 173.49).with_dfacts(),
        Branch::new(1, 3, 0.0372, 500.0).with_dfacts(),
        Branch::new(2, 3, 0.0636, 500.0).with_dfacts(),
    ];
    let gens = vec![
        Generator::linear(0, 350.0, 20.0),
        Generator::linear(3, 300.0, 30.0),
    ];
    Network::new("case4", buses, branches, gens, 0).expect("case4 data is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_figure3() {
        let net = case4();
        assert_eq!(net.n_buses(), 4);
        assert_eq!(net.n_branches(), 4);
        assert_eq!(net.n_gens(), 2);
        assert_eq!(net.total_load(), 500.0);
        assert_eq!(net.dfacts_branches(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn generation_capacity_covers_load() {
        let net = case4();
        let cap: f64 = net.gens().iter().map(|g| g.pmax_mw).sum();
        assert!(cap >= net.total_load());
    }
}
