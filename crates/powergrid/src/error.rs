use std::error::Error;
use std::fmt;

use gridmtd_linalg::LinalgError;

/// Errors produced by network construction and power-flow computations.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A branch references a bus index outside `0..n_buses`.
    InvalidBusIndex {
        /// The offending bus index.
        bus: usize,
        /// Number of buses in the network.
        n_buses: usize,
    },
    /// A branch has a non-positive or non-finite reactance.
    InvalidReactance {
        /// Branch index.
        branch: usize,
        /// The offending value.
        value: f64,
    },
    /// The network graph is not connected.
    Disconnected,
    /// The network has no generators.
    NoGenerators,
    /// A supplied vector has the wrong length.
    DimensionMismatch {
        /// What the vector represents.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// An underlying linear-algebra operation failed.
    Numerical(LinalgError),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidBusIndex { bus, n_buses } => {
                write!(
                    f,
                    "bus index {bus} out of range (network has {n_buses} buses)"
                )
            }
            GridError::InvalidReactance { branch, value } => {
                write!(f, "branch {branch} has invalid reactance {value}")
            }
            GridError::Disconnected => write!(f, "network graph is not connected"),
            GridError::NoGenerators => write!(f, "network has no generators"),
            GridError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what} has length {actual}, expected {expected}"),
            GridError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl Error for GridError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GridError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for GridError {
    fn from(e: LinalgError) -> GridError {
        GridError::Numerical(e)
    }
}
