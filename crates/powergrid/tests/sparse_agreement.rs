//! Sparse-vs-dense agreement contract for the DC power flow.
//!
//! The sparse backend (CSC `B̃`, RCM ordering, symbolic/numeric split)
//! must reproduce the dense LU results on every benchmark case — from
//! the paper's 4-bus example to the beyond-paper 300-bus scaling rung —
//! and a warm context's numeric-only refactorization must match a cold
//! factorization of the same values exactly.

use gridmtd_powergrid::{cases, dcpf, Network, PfBackend, PfContext};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn all_cases() -> Vec<Network> {
    vec![
        cases::case4(),
        cases::case14(),
        cases::case30(),
        cases::case57(),
        cases::case118(),
        cases::case300(),
    ]
}

fn even_dispatch(net: &Network) -> Vec<f64> {
    let share = net.total_load() / net.n_gens() as f64;
    vec![share; net.n_gens()]
}

/// Deterministic reactance perturbation of the D-FACTS lines.
fn perturbed(net: &Network, step: usize) -> Vec<f64> {
    let mut x = net.nominal_reactances();
    for (k, l) in net.dfacts_branches().into_iter().enumerate() {
        let sign = if (k + step) % 2 == 0 { 1.0 } else { -1.0 };
        x[l] *= 1.0 + sign * 0.05 * ((step % 4) as f64 + 1.0);
    }
    x
}

#[test]
fn power_flow_sparse_matches_dense_on_every_case() {
    for net in all_cases() {
        let dispatch = even_dispatch(&net);
        let mut sparse_ctx = PfContext::with_backend(PfBackend::Sparse);
        let mut dense_ctx = PfContext::with_backend(PfBackend::Dense);
        for step in 0..3 {
            let x = perturbed(&net, step);
            let sp = dcpf::solve_dispatch_with(&net, &x, &dispatch, &mut sparse_ctx).unwrap();
            let de = dcpf::solve_dispatch_with(&net, &x, &dispatch, &mut dense_ctx).unwrap();
            let scale = de.theta.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (a, b) in sp.theta.iter().zip(de.theta.iter()) {
                assert!(
                    (a - b).abs() <= 1e-9 * scale,
                    "{}: theta {a} vs {b}",
                    net.name()
                );
            }
            let fscale = de.flows.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (a, b) in sp.flows.iter().zip(de.flows.iter()) {
                assert!(
                    (a - b).abs() <= 1e-9 * fscale,
                    "{}: flow {a} vs {b}",
                    net.name()
                );
            }
            for (a, b) in sp.injections.iter().zip(de.injections.iter()) {
                assert!((a - b).abs() <= 1e-9 * fscale, "{}: injection", net.name());
            }
        }
        // The sparse context reused its symbolic factorization after the
        // first solve.
        assert_eq!(sparse_ctx.symbolic_reuses(), 2, "{}", net.name());
    }
}

#[test]
fn refactorization_after_random_perturbations_matches_cold() {
    // Pattern-reuse contract: a warm context that has only re-run the
    // numeric phase after random reactance perturbations must agree
    // with a cold sparse factorization of the same values to 1e-10
    // (they are in fact the same arithmetic, so this is conservative).
    let mut rng = StdRng::seed_from_u64(0x5_9a7);
    for net in [cases::case57(), cases::case118(), cases::case300()] {
        let dispatch = even_dispatch(&net);
        let dfacts = net.dfacts_branches();
        let mut warm = PfContext::with_backend(PfBackend::Sparse);
        // Prime the cache at the nominal point.
        dcpf::solve_dispatch_with(&net, &net.nominal_reactances(), &dispatch, &mut warm).unwrap();
        for _ in 0..5 {
            let mut x = net.nominal_reactances();
            for &l in &dfacts {
                x[l] *= 1.0 + rng.gen_range(-0.2..0.2);
            }
            let refactored = dcpf::solve_dispatch_with(&net, &x, &dispatch, &mut warm).unwrap();
            let cold = dcpf::solve_dispatch_with(
                &net,
                &x,
                &dispatch,
                &mut PfContext::with_backend(PfBackend::Sparse),
            )
            .unwrap();
            let scale = cold.theta.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (a, b) in refactored.theta.iter().zip(cold.theta.iter()) {
                assert!(
                    (a - b).abs() <= 1e-10 * scale,
                    "{}: warm {a} vs cold {b}",
                    net.name()
                );
            }
        }
        assert_eq!(warm.symbolic_reuses(), 5, "{}", net.name());
    }
}

#[test]
fn b_reduced_sparse_matches_dense_assembly() {
    for net in all_cases() {
        let x = net.nominal_reactances();
        let sparse = net.b_reduced_sparse(&x).unwrap().to_dense();
        let dense = net.b_reduced(&x).unwrap();
        assert!(
            sparse.approx_eq(&dense, 1e-9),
            "{}: sparse and dense B̃ assembly disagree",
            net.name()
        );
    }
}
