//! Deterministic fault injection for the gridmtd workspace.
//!
//! Every fragile boundary in the pipeline — sparse factorization
//! pivots, the warm-basis resolve, the QL eigensolver, the L-BFGS line
//! search, the shared estimator mutex, the serve daemon's socket and
//! worker paths — hosts one *named injection point*:
//!
//! ```ignore
//! if gridmtd_faults::point!("opf.lp.warm_resolve") {
//!     return Ok(WarmOutcome::FallBackCold);
//! }
//! ```
//!
//! The registered names live in [`registry::ALL`]; `gridmtd lint`
//! enforces a bijection between that list and the `point!` call sites,
//! and the chaos matrix (`crates/core/tests/fault_matrix.rs`,
//! `crates/serve/tests/chaos.rs`) drives every name through its
//! documented fallback chain.
//!
//! # Cost model
//!
//! Without the `fault-injection` cargo feature (the default),
//! [`should_fire`] is a `const fn` returning `false`: every `point!`
//! folds to a dead branch and the compiled pipeline is bit-identical
//! to one that never heard of this crate. With the feature on, each
//! consulted point takes one global mutex and bumps two counters —
//! strictly a test/diagnosis build, never the benchmarked
//! configuration.
//!
//! # Determinism
//!
//! A [`FaultPlan`] is a pure value: point names, [`Trigger`]s, and one
//! salt. [`Trigger::Prob`] draws from a splitmix64 stream keyed by
//! `(salt, point name, consultation index)`, so a chaos run replays
//! bit-identically from its seed — no wall clock, no global RNG.
//! [`FaultPlan::activate`] holds a process-wide serialization lock for
//! the guard's lifetime, so concurrent chaos tests in one test binary
//! cannot see each other's faults.

pub mod registry;

use std::sync::{Mutex, MutexGuard};

/// Whether this build compiled the injection machinery in.
///
/// Drivers (the `gridmtd chaos` subcommand) check this to fail loudly
/// instead of reporting a vacuous all-green run from a build whose
/// points can never fire.
pub const ENABLED: bool = cfg!(feature = "fault-injection");

/// When a registered point fires, counting its consultations from 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every consultation.
    Always,
    /// Fire on the first consultation only.
    Once,
    /// Fire on exactly the `n`-th consultation (1-based).
    Nth(u64),
    /// Fire on every `n`-th consultation (`n = 0` never fires).
    Every(u64),
    /// Fire independently with probability `p`, drawn from the plan's
    /// deterministic per-point splitmix64 stream.
    Prob(f64),
}

struct Entry {
    name: String,
    // Only the feature-on `should_fire` consults the trigger; the
    // counters stay readable either way so guards work feature-off.
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    trigger: Trigger,
    calls: u64,
    fired: u64,
}

struct LiveState {
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    salt: u64,
    entries: Vec<Entry>,
}

/// The single live plan. `None` (the usual state) means every point is
/// dormant.
static LIVE: Mutex<Option<LiveState>> = Mutex::new(None);

/// Serializes plan activations across threads of one process, so two
/// chaos tests running in parallel queue up instead of cross-firing.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding either lock (e.g. a failed chaos
    // assertion) must not brick the next chaos test in the binary.
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A set of faults to arm, built with [`FaultPlan::fail`] and armed
/// with [`FaultPlan::activate`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    salt: u64,
    faults: Vec<(String, Trigger)>,
}

impl FaultPlan {
    /// An empty plan whose [`Trigger::Prob`] draws derive from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            salt: seed,
            faults: Vec::new(),
        }
    }

    /// Arms `name` (a [`registry::ALL`] entry) with `trigger`.
    ///
    /// # Panics
    ///
    /// When `name` is not registered — an unregistered name in a chaos
    /// schedule is always a bug, and panicking here keeps it out of
    /// the pipeline-under-test where a panic would read as a finding.
    #[must_use]
    pub fn fail(mut self, name: &str, trigger: Trigger) -> FaultPlan {
        assert!(
            registry::is_registered(name),
            "fault plan names unregistered point '{name}' (see gridmtd_faults::registry::ALL)"
        );
        self.faults.push((name.to_string(), trigger));
        self
    }

    /// Arms the plan process-wide until the returned guard drops.
    ///
    /// Blocks while another plan is active (activations serialize), so
    /// `#[test]`s using faults need no extra coordination.
    pub fn activate(self) -> ActiveFaults {
        let serial = lock(&SERIAL);
        *lock(&LIVE) = Some(LiveState {
            salt: self.salt,
            entries: self
                .faults
                .into_iter()
                .map(|(name, trigger)| Entry {
                    name,
                    trigger,
                    calls: 0,
                    fired: 0,
                })
                .collect(),
        });
        ActiveFaults { _serial: serial }
    }
}

/// RAII guard for an armed [`FaultPlan`]; dropping it disarms every
/// fault and releases the activation lock.
pub struct ActiveFaults {
    _serial: MutexGuard<'static, ()>,
}

impl ActiveFaults {
    /// How many times `name` was consulted since activation.
    pub fn calls(&self, name: &str) -> u64 {
        self.counter(name, |e| e.calls)
    }

    /// How many times `name` fired since activation.
    pub fn fired(&self, name: &str) -> u64 {
        self.counter(name, |e| e.fired)
    }

    fn counter(&self, name: &str, field: fn(&Entry) -> u64) -> u64 {
        lock(&LIVE)
            .as_ref()
            .and_then(|state| state.entries.iter().find(|e| e.name == name))
            .map_or(0, field)
    }
}

impl Drop for ActiveFaults {
    fn drop(&mut self) {
        *lock(&LIVE) = None;
    }
}

/// Marks a named injection point; `true` means the caller must take
/// its failure path. The name must be a string literal registered in
/// [`registry::ALL`] (`gridmtd lint` enforces both).
#[macro_export]
macro_rules! point {
    ($name:literal) => {
        $crate::should_fire($name)
    };
}

/// The runtime behind [`point!`]. Prefer the macro at call sites —
/// the lint's registry cross-check keys on it.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
#[allow(clippy::missing_const_for_fn)]
pub const fn should_fire(_name: &str) -> bool {
    false
}

/// The runtime behind [`point!`]. Prefer the macro at call sites —
/// the lint's registry cross-check keys on it.
#[cfg(feature = "fault-injection")]
pub fn should_fire(name: &str) -> bool {
    let mut live = lock(&LIVE);
    let Some(state) = live.as_mut() else {
        return false;
    };
    let salt = state.salt;
    let Some(entry) = state.entries.iter_mut().find(|e| e.name == name) else {
        return false;
    };
    entry.calls += 1;
    let fire = match entry.trigger {
        Trigger::Always => true,
        Trigger::Once => entry.calls == 1,
        Trigger::Nth(n) => entry.calls == n,
        Trigger::Every(n) => n != 0 && entry.calls % n == 0,
        Trigger::Prob(p) => {
            let word = splitmix(salt ^ fold_name(&entry.name)).wrapping_add(entry.calls);
            unit_interval(splitmix(word)) < p
        }
    };
    if fire {
        entry.fired += 1;
    }
    fire
}

/// FNV-1a over the point name: decorrelates the per-point streams.
#[cfg(feature = "fault-injection")]
fn fold_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325_u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// splitmix64 finalizer — the same mixer `core::seedstream` uses, kept
/// local because this crate sits below `gridmtd-core` in the
/// dependency graph and must stay zero-dep.
#[cfg(feature = "fault-injection")]
fn splitmix(word: u64) -> u64 {
    let mut z = word.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a u64 draw onto `[0, 1)` with 53-bit precision.
#[cfg(feature = "fault-injection")]
#[allow(clippy::cast_precision_loss)]
fn unit_interval(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dormant_points_never_fire() {
        assert!(!should_fire("opf.lp.warm_resolve"));
        assert!(!point!("opf.lp.warm_resolve"));
    }

    #[test]
    #[should_panic(expected = "unregistered point")]
    fn unregistered_names_are_rejected_at_plan_build() {
        let _ = FaultPlan::new(0).fail("no.such.point", Trigger::Always);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn trigger_semantics_and_counters() {
        let active = FaultPlan::new(7)
            .fail("opf.lp.warm_resolve", Trigger::Nth(2))
            .fail("opf.lp.warm_repair", Trigger::Every(2))
            .fail("serve.conn.read", Trigger::Once)
            .activate();
        let fires: Vec<bool> = (0..4).map(|_| point!("opf.lp.warm_resolve")).collect();
        assert_eq!(fires, [false, true, false, false]);
        let fires: Vec<bool> = (0..4).map(|_| point!("opf.lp.warm_repair")).collect();
        assert_eq!(fires, [false, true, false, true]);
        let fires: Vec<bool> = (0..4).map(|_| point!("serve.conn.read")).collect();
        assert_eq!(fires, [true, false, false, false]);
        // A point the plan does not arm stays dormant and uncounted.
        assert!(!point!("serve.conn.write"));
        assert_eq!(active.calls("opf.lp.warm_resolve"), 4);
        assert_eq!(active.fired("opf.lp.warm_resolve"), 1);
        assert_eq!(active.fired("opf.lp.warm_repair"), 2);
        assert_eq!(active.calls("serve.conn.write"), 0);
        drop(active);
        assert!(!point!("serve.conn.read"));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn prob_trigger_replays_bit_identically_from_its_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let _active = FaultPlan::new(seed)
                .fail("serve.frame.parse", Trigger::Prob(0.5))
                .activate();
            (0..64).map(|_| point!("serve.frame.parse")).collect()
        };
        let a = draw(42);
        assert_eq!(a, draw(42), "same seed must replay the same schedule");
        assert_ne!(a, draw(43), "different seeds should diverge");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&fired), "p=0.5 of 64 draws, got {fired}");
    }
}
