//! The registry of every named injection point in the workspace.
//!
//! One name per fragile boundary, `<crate>.<module>.<failure>`. The
//! chaos matrix (`crates/core/tests/fault_matrix.rs`,
//! `crates/serve/tests/chaos.rs`) iterates this list so a point cannot
//! exist without a test, and `gridmtd lint` cross-checks that every
//! `faults::point!(...)` call site uses exactly one of these names and
//! that every name has exactly one call site — the list and the code
//! cannot drift apart silently. Keep the entries sorted.
//!
//! `gridmtd lint` parses this file textually (it collects the string
//! literals below), so the registry must stay a plain literal array.

/// Every registered injection point, sorted by name.
pub const ALL: &[&str] = &[
    "core.session.estimator_poison",
    "linalg.eigen.ql_nonconvergence",
    "linalg.sparse_cholesky.zero_pivot",
    "linalg.sparse_lu.zero_pivot",
    "opf.lbfgs.line_search",
    "opf.lp.warm_repair",
    "opf.lp.warm_resolve",
    "serve.conn.read",
    "serve.conn.write",
    "serve.frame.parse",
    "serve.worker.dispatch",
];

/// Whether `name` is a registered injection point.
pub fn is_registered(name: &str) -> bool {
    ALL.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in ALL.windows(2) {
            assert!(
                pair[0] < pair[1],
                "{} must sort before {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn lookup_matches_membership() {
        assert!(is_registered("opf.lp.warm_resolve"));
        assert!(!is_registered("opf.lp.warm_resolv"));
    }
}
