//! The rule engine: project-specific invariants checked over the token
//! stream of one file.
//!
//! Every rule is grounded in a real incident (see `docs/ARCHITECTURE.md`
//! for the table): the poisoned-mutex session brick, the `base ^ t`
//! seed-stream collisions, and the process-global thread-override race
//! all shipped as silent violations that only careful review caught.
//! The rules here make the reviewer's checklist executable.
//!
//! # Escape hatch
//!
//! A finding that is *known-good* is silenced with an allow comment on
//! the same line or the line above:
//!
//! ```text
//! // gridmtd-lint: allow(raw-seed-mix) -- reason the invariant holds here
//! ```
//!
//! The reason is mandatory; an allow without one (or naming an unknown
//! rule) is itself a finding (`bad-allow`) that no allow can silence.

use crate::tokens::{is_float_literal, is_zero_float, tokenize, Token, TokenKind};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`lock-unwrap`, …).
    pub rule: &'static str,
    /// What was matched.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// Rule ids valid in `allow(...)` comments, i.e. every rule except
/// `bad-allow` itself.
pub const ALLOWABLE_RULES: &[&str] = &[
    "lock-unwrap",
    "raw-seed-mix",
    "unordered-iter",
    "float-eq",
    "wallclock",
    "thread-override",
];

const BAD_ALLOW: &str = "bad-allow";

/// Lints one file's source text. `path` must be workspace-relative with
/// `/` separators — several rules are scoped by path (see each rule's
/// docs).
#[must_use]
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let tokens = tokenize(src);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let test_lines = test_regions(&code);
    let whole_file_test = is_test_path(path);
    let in_test = |line: usize| {
        whole_file_test
            || test_lines
                .iter()
                .any(|&(start, end)| (start..=end).contains(&line))
    };

    let (allows, mut findings) = parse_allows(path, &tokens);

    rule_lock_unwrap(path, &code, &in_test, &mut findings);
    rule_raw_seed_mix(path, &code, &in_test, &mut findings);
    rule_unordered_iter(path, &code, &in_test, &mut findings);
    rule_float_eq(path, &code, &in_test, &mut findings);
    rule_wallclock(path, &code, &in_test, &mut findings);
    rule_thread_override(path, &code, &in_test, &mut findings);

    findings.retain(|f| {
        f.rule == BAD_ALLOW
            || !allows
                .iter()
                .any(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line))
    });
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Whether a path is test-only by location: integration-test trees
/// (`**/tests/**`) are exempt from the determinism rules wholesale.
fn is_test_path(path: &str) -> bool {
    path.split('/').any(|part| part == "tests")
}

/// An `allow` annotation parsed from a comment.
struct Allow {
    rule: &'static str,
    line: usize,
}

/// Extracts `allow(rule, …) -- reason` annotations (introduced by the
/// `gridmtd-lint` marker comment) from comment tokens; malformed ones
/// become `bad-allow` findings.
fn parse_allows(path: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Finding>) {
    const MARKER: &str = "gridmtd-lint:";
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        let Some(rest) = tok.text.find(MARKER).map(|i| &tok.text[i + MARKER.len()..]) else {
            continue;
        };
        let rest = rest.trim_start();
        let bad = |message: String| Finding {
            file: path.to_string(),
            line: tok.line,
            rule: BAD_ALLOW,
            message,
            hint: "write `// gridmtd-lint: allow(<rule>) -- <why the invariant holds here>`",
        };
        let Some(inner) = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('))
        else {
            findings.push(bad(format!(
                "unrecognized gridmtd-lint directive: `{}`",
                rest.lines().next().unwrap_or_default().trim()
            )));
            continue;
        };
        let Some(close) = inner.find(')') else {
            findings.push(bad("allow(...) is missing its closing parenthesis".into()));
            continue;
        };
        let (names, after) = inner.split_at(close);
        let reason = after[1..].trim_start();
        let reason = reason.strip_prefix("--").map(str::trim).unwrap_or_default();
        if reason.is_empty() {
            findings.push(bad(
                "allow(...) without a reason — append `-- <why this is sound>`".into(),
            ));
            continue;
        }
        for name in names.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            match ALLOWABLE_RULES.iter().find(|r| **r == name) {
                Some(rule) => allows.push(Allow {
                    rule,
                    line: tok.line,
                }),
                None => findings.push(bad(format!("allow names unknown rule `{name}`"))),
            }
        }
    }
    (allows, findings)
}

/// Line spans covered by `#[cfg(test)]` / `#[test]` items: from the
/// attribute to the close of the item's brace block (or its `;`).
fn test_regions(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].text == "#" && code.get(i + 1).is_some_and(|t| t.text == "[")) {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr: Vec<&str> = Vec::new();
        while j < code.len() && depth > 0 {
            match code[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                t => attr.push(t),
            }
            j += 1;
        }
        let is_test_attr = attr.first() == Some(&"test")
            || (attr.len() >= 3 && attr[0] == "cfg" && attr[1] == "(" && attr[2] == "test");
        if !is_test_attr {
            i = j;
            continue;
        }
        let start_line = code[i].line;
        // The attributed item runs to the matching `}` of its first
        // brace block, or to a top-level `;` for block-less items.
        let mut braces = 0usize;
        let mut entered = false;
        let mut end_line = start_line;
        while j < code.len() {
            match code[j].text.as_str() {
                "{" => {
                    braces += 1;
                    entered = true;
                }
                "}" => {
                    braces = braces.saturating_sub(1);
                    if entered && braces == 0 {
                        end_line = code[j].line;
                        break;
                    }
                }
                ";" if !entered && braces == 0 => {
                    end_line = code[j].line;
                    break;
                }
                _ => {}
            }
            end_line = code[j].line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j;
    }
    regions
}

fn ident(tok: Option<&&Token>, name: &str) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
}

fn punct(tok: Option<&&Token>, op: &str) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Punct && t.text == op)
}

/// `lock-unwrap` — `.lock().unwrap()` / `.lock().expect(…)` outside
/// test code. A worker that panics while holding such a lock poisons
/// it, and every later request on the shared state panics at the lock
/// site: the exact session-bricking incident PR 6 fixed. Production
/// code must recover the guard via `PoisonError::into_inner` (the
/// `lock_est_ctx` / `SessionLru::lock` helpers are the pattern).
fn rule_lock_unwrap(
    path: &str,
    code: &[&Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..code.len() {
        if punct(code.get(i), ".")
            && ident(code.get(i + 1), "lock")
            && punct(code.get(i + 2), "(")
            && punct(code.get(i + 3), ")")
            && punct(code.get(i + 4), ".")
            && code
                .get(i + 5)
                .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
        {
            let line = code[i + 5].line;
            if in_test(line) {
                continue;
            }
            findings.push(Finding {
                file: path.to_string(),
                line,
                rule: "lock-unwrap",
                message: format!(".lock().{}() panics forever once poisoned", code[i + 5].text),
                hint: "recover the guard: .lock().unwrap_or_else(std::sync::PoisonError::into_inner) — or route through the module's lock_* helper",
            });
        }
    }
}

/// How far around an operator the `raw-seed-mix` rule looks for a
/// seed-named identifier (tokens, same statement).
const SEED_WINDOW: usize = 8;

/// `raw-seed-mix` — `^`, `wrapping_add`, or `wrapping_mul` applied to a
/// seed-named binding anywhere but `core::seedstream`. Hand-rolled
/// stream derivations collide across nearby bases (`base ^ t` shares
/// streams between adjacent experiment seeds — the PR 6 regression);
/// all mixing belongs in `gridmtd_core::seedstream`.
fn rule_raw_seed_mix(
    path: &str,
    code: &[&Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if path == "crates/core/src/seedstream.rs" {
        return;
    }
    let seedy = |t: &&Token| t.kind == TokenKind::Ident && t.text.to_lowercase().contains("seed");
    let mut fire = |line: usize, what: &str| {
        if in_test(line) {
            return;
        }
        // One finding per line is enough to force the fix.
        if findings
            .iter()
            .any(|f| f.rule == "raw-seed-mix" && f.line == line)
        {
            return;
        }
        findings.push(Finding {
            file: path.to_string(),
            line,
            rule: "raw-seed-mix",
            message: format!("raw `{what}` on a seed-named value derives collision-prone RNG streams"),
            hint: "derive stream seeds through gridmtd_core::seedstream (mix / domain), never ad-hoc xor or wrapping arithmetic",
        });
    };
    for i in 0..code.len() {
        let tok = code[i];
        let statement_window = |center: usize| {
            let lo = center.saturating_sub(SEED_WINDOW);
            let hi = (center + SEED_WINDOW + 1).min(code.len());
            (lo..hi).filter(move |&k| {
                // Stay inside the statement: a `;` or `{`/`}` between k
                // and the operator breaks the association.
                let (a, b) = if k < center { (k, center) } else { (center, k) };
                !(a..b).any(|m| matches!(code[m].text.as_str(), ";" | "{" | "}"))
            })
        };
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Punct, "^" | "^=") if statement_window(i).any(|k| seedy(&code[k])) => {
                fire(tok.line, &tok.text);
            }
            (TokenKind::Ident, "wrapping_add" | "wrapping_mul")
                if punct(code.get(i.wrapping_sub(1)), ".")
                    && statement_window(i).any(|k| seedy(&code[k])) =>
            {
                fire(tok.line, &tok.text);
            }
            _ => {}
        }
    }
}

/// Iteration-shaped methods for `unordered-iter`.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// `unordered-iter` — iterating a `HashMap` / `HashSet` in non-test
/// code. Hash iteration order varies between runs (`RandomState`) and
/// between platforms, so anything downstream of it — artifact bytes,
/// attack ensembles, parallel work splits — silently loses
/// bit-reproducibility. Use `BTreeMap`/`BTreeSet`, an order-preserving
/// `Vec`, or sort before iterating.
fn rule_unordered_iter(
    path: &str,
    code: &[&Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let is_hash_ty =
        |t: &&Token| t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet");
    // Pass 1: names bound to hash containers in this file — `let x =
    // HashMap::new()`, `x: HashMap<…>` (bindings, fields, params).
    let mut bindings: Vec<&str> = Vec::new();
    for i in 0..code.len() {
        if !is_hash_ty(&code[i]) {
            continue;
        }
        // `name : [&][mut] HashMap` (type ascription / field / param).
        let mut k = i;
        while punct(code.get(k.wrapping_sub(1)), "&") || ident(code.get(k.wrapping_sub(1)), "mut") {
            k -= 1;
        }
        if punct(code.get(k.wrapping_sub(1)), ":")
            && code
                .get(k.wrapping_sub(2))
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            bindings.push(code[k - 2].text.as_str());
        }
        // `let [mut] name … = HashMap::…` — scan back a few tokens.
        for back in 2..=6 {
            let Some(k) = i.checked_sub(back) else { break };
            if code[k].text == "let" {
                let name = code
                    .get(k + 1)
                    .filter(|t| t.text != "mut")
                    .or(code.get(k + 2));
                if let Some(name) = name.filter(|t| t.kind == TokenKind::Ident) {
                    bindings.push(name.text.as_str());
                }
                break;
            }
            if matches!(code[k].text.as_str(), ";" | "{" | "}") {
                break;
            }
        }
    }
    bindings.sort_unstable();
    bindings.dedup();
    let is_hash_expr =
        |t: &&Token| is_hash_ty(t) || bindings.binary_search(&t.text.as_str()).is_ok();

    let mut fire = |line: usize, what: String| {
        if in_test(line) {
            return;
        }
        if findings
            .iter()
            .any(|f| f.rule == "unordered-iter" && f.line == line)
        {
            return;
        }
        findings.push(Finding {
            file: path.to_string(),
            line,
            rule: "unordered-iter",
            message: what,
            hint: "hash iteration order is nondeterministic: use BTreeMap/BTreeSet, keep a Vec, or collect-and-sort first",
        });
    };

    // Pass 2: iteration over those bindings.
    for i in 0..code.len() {
        let tok = code[i];
        // `for … in <expr containing a hash binding> {`
        if tok.kind == TokenKind::Ident && tok.text == "for" {
            let mut j = i + 1;
            let mut saw_in = false;
            while j < code.len() && code[j].text != "{" && code[j].text != ";" {
                if !saw_in {
                    saw_in = ident(code.get(j), "in");
                } else if is_hash_expr(&code[j]) {
                    fire(tok.line, format!("`for` loop iterates `{}`", code[j].text));
                    break;
                }
                j += 1;
            }
        }
        // `<hash binding> . iter() …` (chains like `.clone().keys()` walk
        // back through idents / `.` / `(` / `)` / `?` / `::`).
        if tok.kind == TokenKind::Ident
            && ITER_METHODS.contains(&tok.text.as_str())
            && punct(code.get(i.wrapping_sub(1)), ".")
        {
            let mut k = i - 1;
            let mut steps = 0;
            while k > 0 && steps < 16 {
                k -= 1;
                steps += 1;
                let t = code[k];
                if is_hash_expr(&t) {
                    fire(
                        tok.line,
                        format!("`.{}()` walks `{}` in hash order", tok.text, t.text),
                    );
                    break;
                }
                let chainlike = t.kind == TokenKind::Ident
                    || matches!(t.text.as_str(), "." | "(" | ")" | "?" | "::" | "&");
                if !chainlike {
                    break;
                }
            }
        }
    }
}

/// `float-eq` — `==` / `!=` with a float operand outside tests. Exact
/// float equality silently depends on evaluation order and optimization
/// level; ranking code here must use `f64::total_cmp` and tolerance
/// checks. Comparisons against literal zero are accepted (the idiomatic
/// sparsity test, same carve-out as clippy's `float_cmp`).
fn rule_float_eq(
    path: &str,
    code: &[&Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..code.len() {
        let tok = code[i];
        if !(tok.kind == TokenKind::Punct && (tok.text == "==" || tok.text == "!=")) {
            continue;
        }
        // Operand scan: literal float on either side (skipping a unary
        // minus / parenthesis on the right).
        let left = code.get(i.wrapping_sub(1));
        let mut right = code.get(i + 1);
        if right.is_some_and(|t| t.text == "-" || t.text == "(") {
            right = code.get(i + 2);
        }
        let float_operand = |t: Option<&&Token>| {
            t.is_some_and(|t| {
                t.kind == TokenKind::Num && is_float_literal(&t.text) && !is_zero_float(&t.text)
            })
        };
        if !(float_operand(left) || float_operand(right)) {
            continue;
        }
        if in_test(tok.line) {
            continue;
        }
        findings.push(Finding {
            file: path.to_string(),
            line: tok.line,
            rule: "float-eq",
            message: format!("exact `{}` against a float literal", tok.text),
            hint: "compare with a tolerance ((a - b).abs() < eps) or rank via f64::total_cmp; exact equality only ever holds for 0.0",
        });
    }
}

/// Paths where `wallclock` never fires: measurement is the loadtest,
/// chaos, and bench drivers' entire job, and the server reads the
/// clock only for *operational* timing (idle reaping, request
/// deadlines) that never feeds a response body.
const WALLCLOCK_ALLOWED: &[&str] = &[
    "crates/bench/",
    "crates/serve/src/chaos.rs",
    "crates/serve/src/loadtest.rs",
    "crates/serve/src/server.rs",
];

/// `wallclock` — `Instant::now` / `SystemTime` in result-producing
/// crates. Wall-clock reads in a result path make artifacts differ
/// between runs (the scenario writers deliberately emit no timestamps)
/// and turn bit-reproducibility bugs into heisenbugs. Timing belongs in
/// `crates/bench` and the serve loadtest, which exist to measure.
fn rule_wallclock(
    path: &str,
    code: &[&Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if WALLCLOCK_ALLOWED.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for i in 0..code.len() {
        let tok = code[i];
        let hit = (ident(Some(&tok), "Instant")
            && punct(code.get(i + 1), "::")
            && ident(code.get(i + 2), "now"))
            || ident(Some(&tok), "SystemTime");
        if !hit || in_test(tok.line) {
            continue;
        }
        findings.push(Finding {
            file: path.to_string(),
            line: tok.line,
            rule: "wallclock",
            message: format!("wall-clock read (`{}`) in a result-producing crate", tok.text),
            hint: "results must be a pure function of (case, config, seed); keep timing in crates/bench or serve::loadtest",
        });
    }
}

/// `thread-override` — calls to the process-global
/// `set_thread_override` outside the CLI entry point. The global is a
/// race: two concurrent sessions setting different budgets corrupt each
/// other (the PR 6 incident); library and server code must use the
/// scoped per-session budget (`with_thread_budget` /
/// `MtdSessionBuilder::threads`). Only `src/bin/gridmtd.rs` — a single
/// thread at startup — may touch the global.
fn rule_thread_override(
    path: &str,
    code: &[&Token],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if path == "src/bin/gridmtd.rs" {
        return;
    }
    for i in 0..code.len() {
        let tok = code[i];
        if !(tok.kind == TokenKind::Ident && tok.text == "set_thread_override") {
            continue;
        }
        // The definition itself (`pub fn set_thread_override`) is fine.
        if ident(code.get(i.wrapping_sub(1)), "fn") {
            continue;
        }
        if in_test(tok.line) {
            continue;
        }
        findings.push(Finding {
            file: path.to_string(),
            line: tok.line,
            rule: "thread-override",
            message: "process-global thread override used outside the CLI entry point".to_string(),
            hint: "use the scoped budget instead: MtdSessionBuilder::threads(n) or parallel::with_thread_budget",
        });
    }
}

/// Where the fault-point registry lives; [`check_fault_points`] is a
/// no-op for file sets that do not include it (sub-tree lint runs,
/// fixture corpora).
const FAULT_REGISTRY_PATH: &str = "crates/faults/src/registry.rs";

/// `fault-point` — cross-file registry discipline for fault-injection
/// points. Unlike the per-file rules this one sees the whole workspace
/// at once, and it is deliberately *not* allow-able: a point name is a
/// public contract between the code, the registry, and the chaos
/// matrix, so drift is never "known-good".
///
/// - every `point!("name")` call site must use a name registered in
///   `gridmtd_faults::registry::ALL` (a typo would compile into a
///   point that never fires — a chaos test that silently tests
///   nothing);
/// - every name must have at most one non-test call site (two sites
///   sharing a name cannot be faulted independently, and counters
///   conflate them);
/// - every registered name must have at least one non-test call site
///   (a stale registry entry makes the chaos matrix sweep a point that
///   no longer exists).
///
/// `files` holds `(workspace-relative path, source)` pairs as produced
/// by the runner.
#[must_use]
pub fn check_fault_points(files: &[(String, String)]) -> Vec<Finding> {
    let Some((_, registry_src)) = files.iter().find(|(p, _)| p == FAULT_REGISTRY_PATH) else {
        return Vec::new();
    };
    let mut findings = Vec::new();

    // The registry: string literals of the `ALL` array, in order.
    let registry_tokens = tokenize(registry_src);
    let registry: Vec<(String, usize)> = registry_literals(&registry_tokens);

    // Every `point!("name")` call site outside test code; the macro
    // definition itself (`macro_rules! point {`) has no `("` and never
    // matches.
    let mut uses: Vec<(String, String, usize)> = Vec::new(); // (name, file, line)
    for (path, src) in files {
        if is_test_path(path) {
            continue;
        }
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let test_lines = test_regions(&code);
        for i in 0..code.len() {
            if !(ident(code.get(i), "point")
                && punct(code.get(i + 1), "!")
                && punct(code.get(i + 2), "("))
            {
                continue;
            }
            let Some(arg) = code.get(i + 3).filter(|t| t.kind == TokenKind::Str) else {
                continue;
            };
            let line = arg.line;
            if test_lines
                .iter()
                .any(|&(start, end)| (start..=end).contains(&line))
            {
                continue;
            }
            let name = arg.text.trim_matches('"').to_string();
            uses.push((name, path.clone(), line));
        }
    }

    for (name, file, line) in &uses {
        if !registry.iter().any(|(n, _)| n == name) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: FAULT_POINT,
                message: format!(
                    "injection point `{name}` is not in gridmtd_faults::registry::ALL"
                ),
                hint: "register the name in crates/faults/src/registry.rs (sorted) so the chaos matrix and `gridmtd chaos` exercise it",
            });
        }
        let first = uses.iter().find(|(n, _, _)| n == name);
        if first.is_some_and(|(_, f, l)| (f, l) != (file, line)) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: FAULT_POINT,
                message: format!("injection point `{name}` already fires at another call site"),
                hint: "give each fragile boundary its own registered name; shared names cannot be faulted independently",
            });
        }
    }
    for (name, line) in &registry {
        if !uses.iter().any(|(n, _, _)| n == name) {
            findings.push(Finding {
                file: FAULT_REGISTRY_PATH.to_string(),
                line: *line,
                rule: FAULT_POINT,
                message: format!("registered point `{name}` has no point! call site"),
                hint: "remove the stale registry entry or add the missing gridmtd_faults::point!(...) guard",
            });
        }
    }
    findings
}

const FAULT_POINT: &str = "fault-point";

/// The `(literal, line)` entries of `registry::ALL`: string tokens
/// between the `ALL` identifier's `[` and its matching `]`.
fn registry_literals(tokens: &[Token]) -> Vec<(String, usize)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let Some(all) = code
        .iter()
        .position(|t| t.kind == TokenKind::Ident && t.text == "ALL")
    else {
        return Vec::new();
    };
    // Skip the `: &[&str]` type annotation — the literal starts after
    // the `=`.
    let Some(eq) = (all..code.len()).find(|&i| code[i].text == "=") else {
        return Vec::new();
    };
    let Some(open) = (eq..code.len()).find(|&i| code[i].text == "[") else {
        return Vec::new();
    };
    code[open..]
        .iter()
        .take_while(|t| t.text != "]")
        .filter(|t| t.kind == TokenKind::Str)
        .map(|t| (t.text.trim_matches('"').to_string(), t.line))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        lint_source(path, src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "fn prod(m: &Mutex<u8>) { m.lock().unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(m: &Mutex<u8>) { m.lock().unwrap(); }\n\
                   }\n";
        assert_eq!(rules_fired("crates/x/src/a.rs", src), [("lock-unwrap", 1)]);
    }

    #[test]
    fn test_attribute_functions_are_exempt() {
        let src = "#[test]\n\
                   fn t(m: &Mutex<u8>) { m.lock().unwrap(); }\n\
                   fn prod(m: &Mutex<u8>) { m.lock().expect(\"x\"); }\n";
        assert_eq!(rules_fired("crates/x/src/a.rs", src), [("lock-unwrap", 3)]);
    }

    #[test]
    fn tests_directories_are_exempt_wholesale() {
        let src = "fn t(m: &Mutex<u8>) { m.lock().unwrap(); }\n";
        assert!(rules_fired("crates/x/tests/a.rs", src).is_empty());
        assert!(rules_fired("tests/a.rs", src).is_empty());
        assert_eq!(rules_fired("crates/x/src/a.rs", src), [("lock-unwrap", 1)]);
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "// gridmtd-lint: allow(lock-unwrap) -- demo helper recovers poison upstream\n\
                   fn f(m: &Mutex<u8>) { m.lock().unwrap(); }\n\
                   fn g(m: &Mutex<u8>) { m.lock().unwrap(); }\n";
        assert_eq!(rules_fired("crates/x/src/a.rs", src), [("lock-unwrap", 3)]);
    }

    #[test]
    fn allow_without_reason_is_its_own_finding() {
        let src = "// gridmtd-lint: allow(lock-unwrap)\n\
                   fn f(m: &Mutex<u8>) { m.lock().unwrap(); }\n";
        assert_eq!(
            rules_fired("crates/x/src/a.rs", src),
            [("bad-allow", 1), ("lock-unwrap", 2)]
        );
    }

    #[test]
    fn allow_naming_unknown_rule_is_flagged() {
        let src = "// gridmtd-lint: allow(made-up-rule) -- because\nfn f() {}\n";
        assert_eq!(rules_fired("crates/x/src/a.rs", src), [("bad-allow", 1)]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "const S: &str = \".lock().unwrap()\";\n\
                   // a comment mentioning m.lock().unwrap() and HashMap.iter()\n\
                   /* SystemTime in a block comment */\n";
        assert!(rules_fired("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn hash_bindings_behind_references_are_tracked() {
        let src = "fn f(scores: &HashMap<String, f64>) -> Vec<String> {\n\
                       scores.keys().cloned().collect()\n\
                   }\n\
                   fn g(live: &mut HashSet<u64>) { live.retain(|&k| k > 0); }\n";
        assert_eq!(
            rules_fired("crates/x/src/a.rs", src),
            [("unordered-iter", 2), ("unordered-iter", 4)]
        );
    }

    fn fault_files(points: &[(&str, &str)], registry: &[&str]) -> Vec<(String, String)> {
        let mut files: Vec<(String, String)> = points
            .iter()
            .map(|(path, body)| ((*path).to_string(), (*body).to_string()))
            .collect();
        let literals = registry
            .iter()
            .map(|n| format!("    \"{n}\",\n"))
            .collect::<String>();
        files.push((
            super::FAULT_REGISTRY_PATH.to_string(),
            format!("pub const ALL: &[&str] = &[\n{literals}];\n"),
        ));
        files
    }

    #[test]
    fn fault_points_clean_when_registry_and_sites_agree() {
        let files = fault_files(
            &[(
                "crates/x/src/a.rs",
                "fn f() { if gridmtd_faults::point!(\"x.a.boom\") { } }\n",
            )],
            &["x.a.boom"],
        );
        assert!(check_fault_points(&files).is_empty());
    }

    #[test]
    fn fault_points_flag_unregistered_duplicate_and_stale() {
        let files = fault_files(
            &[
                (
                    "crates/x/src/a.rs",
                    "fn f() { if gridmtd_faults::point!(\"x.a.typo\") { } }\n\
                     fn g() { if gridmtd_faults::point!(\"x.a.boom\") { } }\n",
                ),
                (
                    "crates/x/src/b.rs",
                    "fn h() { if gridmtd_faults::point!(\"x.a.boom\") { } }\n",
                ),
            ],
            &["x.a.boom", "x.a.stale"],
        );
        let fired: Vec<(String, usize, String)> = check_fault_points(&files)
            .into_iter()
            .map(|f| (f.file, f.line, f.message))
            .collect();
        assert_eq!(fired.len(), 3, "{fired:?}");
        assert!(fired
            .iter()
            .any(|(f, l, m)| f == "crates/x/src/a.rs" && *l == 1 && m.contains("not in")));
        assert!(fired.iter().any(|(f, l, m)| f == "crates/x/src/b.rs"
            && *l == 1
            && m.contains("another call site")));
        assert!(fired
            .iter()
            .any(|(f, _, m)| f == super::FAULT_REGISTRY_PATH && m.contains("x.a.stale")));
    }

    #[test]
    fn fault_points_ignore_test_code_and_missing_registry() {
        // point! uses in tests directories or #[cfg(test)] regions are
        // harness plumbing, not injection sites.
        let files = fault_files(
            &[
                ("crates/x/src/a.rs", "fn f() { if gridmtd_faults::point!(\"x.a.boom\") { } }\n"),
                ("crates/x/tests/t.rs", "fn t() { let _ = gridmtd_faults::point!(\"x.a.boom\"); }\n"),
                (
                    "crates/x/src/c.rs",
                    "#[cfg(test)]\nmod tests {\n    fn t() { let _ = gridmtd_faults::point!(\"x.a.boom\"); }\n}\n",
                ),
            ],
            &["x.a.boom"],
        );
        assert!(check_fault_points(&files).is_empty());
        // No registry in the file set (sub-tree run): pass is a no-op.
        let orphan = vec![(
            "crates/x/src/a.rs".to_string(),
            "fn f() { if gridmtd_faults::point!(\"no.such.name\") { } }\n".to_string(),
        )];
        assert!(check_fault_points(&orphan).is_empty());
    }

    #[test]
    fn seedstream_module_is_exempt_from_seed_mix() {
        let src = "pub fn mix(seed: u64, t: u64) -> u64 { seed ^ t }\n";
        assert!(rules_fired("crates/core/src/seedstream.rs", src).is_empty());
        assert_eq!(
            rules_fired("crates/core/src/other.rs", src),
            [("raw-seed-mix", 1)]
        );
    }
}
