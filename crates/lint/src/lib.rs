//! # gridmtd-lint — first-party workspace static analysis
//!
//! The paper's figures reproduce because every layer of this workspace
//! is bit-identical: parallel vs. serial fan-out, warm sessions vs.
//! free functions, wire responses vs. direct calls. The invariants that
//! guarantee this — no unordered iteration, no ad-hoc seed arithmetic,
//! no wall-clock reads in result paths, poison-safe locking, no
//! process-global thread state — used to live only in reviewers'
//! heads, and PR 6 shipped three separate regression fixes for silent
//! violations of exactly these rules. This crate makes them
//! machine-checked: a string/char/raw-string/comment-aware tokenizer
//! ([`tokens`]), a rule engine grounded in those real incidents
//! ([`rules`]), and a workspace walker with human and JSON reports
//! ([`runner`]), wired into CI as a hard-failing step and exposed as
//! `gridmtd lint`.
//!
//! | rule | guards against |
//! |------|----------------|
//! | `lock-unwrap` | `.lock().unwrap()` bricking shared state on poison |
//! | `raw-seed-mix` | `^` / `wrapping_*` seed derivations that collide across streams |
//! | `unordered-iter` | `HashMap`/`HashSet` iteration order leaking into results |
//! | `float-eq` | exact `==`/`!=` on floats outside tests |
//! | `wallclock` | `Instant::now` / `SystemTime` in result-producing crates |
//! | `thread-override` | the process-global thread override outside the CLI |
//! | `fault-point` | `faults::point!` names drifting from the registry (unregistered, duplicated, or stale — cross-file, not allow-able) |
//! | `bad-allow` | `allow(...)` escapes without a written reason |
//!
//! Known-good violations are silenced in place, reason mandatory:
//!
//! ```text
//! // gridmtd-lint: allow(raw-seed-mix) -- reason why the invariant holds here
//! ```
//!
//! The crate is std-only with zero dependencies — a deliberate leaf, so
//! the pass can never be broken by the code it checks.
//!
//! ```
//! use gridmtd_lint::{lint_source, render_human};
//!
//! let findings = lint_source(
//!     "crates/x/src/worker.rs",
//!     "fn f(m: &std::sync::Mutex<u8>) { m.lock().unwrap(); }",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "lock-unwrap");
//! assert!(render_human(&findings).contains("worker.rs:1"));
//! ```

pub mod rules;
pub mod runner;
pub mod tokens;

pub use rules::{check_fault_points, lint_source, Finding, ALLOWABLE_RULES};
pub use runner::{lint_workspace, render_human, render_json, workspace_files};
